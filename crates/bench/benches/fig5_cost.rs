//! E5 bench — the recursive `cost` query over part hierarchies:
//! interpreted vs native, as the database grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// Short measurement windows so the full figure suite runs in minutes;
/// rerun individual benches with Criterion CLI flags for precision.
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}
use machiavelli_bench::{scaled_parts_session, FIG5_SOURCE};
use machiavelli_relational::native_cost;

fn bench_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_cost");
    group.sample_size(10);
    for n in [10usize, 40, 120] {
        let (mut session, db) = scaled_parts_session(n, 8, 5);
        session.run(FIG5_SOURCE).unwrap();
        // Cost of the most deeply nested part (the last one).
        let query = format!("hom((fn(x) => if x.P# = {n} then cost(x) else 0), +, 0, parts);");
        group.bench_with_input(BenchmarkId::new("interpreted", n), &n, |b, _| {
            b.iter(|| session.eval_one(&query).unwrap().value)
        });
        group.bench_with_input(BenchmarkId::new("native", n), &n, |b, _| {
            b.iter(|| native_cost(&db.parts, n as i64).unwrap())
        });
    }
    group.finish();
}

fn bench_expensive_parts(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_expensive_parts");
    group.sample_size(10);
    for n in [10usize, 40] {
        let (mut session, db) = scaled_parts_session(n, 8, 5);
        session.run(FIG5_SOURCE).unwrap();
        group.bench_with_input(BenchmarkId::new("interpreted", n), &n, |b, _| {
            b.iter(|| {
                session
                    .eval_one("expensive_parts(parts, 1000);")
                    .unwrap()
                    .value
            })
        });
        group.bench_with_input(BenchmarkId::new("native", n), &n, |b, _| {
            b.iter(|| {
                (1..=n as i64)
                    .filter(|&p| native_cost(&db.parts, p).unwrap() > 1000)
                    .count()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_cost, bench_expensive_parts
}
criterion_main!(benches);
