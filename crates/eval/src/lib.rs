//! Call-by-value evaluator for Machiavelli.
//!
//! * [`eval`] — the evaluator proper (expressions, `hom`, `select`,
//!   references, database operations);
//! * [`prelude`] — the standard library, written in Machiavelli source;
//! * [`error`] — evaluation errors.
//!
//! The evaluator is deliberately type-erased: run the type checker from
//! `machiavelli-types` first (the `machiavelli` core crate's `Session`
//! does both).

pub mod error;
pub mod eval;
pub mod prelude;

pub use error::EvalError;
pub use eval::{
    apply_binop, apply_value, builtin_env, eval_expr, planner_enabled, set_planner_enabled,
};
pub use prelude::PRELUDE;
