//! The index store's correctness contract, end to end: repeated plans
//! reuse cached indexes (the fig5 `cost` recursion builds its `parts`
//! hash exactly once), and **no query ever observes pre-mutation rows**
//! — whether the relation was mutated through a reference (`:=` records
//! the written identity in the dirty-ref set) or rebuilt and rebound
//! (copy-on-write storage gives the new relation a new identity).
//!
//! Invalidation is **dependency-tracked** (PR 5): a write evicts only
//! entries whose relation can reach the written ref, so entries over
//! untouched relations stay warm across unrelated writes — asserted
//! here by counter, and cross-checked by a seeded property test that
//! runs the same query/mutation interleavings under the paranoid
//! whole-store-clear mode (`tuning::set_store_epoch_clear`) and
//! requires identical visible results with at least as many evictions.

use machiavelli::eval::set_planner_enabled;
use machiavelli::value::show_value;
use machiavelli::Session;
use machiavelli_bench::{scaled_parts_session, FIG5_SOURCE};
use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;

/// Run `f` with planner dispatch forced on/off, restoring the previous
/// setting afterwards.
fn with_planner<T>(on: bool, f: impl FnOnce() -> T) -> T {
    let prev = set_planner_enabled(on);
    let out = f();
    set_planner_enabled(prev);
    out
}

fn eval(s: &mut Session, src: &str) -> Result<String, String> {
    s.eval_one(src)
        .map(|o| show_value(&o.value))
        .map_err(|e| e.to_string())
}

#[test]
fn fig5_recursion_builds_the_parts_index_exactly_once() {
    // The PR 2 planner rebuilt the `parts` hash table inside every
    // recursive `cost` call. With the store, the first composite part
    // builds it and every later call — across the whole
    // `expensive_parts` sweep — probes the cached index.
    let (mut s, db) = scaled_parts_session(30, 5, 7);
    s.run(FIG5_SOURCE).unwrap();
    s.store_reset();
    s.eval_one("expensive_parts(parts, 0);").unwrap();
    let stats = s.store_stats();
    assert_eq!(
        stats.builds, 1,
        "one build for the whole recursion: {stats:?}"
    );
    assert!(stats.hits >= 1, "recursive calls must hit: {stats:?}");
    assert_eq!(stats.entries, 1, "{stats:?}");
    assert_eq!(stats.cached_rows, db.parts.len(), "{stats:?}");
    // A second full sweep is pure cache hits.
    let builds_before = stats.builds;
    s.eval_one("expensive_parts(parts, 0);").unwrap();
    assert_eq!(
        s.store_stats().builds,
        builds_before,
        "no rebuild on re-run"
    );
}

#[test]
fn identical_queries_share_one_build() {
    let mut s = Session::new();
    s.store_reset();
    s.run("val r = {[K=1, A=10], [K=2, A=20]}; val probe = {[K=1]};")
        .unwrap();
    let q = "select x.A where y <- probe, x <- r with x.K = y.K;";
    assert_eq!(eval(&mut s, q).unwrap(), "{10}");
    assert_eq!(eval(&mut s, q).unwrap(), "{10}");
    let stats = s.store_stats();
    assert_eq!(
        (stats.builds, stats.hits, stats.misses),
        (1, 1, 1),
        "{stats:?}"
    );
}

#[test]
fn ref_mutation_is_visible_and_unaffected_entries_survive() {
    // A `ref`-held relation is mutated between identical queries. The
    // next query must see the new rows — and under dependency-tracked
    // invalidation the cached entry (built over the *unchanged* `probe`
    // side, which the open-time build-side swap prefers as the smaller
    // relation) survives the write: the new `!dbref` storage simply
    // probes it.
    let mut s = Session::new();
    s.store_reset();
    s.run("val dbref = ref({[K=1, A=10], [K=2, A=20]}); val probe = {[K=1]};")
        .unwrap();
    let q = "select x.A where y <- probe, x <- !dbref with x.K = y.K;";
    assert_eq!(eval(&mut s, q).unwrap(), "{10}");
    assert_eq!(eval(&mut s, q).unwrap(), "{10}");
    let warm = s.store_stats();
    assert_eq!((warm.builds, warm.hits), (1, 1), "{warm:?}");

    s.eval_one("dbref := union(!dbref, {[K=1, A=99]});")
        .unwrap();
    assert_eq!(eval(&mut s, q).unwrap(), "{10, 99}", "fresh rows visible");
    let after = s.store_stats();
    assert_eq!(
        after.builds, warm.builds,
        "the probe-side index was untouched by the write: {after:?}"
    );
    assert!(after.hits > warm.hits, "the entry kept serving: {after:?}");
    assert_eq!(
        (after.invalidated, after.cleared),
        (0, 0),
        "nothing the write could reach was cached: {after:?}"
    );
}

#[test]
fn ref_mutation_of_the_build_side_rebuilds_by_pointer_identity() {
    // Same scenario, but the probe side is the *larger* relation so no
    // swap happens and the mutated `!dbref` set itself is the build.
    // The write replaces dbref's contents: the next evaluation sees new
    // storage and can only miss — the old entry is dead (unreachable),
    // not stale, and is not counted as a dirty-ref eviction (the
    // relation's plain rows reach no ref).
    let mut s = Session::new();
    s.store_reset();
    s.run(
        "val dbref = ref({[K=1, A=10], [K=2, A=20]});
         val probe = {[K=1], [K=2], [K=3], [K=4]};",
    )
    .unwrap();
    let q = "select x.A where y <- probe, x <- !dbref with x.K = y.K;";
    assert_eq!(eval(&mut s, q).unwrap(), "{10, 20}");
    assert_eq!(eval(&mut s, q).unwrap(), "{10, 20}");
    let warm = s.store_stats();
    assert_eq!((warm.builds, warm.hits), (1, 1), "{warm:?}");

    s.eval_one("dbref := union(!dbref, {[K=1, A=99]});")
        .unwrap();
    assert_eq!(eval(&mut s, q).unwrap(), "{10, 20, 99}");
    let after = s.store_stats();
    assert_eq!(after.builds, 2, "new storage, fresh build: {after:?}");
    assert_eq!(after.hits, warm.hits, "no stale hit: {after:?}");
}

#[test]
fn write_to_an_unrelated_relation_evicts_nothing() {
    // The headline of dependency-tracked invalidation: ref writes that
    // no cached relation can reach leave every entry warm — the PR 4
    // epoch contract dropped the whole store here.
    let mut s = Session::new();
    s.store_reset();
    s.run(
        "val r = {[K=1, A=10], [K=2, A=20]}; val probe = {[K=1]};
         val side = ref(0);",
    )
    .unwrap();
    let q = "select x.A where y <- probe, x <- r with x.K = y.K;";
    assert_eq!(eval(&mut s, q).unwrap(), "{10}");
    let warm = s.store_stats();
    assert_eq!(warm.builds, 1, "{warm:?}");
    for i in 0..5 {
        s.eval_one(&format!("side := {i};")).unwrap();
        assert_eq!(eval(&mut s, q).unwrap(), "{10}");
    }
    let after = s.store_stats();
    assert_eq!(after.builds, 1, "cache survived every write: {after:?}");
    assert_eq!(after.hits, warm.hits + 5, "{after:?}");
    assert_eq!(
        (after.invalidated, after.cleared, after.entries),
        (0, 0, warm.entries),
        "zero evictions from unrelated writes: {after:?}"
    );
}

#[test]
fn write_reaching_cached_rows_evicts_the_entry() {
    // The other direction: rows of the indexed relation hold a ref;
    // writing through it must evict that entry (counted as
    // `invalidated`) even though the key expressions never read ref
    // contents — the belt-and-braces half of the contract.
    let mut s = Session::new();
    s.store_reset();
    s.run(
        "val d = ref([Tag=1]);
         val r = {[K=1, D=d], [K=2, D=d]};
         val probe = {[K=1], [K=2], [K=3], [K=4]};",
    )
    .unwrap();
    // Probe side larger, so `r` (whose rows carry the ref) builds.
    let q = "select x.K where y <- probe, x <- r with x.K = y.K;";
    assert_eq!(eval(&mut s, q).unwrap(), "{1, 2}");
    let warm = s.store_stats();
    assert_eq!((warm.builds, warm.rc_entries), (1, 1), "{warm:?}");
    s.eval_one("d := [Tag=2];").unwrap();
    assert_eq!(eval(&mut s, q).unwrap(), "{1, 2}");
    let after = s.store_stats();
    assert!(after.invalidated >= 1, "{after:?}");
    assert_eq!(after.builds, 2, "rebuilt after the eviction: {after:?}");
}

#[test]
fn alpha_equivalent_queries_share_one_index() {
    // Fingerprints normalize the binder to `_`, so renaming a generator
    // variable does not duplicate the cached grouping.
    let mut s = Session::new();
    s.store_reset();
    s.run("val r = {[K=1, A=10], [K=2, A=20]}; val probe = {[K=1]};")
        .unwrap();
    assert_eq!(
        eval(
            &mut s,
            "select x.A where y <- probe, x <- r with x.K = y.K;"
        )
        .unwrap(),
        "{10}"
    );
    assert_eq!(
        eval(
            &mut s,
            "select z.A where w <- probe, z <- r with z.K = w.K;"
        )
        .unwrap(),
        "{10}"
    );
    let stats = s.store_stats();
    assert_eq!(
        (stats.builds, stats.hits, stats.entries),
        (1, 1, 1),
        "{stats:?}"
    );
}

#[test]
fn rebinding_a_rebuilt_relation_misses_by_pointer_identity() {
    // No reference write at all: the relation is rebuilt functionally
    // and rebound under the same name. Copy-on-write storage gives the
    // union a fresh identity, so the cache cannot serve the old index.
    let mut s = Session::new();
    s.store_reset();
    s.run("val r = {[K=1, A=10]}; val probe = {[K=1]};")
        .unwrap();
    let q = "select x.A where y <- probe, x <- r with x.K = y.K;";
    assert_eq!(eval(&mut s, q).unwrap(), "{10}");
    s.run("val r = union(r, {[K=1, A=99]});").unwrap();
    assert_eq!(eval(&mut s, q).unwrap(), "{10, 99}");
    let stats = s.store_stats();
    assert_eq!(stats.builds, 2, "{stats:?}");
    assert_eq!(stats.hits, 0, "{stats:?}");
}

#[test]
fn index_scan_sees_mutations_through_a_ref() {
    let mut s = Session::new();
    s.store_reset();
    s.run("val sref = ref({[K=1, A=10], [K=2, A=20]});")
        .unwrap();
    let q = "select x.A where x <- !sref with x.K = 2;";
    assert_eq!(eval(&mut s, q).unwrap(), "{20}");
    assert_eq!(eval(&mut s, q).unwrap(), "{20}");
    let warm = s.store_stats();
    assert_eq!((warm.builds, warm.hits), (1, 1), "{warm:?}");
    s.eval_one("sref := union(!sref, {[K=2, A=21]});").unwrap();
    assert_eq!(eval(&mut s, q).unwrap(), "{20, 21}");
    assert_eq!(s.store_stats().hits, warm.hits, "no stale hit");
}

#[test]
fn planner_and_interpreter_agree_on_a_warm_cache() {
    // Same query three times through the store, checked against the
    // nested loop each time — a cached probe must be observationally
    // identical to a fresh build.
    let (mut s, _db) = scaled_parts_session(16, 5, 3);
    s.store_reset();
    let q = "select (p.Pname, sb.P#) where p <- parts, sb <- supplied_by \
             with p.P# = sb.P#;";
    let reference = with_planner(false, || eval(&mut s, q));
    for round in 0..3 {
        let planned = with_planner(true, || eval(&mut s, q));
        assert_eq!(planned, reference, "round {round}");
    }
    assert!(s.store_stats().hits >= 1);
}

#[test]
fn lru_budget_bounds_cached_rows_end_to_end() {
    let mut s = Session::new();
    s.store_reset();
    machiavelli::store::with_store(|st| st.set_budget(3));
    // The probe side matches `big`'s cardinality so the open-time swap
    // keeps `big` as the build and the budget decline is what's
    // exercised.
    s.run(
        "val big = {[K=1], [K=2], [K=3], [K=4]}; \
           val small = {[K=1], [K=2]}; \
           val probe = {[K=1], [K=2], [K=3], [K=4]};",
    )
    .unwrap();
    // `big` exceeds the whole budget: runs fine, caches nothing.
    eval(
        &mut s,
        "select x where y <- probe, x <- big with x.K = y.K;",
    )
    .unwrap();
    assert_eq!(s.store_stats().entries, 0);
    // An oversized IndexScan shape streams (no grouping is even built)
    // and still answers correctly.
    assert_eq!(
        eval(&mut s, "select x.K where x <- big with x.K = 2;").unwrap(),
        "{2}"
    );
    assert_eq!(s.store_stats().entries, 0);
    // `small` fits and is cached (the swap also cannot prefer `probe`:
    // it is not smaller than `small`… it is larger, so `small` builds).
    eval(
        &mut s,
        "select x where y <- probe, x <- small with x.K = y.K;",
    )
    .unwrap();
    let stats = s.store_stats();
    assert_eq!((stats.entries, stats.cached_rows), (1, 2), "{stats:?}");
    machiavelli::store::with_store(|st| st.set_budget(machiavelli::store::DEFAULT_BUDGET_ROWS));
}

/// Drive one session through a scripted query/mutation interleaving,
/// returning every query result plus the final store counters.
fn drive(
    ops: &[(bool, i64, i64)],
    seed: i64,
    paranoid: bool,
) -> (Vec<Result<String, String>>, machiavelli::store::StoreStats) {
    let prev_mode = machiavelli::value::tuning::set_store_epoch_clear(paranoid);
    let mut s = Session::new();
    s.store_reset();
    s.run(&format!(
        "val dbref = ref({{[K=0, A={seed}], [K=1, A={}]}});
         val fixed = {{[K=0, B=7], [K=2, B=9]}};
         val probe = {{[K=0], [K=1], [K=2], [K=3]}};
         val side = ref(0);",
        seed + 1
    ))
    .unwrap();
    let queries = [
        "select (y.K, x.A) where y <- probe, x <- !dbref with x.K = y.K;",
        "select (x.A, z.B) where x <- !dbref, z <- fixed with x.K = z.K;",
    ];
    let mut outs = Vec::new();
    for (i, (mutate, k, a)) in ops.iter().enumerate() {
        if *mutate {
            if k % 2 == 0 {
                // A write the cached relations cannot reach.
                s.eval_one(&format!("side := {a};")).unwrap();
            } else {
                s.eval_one(&format!("dbref := union(!dbref, {{[K={k}, A={a}]}});"))
                    .unwrap();
            }
        }
        outs.push(eval(&mut s, queries[i % queries.len()]));
    }
    let stats = s.store_stats();
    machiavelli::value::tuning::set_store_epoch_clear(prev_mode);
    (outs, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Interleave equi-join queries (over both a ref-held and a
    // plainly-bound relation) with reference mutations, and require the
    // planner+store path to agree with the `select_loop` reference
    // after every step.
    #[test]
    fn interleaved_queries_and_mutations_never_see_stale_rows(
        ops in proptest::collection::vec((any::<bool>(), 0i64..5, 0i64..40), 1..10),
        seed in 0i64..100,
    ) {
        let mut s = Session::new();
        s.store_reset();
        s.run(&format!(
            "val dbref = ref({{[K=0, A={seed}], [K=1, A={}]}});
             val fixed = {{[K=0, B=7], [K=2, B=9]}};
             val probe = {{[K=0], [K=1], [K=2], [K=3]}};",
            seed + 1
        )).unwrap();
        let queries = [
            "select (y.K, x.A) where y <- probe, x <- !dbref with x.K = y.K;",
            "select (x.A, z.B) where x <- !dbref, z <- fixed with x.K = z.K;",
        ];
        for (i, (mutate, k, a)) in ops.iter().enumerate() {
            if *mutate {
                s.eval_one(&format!(
                    "dbref := union(!dbref, {{[K={k}, A={a}]}});"
                )).unwrap();
            }
            let q = queries[i % queries.len()];
            let planned = with_planner(true, || eval(&mut s, q));
            let reference = with_planner(false, || eval(&mut s, q));
            prop_assert!(
                planned == reference,
                "op {i} of {ops:?}: {planned:?} vs {reference:?}"
            );
        }
    }

    // Dependency-tracked invalidation against the PR 4 whole-store
    // clear, over the same interleavings: identical visible results,
    // never more evictions (the precise mode only drops entries the
    // paranoid mode would also have dropped).
    #[test]
    fn dirty_set_invalidation_agrees_with_the_whole_store_clear(
        ops in proptest::collection::vec((any::<bool>(), 0i64..5, 0i64..40), 1..10),
        seed in 0i64..100,
    ) {
        let (precise_out, precise) = drive(&ops, seed, false);
        let (paranoid_out, paranoid) = drive(&ops, seed, true);
        prop_assert!(
            precise_out == paranoid_out,
            "visible results diverge on {ops:?}: {precise_out:?} vs {paranoid_out:?}"
        );
        let precise_drops = precise.invalidated + precise.cleared;
        let paranoid_drops = paranoid.invalidated + paranoid.cleared;
        prop_assert!(
            precise_drops <= paranoid_drops,
            "precise mode evicted more ({precise:?} vs {paranoid:?}) on {ops:?}"
        );
        // And strictly fewer rebuilds whenever a mutation actually ran
        // (unrelated `side` writes cost the paranoid mode its cache).
        prop_assert!(precise.builds <= paranoid.builds, "{precise:?} vs {paranoid:?}");
    }
}
