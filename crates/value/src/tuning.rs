//! **Tuning knobs for the parallel lane and the index store**, in one
//! place: every magic size threshold in the workspace lives here as a
//! named, documented constant with an environment override (for
//! benching) and — where sessions need to steer it — a thread-local
//! override (for tests and `Session` configuration).
//!
//! Resolution order for every knob: thread-local override (set by a
//! `Session` method or a test) → environment variable (read once per
//! process) → the documented default constant.
//!
//! | knob | default | env |
//! |---|---|---|
//! | worker threads | `available_parallelism` | `MACHIAVELLI_PAR_THREADS` |
//! | parallel-join build-row cutoff | [`DEFAULT_PAR_JOIN_MIN_BUILD_ROWS`] | `MACHIAVELLI_PAR_JOIN_MIN_ROWS` |
//! | parallel-join probe-drain cap (× build rows) | [`DEFAULT_PAR_JOIN_MAX_PROBE_FACTOR`] | `MACHIAVELLI_PAR_JOIN_MAX_PROBE_FACTOR` |
//! | cached-index parallel-probe row cutoff | [`DEFAULT_PAR_PROBE_MIN_ROWS`] | `MACHIAVELLI_PAR_PROBE_MIN_ROWS` |
//! | parallel-`hom` element cutoff | [`DEFAULT_PAR_HOM_MIN_ITEMS`] | `MACHIAVELLI_PAR_HOM_MIN_ITEMS` |
//! | columnar morsel size (rows) | [`DEFAULT_MORSEL_ROWS`] | `MACHIAVELLI_MORSEL_ROWS` |
//! | columnar-lane row cutoff | [`DEFAULT_COLUMNAR_MIN_ROWS`] | `MACHIAVELLI_COLUMNAR_MIN_ROWS` |
//! | index-store row budget | [`DEFAULT_STORE_BUDGET_ROWS`] | `MACHIAVELLI_STORE_BUDGET_ROWS` |
//! | query tracing (per-operator spans) | off | `MACHIAVELLI_TRACE` |
//!
//! (`docs/PERFORMANCE.md` documents every knob alongside the execution
//! contracts they gate. The tracing knob lives in `machiavelli-trace`
//! — same resolution order, thread-local setter
//! `machiavelli_trace::set_tracing` — and is documented with the rest
//! of the observability surface in `docs/OBSERVABILITY.md`.)
//!
//! The module also hosts the session-scoped (thread-local) **parallel
//! ablation toggle** ([`set_parallel_enabled`], mirroring the store's
//! `set_store_enabled`) and the **parallel hit/fallback counters**
//! ([`ParStats`]) surfaced by `Session::par_stats` and the REPL's
//! `:stats`.

use std::cell::Cell;
use std::sync::OnceLock;

// --- documented defaults ---------------------------------------------------

/// Below this many *build-side* rows a hash join never takes the
/// parallel lane: extraction plus thread-coordination overhead would
/// swamp the per-row savings. (The probe side is unknown until the
/// input is drained, so the gate reads the build relation only.)
pub const DEFAULT_PAR_JOIN_MIN_BUILD_ROWS: usize = 4096;

/// The parallel join materializes the probe side before fanning out
/// (the sequential probe streams it); to bound that memory, draining
/// stops after `build_rows × this factor` rows and the join falls back
/// to the streaming sequential probe over the drained prefix plus the
/// live remainder. 64 keeps the common shapes (probe within an order
/// of magnitude of the build) on the lane while capping pathological
/// pipelines.
pub const DEFAULT_PAR_JOIN_MAX_PROBE_FACTOR: usize = 64;

/// Below this many *probe-side* rows a hash join over a **cached**
/// plain index stays on the sequential probe. Distinct from the
/// build-row cutoff: a cached probe pays no build at all, so the only
/// overhead to amortize is probe materialization plus thread
/// coordination — but the per-row win (skipping the interpreter's key
/// dispatch) is also smaller than a full build's, so the break-even
/// lands in the same region.
pub const DEFAULT_PAR_PROBE_MIN_ROWS: usize = 4096;

/// Below this many elements a proper `hom` application stays on the
/// sequential interpreter fold.
pub const DEFAULT_PAR_HOM_MIN_ITEMS: usize = 1024;

/// `par_hom` itself declines to spawn unless every thread would get at
/// least this many elements (the former inline `2 * n_threads` cutoff).
pub const PAR_HOM_MIN_ITEMS_PER_THREAD: usize = 2;

/// Default index-store row budget: generous for the paper-scale
/// workloads while still bounding a long session that touches many
/// relations (the store's LRU evicts past it).
pub const DEFAULT_STORE_BUDGET_ROWS: usize = 1 << 20;

/// Rows per **morsel** — the unit of work the columnar scheduler hands
/// to (and lets workers steal between) its deques. Small enough that a
/// skewed filter cannot serialize the pipeline on one slow range, large
/// enough that per-morsel bookkeeping stays negligible against the
/// per-row work.
pub const DEFAULT_MORSEL_ROWS: usize = 2048;

/// Below this many relation rows an eligible pipeline stays on the
/// sequential path instead of the columnar lane: snapshot lookup plus
/// thread coordination would swamp the per-row savings.
pub const DEFAULT_COLUMNAR_MIN_ROWS: usize = 4096;

// --- env-backed resolution -------------------------------------------------

fn env_usize(var: &'static str, cache: &'static OnceLock<Option<usize>>) -> Option<usize> {
    *cache.get_or_init(|| {
        std::env::var(var)
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

thread_local! {
    static PAR_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
    static PAR_JOIN_MIN_BUILD_ROWS: Cell<Option<usize>> = const { Cell::new(None) };
    static PAR_PROBE_MIN_ROWS: Cell<Option<usize>> = const { Cell::new(None) };
    static PAR_HOM_MIN_ITEMS: Cell<Option<usize>> = const { Cell::new(None) };
    static MORSEL_ROWS: Cell<Option<usize>> = const { Cell::new(None) };
    static COLUMNAR_MIN_ROWS: Cell<Option<usize>> = const { Cell::new(None) };
    static PARALLEL_ENABLED: Cell<bool> = const { Cell::new(true) };
    static STORE_EPOCH_CLEAR: Cell<bool> = const { Cell::new(false) };
    static PAR_STATS: Cell<ParStats> = const { Cell::new(ParStats::new()) };
    static EXEC_STATS: Cell<ExecStats> = const { Cell::new(ExecStats::new()) };
}

/// Worker-thread count for the parallel lane on this thread (= session):
/// explicit override → `MACHIAVELLI_PAR_THREADS` → the machine's
/// `available_parallelism`. Always ≥ 1; a value of 1 disables the
/// parallel lane entirely (everything stays sequential).
pub fn par_threads() -> usize {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    // `available_parallelism` is a surprisingly expensive probe
    // (affinity + cgroup parsing, ~tens of µs) and this accessor sits
    // on every join open — resolve the machine default once.
    static MACHINE: OnceLock<usize> = OnceLock::new();
    PAR_THREADS
        .with(Cell::get)
        .or_else(|| env_usize("MACHIAVELLI_PAR_THREADS", &ENV))
        .unwrap_or_else(|| {
            *MACHINE.get_or_init(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
        })
        .max(1)
}

/// Override the worker-thread count on this thread (`None` restores the
/// env/default resolution), returning the previous override.
pub fn set_par_threads(n: Option<usize>) -> Option<usize> {
    PAR_THREADS.with(|c| c.replace(n.map(|n| n.max(1))))
}

/// The parallel-join build-row cutoff currently in force.
pub fn par_join_min_build_rows() -> usize {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    PAR_JOIN_MIN_BUILD_ROWS
        .with(Cell::get)
        .or_else(|| env_usize("MACHIAVELLI_PAR_JOIN_MIN_ROWS", &ENV))
        .unwrap_or(DEFAULT_PAR_JOIN_MIN_BUILD_ROWS)
}

/// Override the parallel-join cutoff on this thread (tests lower it to
/// exercise the lane on small relations), returning the previous
/// override.
pub fn set_par_join_min_build_rows(n: Option<usize>) -> Option<usize> {
    PAR_JOIN_MIN_BUILD_ROWS.with(|c| c.replace(n))
}

/// How many probe rows the parallel join may materialize for a build
/// side of `build_rows` before it bails to the streaming sequential
/// probe ([`DEFAULT_PAR_JOIN_MAX_PROBE_FACTOR`], env
/// `MACHIAVELLI_PAR_JOIN_MAX_PROBE_FACTOR`).
pub fn par_join_max_probe_rows(build_rows: usize) -> usize {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    let factor = env_usize("MACHIAVELLI_PAR_JOIN_MAX_PROBE_FACTOR", &ENV)
        .unwrap_or(DEFAULT_PAR_JOIN_MAX_PROBE_FACTOR);
    build_rows.saturating_mul(factor)
}

/// The cached-index parallel-probe row cutoff currently in force
/// (thread-local override → `MACHIAVELLI_PAR_PROBE_MIN_ROWS` →
/// [`DEFAULT_PAR_PROBE_MIN_ROWS`]).
pub fn par_probe_min_rows() -> usize {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    PAR_PROBE_MIN_ROWS
        .with(Cell::get)
        .or_else(|| env_usize("MACHIAVELLI_PAR_PROBE_MIN_ROWS", &ENV))
        .unwrap_or(DEFAULT_PAR_PROBE_MIN_ROWS)
}

/// Override the cached-probe cutoff on this thread (tests lower it to
/// exercise the lane on small relations), returning the previous
/// override.
pub fn set_par_probe_min_rows(n: Option<usize>) -> Option<usize> {
    PAR_PROBE_MIN_ROWS.with(|c| c.replace(n))
}

/// The parallel-`hom` element cutoff currently in force.
pub fn par_hom_min_items() -> usize {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    PAR_HOM_MIN_ITEMS
        .with(Cell::get)
        .or_else(|| env_usize("MACHIAVELLI_PAR_HOM_MIN_ITEMS", &ENV))
        .unwrap_or(DEFAULT_PAR_HOM_MIN_ITEMS)
}

/// Override the parallel-`hom` cutoff on this thread, returning the
/// previous override.
pub fn set_par_hom_min_items(n: Option<usize>) -> Option<usize> {
    PAR_HOM_MIN_ITEMS.with(|c| c.replace(n))
}

/// The morsel size currently in force (thread-local override →
/// `MACHIAVELLI_MORSEL_ROWS` → [`DEFAULT_MORSEL_ROWS`]). Always ≥ 1.
pub fn morsel_rows() -> usize {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    MORSEL_ROWS
        .with(Cell::get)
        .or_else(|| env_usize("MACHIAVELLI_MORSEL_ROWS", &ENV))
        .unwrap_or(DEFAULT_MORSEL_ROWS)
        .max(1)
}

/// Override the morsel size on this thread (tests shrink it to force
/// many morsels over small relations), returning the previous override.
pub fn set_morsel_rows(n: Option<usize>) -> Option<usize> {
    MORSEL_ROWS.with(|c| c.replace(n.map(|n| n.max(1))))
}

/// The columnar-lane row cutoff currently in force (thread-local
/// override → `MACHIAVELLI_COLUMNAR_MIN_ROWS` →
/// [`DEFAULT_COLUMNAR_MIN_ROWS`]).
pub fn columnar_min_rows() -> usize {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    COLUMNAR_MIN_ROWS
        .with(Cell::get)
        .or_else(|| env_usize("MACHIAVELLI_COLUMNAR_MIN_ROWS", &ENV))
        .unwrap_or(DEFAULT_COLUMNAR_MIN_ROWS)
}

/// Override the columnar-lane cutoff on this thread, returning the
/// previous override.
pub fn set_columnar_min_rows(n: Option<usize>) -> Option<usize> {
    COLUMNAR_MIN_ROWS.with(|c| c.replace(n))
}

/// The index-store row budget to use for a fresh store (no thread-local
/// override: live stores take `IndexStore::set_budget`).
pub fn store_budget_rows() -> usize {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    env_usize("MACHIAVELLI_STORE_BUDGET_ROWS", &ENV).unwrap_or(DEFAULT_STORE_BUDGET_ROWS)
}

// --- ablation toggle -------------------------------------------------------

/// Is the parallel lane enabled on this thread? (Mirrors the store's
/// `store_enabled`: benches and the equivalence tests flip it off to
/// measure/compare the sequential path.)
pub fn parallel_enabled() -> bool {
    PARALLEL_ENABLED.with(Cell::get)
}

/// Enable/disable the parallel lane on this thread, returning the
/// previous setting (so callers can restore it).
pub fn set_parallel_enabled(on: bool) -> bool {
    PARALLEL_ENABLED.with(|c| c.replace(on))
}

/// Is the index store's **paranoid whole-clear** mode on? When `true`
/// the store reverts to the PR 4 invalidation discipline — drop *every*
/// entry on any reference write — instead of the dirty-set eviction
/// that keeps unaffected entries warm. Kept as an A/B cross-check: the
/// equivalence property tests run both modes and require identical
/// visible results (the precise mode just evicts less).
pub fn store_epoch_clear() -> bool {
    STORE_EPOCH_CLEAR.with(Cell::get)
}

/// Switch the store's paranoid whole-clear mode on/off for this thread,
/// returning the previous setting.
pub fn set_store_epoch_clear(on: bool) -> bool {
    STORE_EPOCH_CLEAR.with(|c| c.replace(on))
}

// --- hit/fallback counters -------------------------------------------------

/// Cumulative parallel-lane counters for this thread (= session),
/// surfaced by `Session::par_stats` and the REPL's `:stats`.
///
/// A **hit** is an execution that actually ran on the parallel lane. A
/// **fallback** is an execution that passed the static and size gates
/// but fell back to the sequential path at runtime — a value failed
/// `to_plain` extraction (identity- or code-bearing data in a row or
/// key) or the plain mini-evaluator declined an expression. Executions
/// that never reach the gates (lane disabled, one thread, sub-threshold
/// input, shape not eligible) are not counted at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParStats {
    /// Hash joins executed on the parallel lane (inline partition
    /// build + probe — the uncached shape).
    pub par_joins: u64,
    /// Eligible hash joins that fell back to the sequential build/probe.
    pub par_join_fallbacks: u64,
    /// Hash joins whose probe ran parallel against a **cached** plain
    /// index (the store-served shape: no build at all, workers probe
    /// the shared index).
    pub par_probes: u64,
    /// Cached-probe attempts that fell back to the sequential probe
    /// (a probe key declined extraction, or the probe drain hit its
    /// memory cap).
    pub par_probe_fallbacks: u64,
    /// Proper `hom` applications folded through `par_hom`.
    pub par_homs: u64,
    /// Proper `hom` applications that fell back to the sequential fold.
    pub par_hom_fallbacks: u64,
}

impl ParStats {
    const fn new() -> ParStats {
        ParStats {
            par_joins: 0,
            par_join_fallbacks: 0,
            par_probes: 0,
            par_probe_fallbacks: 0,
            par_homs: 0,
            par_hom_fallbacks: 0,
        }
    }
}

/// This thread's parallel-lane counters.
pub fn par_stats() -> ParStats {
    PAR_STATS.with(Cell::get)
}

/// Zero this thread's parallel-lane counters.
pub fn reset_par_stats() {
    PAR_STATS.with(|c| c.set(ParStats::new()));
}

/// Record a parallel-join outcome (`hit` = ran on the parallel lane).
pub fn note_par_join(hit: bool) {
    PAR_STATS.with(|c| {
        let mut s = c.get();
        if hit {
            s.par_joins += 1;
        } else {
            s.par_join_fallbacks += 1;
        }
        c.set(s);
    });
}

/// Record a cached-index parallel-probe outcome (`hit` = the probe ran
/// on worker threads against the shared plain index).
pub fn note_par_probe(hit: bool) {
    PAR_STATS.with(|c| {
        let mut s = c.get();
        if hit {
            s.par_probes += 1;
        } else {
            s.par_probe_fallbacks += 1;
        }
        c.set(s);
    });
}

/// Record a parallel-`hom` outcome (`hit` = folded through `par_hom`).
pub fn note_par_hom(hit: bool) {
    PAR_STATS.with(|c| {
        let mut s = c.get();
        if hit {
            s.par_homs += 1;
        } else {
            s.par_hom_fallbacks += 1;
        }
        c.set(s);
    });
}

// --- columnar-lane counters ------------------------------------------------

/// Cumulative columnar-lane counters for this thread (= session),
/// surfaced by `Session::exec_stats` and the REPL's `:stats` —
/// mirroring [`ParStats`] for the morsel-driven columnar subsystem
/// (`machiavelli-exec`).
///
/// An **offload** is a pipeline the planner actually executed on the
/// columnar lane; an **offload fallback** passed the static and size
/// gates but declined at runtime (a relation failed snapshot
/// extraction, or the plain mini-evaluator declined a filter on live
/// data). Morsel counters are aggregated per scheduler run on the
/// coordinating thread — worker threads never touch the thread-local.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Columnar snapshots extracted from relation rows this session.
    pub snapshots_built: u64,
    /// Columnar snapshots adopted from the process-wide shared tier
    /// instead of being rebuilt.
    pub snapshots_adopted: u64,
    /// Morsels (fixed-size row ranges) executed by scheduler workers.
    pub morsels_executed: u64,
    /// Morsels a worker stole from another worker's deque (a subset of
    /// `morsels_executed`; > 0 means work stealing actually engaged).
    pub morsels_stolen: u64,
    /// Pipelines executed end to end on the columnar lane.
    pub offloads: u64,
    /// Eligible pipelines that fell back to the sequential path at
    /// runtime.
    pub offload_fallbacks: u64,
}

impl ExecStats {
    const fn new() -> ExecStats {
        ExecStats {
            snapshots_built: 0,
            snapshots_adopted: 0,
            morsels_executed: 0,
            morsels_stolen: 0,
            offloads: 0,
            offload_fallbacks: 0,
        }
    }
}

/// This thread's columnar-lane counters.
pub fn exec_stats() -> ExecStats {
    EXEC_STATS.with(Cell::get)
}

/// Zero this thread's columnar-lane counters.
pub fn reset_exec_stats() {
    EXEC_STATS.with(|c| c.set(ExecStats::new()));
}

/// Record a columnar snapshot build (`adopted` = served by the shared
/// tier instead of extracted locally).
pub fn note_snapshot(adopted: bool) {
    EXEC_STATS.with(|c| {
        let mut s = c.get();
        if adopted {
            s.snapshots_adopted += 1;
        } else {
            s.snapshots_built += 1;
        }
        c.set(s);
    });
}

/// Record one scheduler run's morsel totals (aggregated by the
/// coordinator after workers join; `stolen` ≤ `executed`).
pub fn note_morsels(executed: u64, stolen: u64) {
    EXEC_STATS.with(|c| {
        let mut s = c.get();
        s.morsels_executed += executed;
        s.morsels_stolen += stolen;
        c.set(s);
    });
}

/// Record a columnar-lane outcome (`hit` = the pipeline ran offloaded).
pub fn note_offload(hit: bool) {
    EXEC_STATS.with(|c| {
        let mut s = c.get();
        if hit {
            s.offloads += 1;
        } else {
            s.offload_fallbacks += 1;
        }
        c.set(s);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_local_overrides_win_and_restore() {
        let prev = set_par_threads(Some(3));
        assert_eq!(par_threads(), 3);
        set_par_threads(prev);

        let prev = set_par_join_min_build_rows(Some(7));
        assert_eq!(par_join_min_build_rows(), 7);
        set_par_join_min_build_rows(prev);

        let prev = set_par_probe_min_rows(Some(5));
        assert_eq!(par_probe_min_rows(), 5);
        set_par_probe_min_rows(prev);

        let prev = set_par_hom_min_items(Some(9));
        assert_eq!(par_hom_min_items(), 9);
        set_par_hom_min_items(prev);

        let prev = set_morsel_rows(Some(11));
        assert_eq!(morsel_rows(), 11);
        set_morsel_rows(prev);

        let prev = set_columnar_min_rows(Some(13));
        assert_eq!(columnar_min_rows(), 13);
        set_columnar_min_rows(prev);
    }

    #[test]
    fn morsel_rows_clamps_to_one() {
        let prev = set_morsel_rows(Some(0));
        assert_eq!(morsel_rows(), 1);
        set_morsel_rows(prev);
    }

    #[test]
    fn exec_counters_accumulate_and_reset() {
        reset_exec_stats();
        note_snapshot(false);
        note_snapshot(true);
        note_morsels(8, 3);
        note_offload(true);
        note_offload(false);
        let s = exec_stats();
        assert_eq!(
            (
                s.snapshots_built,
                s.snapshots_adopted,
                s.morsels_executed,
                s.morsels_stolen,
                s.offloads,
                s.offload_fallbacks
            ),
            (1, 1, 8, 3, 1, 1)
        );
        reset_exec_stats();
        assert_eq!(exec_stats(), ExecStats::default());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let prev = set_par_threads(Some(0));
        assert_eq!(par_threads(), 1);
        set_par_threads(prev);
    }

    #[test]
    fn enable_toggle_round_trips() {
        let prev = set_parallel_enabled(false);
        assert!(!parallel_enabled());
        set_parallel_enabled(prev);
    }

    #[test]
    fn store_epoch_clear_toggle_round_trips() {
        assert!(!store_epoch_clear(), "precise invalidation is the default");
        let prev = set_store_epoch_clear(true);
        assert!(!prev);
        assert!(store_epoch_clear());
        set_store_epoch_clear(prev);
        assert!(!store_epoch_clear());
    }

    #[test]
    fn counters_accumulate_and_reset() {
        reset_par_stats();
        note_par_join(true);
        note_par_join(false);
        note_par_probe(true);
        note_par_probe(false);
        note_par_hom(true);
        let s = par_stats();
        assert_eq!(
            (
                s.par_joins,
                s.par_join_fallbacks,
                s.par_probes,
                s.par_probe_fallbacks,
                s.par_homs,
                s.par_hom_fallbacks
            ),
            (1, 1, 1, 1, 1, 0)
        );
        reset_par_stats();
        assert_eq!(par_stats(), ParStats::default());
    }
}
