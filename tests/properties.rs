//! Property-based tests (proptest) over the core data structures and the
//! algebraic laws the paper relies on:
//!
//! * `MSet` is a canonical set (union/intersection/difference laws);
//! * value-level `join` is idempotent/commutative/associative on
//!   consistent descriptions and computes an upper bound;
//! * `con` is reflexive and symmetric;
//! * `project` is idempotent and monotone;
//! * type-level `⊔`/`⊓` form lub/glb with respect to `≤`;
//! * join strategies agree on random flat relations;
//! * naive and semi-naive closure agree on random digraphs;
//! * the interpreter's `select`/`join` agree with the native substrate;
//! * the plain-value lane round-trips (`to_plain`/`from_plain`) and its
//!   hash/order agree with the `Rc` lane;
//! * the parallel hash join and `par_hom`-backed folds are
//!   result-equivalent to the sequential planner and `select_loop`
//!   across 1/2/4/8 worker threads, and non-extractable data falls back.

use machiavelli::eval::set_planner_enabled;
use machiavelli::types::{glb, le, lub, type_eq, Partial};
use machiavelli::value::{con_value, join_value, project_value, value_cmp, MSet, Value};
use machiavelli_bench::scaled_parts_session;
use machiavelli_relational::{
    edges_to_relation, hash_join, naive_closure, nested_loop_join, seminaive_closure,
    sort_merge_join, Relation,
};
use proptest::prelude::*;
use std::collections::hash_map::DefaultHasher;
use std::hash::Hasher as _;

// ----- generators ---------------------------------------------------------

/// Flat record values over a fixed label universe (so overlaps happen).
fn arb_flat_record() -> impl Strategy<Value = Value> {
    let field = prop_oneof![
        (0i64..5).prop_map(Value::Int),
        "[a-c]{1}".prop_map(Value::str),
        any::<bool>().prop_map(Value::Bool),
    ];
    proptest::collection::btree_map(
        prop_oneof![
            Just("A".to_string()),
            Just("B".to_string()),
            Just("C".to_string())
        ],
        field,
        0..3,
    )
    .prop_map(|m| Value::record(m.into_iter().map(|(l, v)| (l.into(), v))))
}

/// Nested description values (records of records / base values).
fn arb_desc_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        (0i64..10).prop_map(Value::Int),
        "[a-b]{1,2}".prop_map(Value::str),
        any::<bool>().prop_map(Value::Bool),
        Just(Value::Unit),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::btree_map(
                prop_oneof![
                    Just("A".to_string()),
                    Just("B".to_string()),
                    Just("C".to_string()),
                    Just("D".to_string())
                ],
                inner.clone(),
                0..3,
            )
            .prop_map(|m| Value::record(m.into_iter().map(|(l, v)| (l.into(), v)))),
            // Sets must be homogeneous to be well-typed (heterogeneous
            // sets are rejected statically, and the join laws only hold
            // for typeable values), so set elements are drawn from one
            // scalar type.
            proptest::collection::vec(0i64..6, 0..4)
                .prop_map(|xs| Value::set(xs.into_iter().map(Value::Int))),
        ]
    })
}

/// Description *types* over a small label universe.
fn arb_desc_type() -> impl Strategy<Value = machiavelli::types::Ty> {
    use machiavelli::types::ty::*;
    let leaf = prop_oneof![Just(t_int()), Just(t_str()), Just(t_bool()), Just(t_unit()),];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            proptest::collection::btree_map(
                prop_oneof![
                    Just("A".to_string()),
                    Just("B".to_string()),
                    Just("C".to_string())
                ],
                inner.clone(),
                0..3,
            )
            .prop_map(|m| t_record(m.into_iter().map(|(l, t)| (l.into(), t)))),
            inner.prop_map(t_set),
        ]
    })
}

fn arb_edges() -> impl Strategy<Value = Vec<(i64, i64)>> {
    proptest::collection::vec((0i64..12, 0i64..12), 0..40)
}

// ----- MSet laws ----------------------------------------------------------

proptest! {
    #[test]
    fn mset_canonical(xs in proptest::collection::vec(0i64..20, 0..30)) {
        let s = MSet::from_iter(xs.iter().map(|&x| Value::Int(x)));
        // Sorted and duplicate-free.
        for w in s.as_slice().windows(2) {
            prop_assert!(value_cmp(&w[0], &w[1]) == std::cmp::Ordering::Less);
        }
        // Membership agrees with the source list.
        for x in 0..20 {
            prop_assert_eq!(s.contains(&Value::Int(x)), xs.contains(&x));
        }
    }

    #[test]
    fn mset_algebra(
        xs in proptest::collection::vec(0i64..15, 0..20),
        ys in proptest::collection::vec(0i64..15, 0..20),
    ) {
        let a = MSet::from_iter(xs.iter().map(|&x| Value::Int(x)));
        let b = MSet::from_iter(ys.iter().map(|&x| Value::Int(x)));
        // Commutativity / idempotence.
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        prop_assert_eq!(a.union(&a), a.clone());
        // |A ∪ B| = |A| + |B| − |A ∩ B|.
        prop_assert_eq!(a.union(&b).len() + a.intersect(&b).len(), a.len() + b.len());
        // A \ B and A ∩ B partition A.
        prop_assert_eq!(a.difference(&b).len() + a.intersect(&b).len(), a.len());
        // Subset laws.
        prop_assert!(a.intersect(&b).is_subset(&a));
        prop_assert!(a.is_subset(&a.union(&b)));
    }
}

// ----- value join / con / project laws -------------------------------------

proptest! {
    #[test]
    fn con_reflexive_symmetric(a in arb_desc_value(), b in arb_desc_value()) {
        prop_assert!(con_value(&a, &a));
        prop_assert_eq!(con_value(&a, &b), con_value(&b, &a));
    }

    #[test]
    fn join_laws_on_consistent_values(a in arb_desc_value(), b in arb_desc_value(), c in arb_desc_value()) {
        prop_assert_eq!(join_value(&a, &a).unwrap(), a.clone());
        if con_value(&a, &b) {
            let ab = join_value(&a, &b).unwrap();
            let ba = join_value(&b, &a).unwrap();
            prop_assert_eq!(&ab, &ba);
            // join is increasing: joining again with an operand is a no-op.
            prop_assert_eq!(join_value(&ab, &a).unwrap(), ab.clone());
            // Associativity where all joins are defined.
            if con_value(&b, &c) && con_value(&ab, &c) {
                if let (Ok(bc), Ok(abc1)) = (join_value(&b, &c), join_value(&ab, &c)) {
                    if con_value(&a, &bc) {
                        prop_assert_eq!(join_value(&a, &bc).unwrap(), abc1);
                    }
                }
            }
        } else {
            prop_assert!(join_value(&a, &b).is_err());
        }
    }

    #[test]
    fn project_idempotent(ty in arb_desc_type(), v in arb_desc_value()) {
        if let Ok(p) = project_value(&v, &ty) {
            prop_assert_eq!(project_value(&p, &ty).unwrap(), p);
        }
    }
}

// ----- type ordering laws --------------------------------------------------

proptest! {
    #[test]
    fn le_is_a_partial_order(a in arb_desc_type(), b in arb_desc_type(), c in arb_desc_type()) {
        prop_assert_eq!(le(&a, &a), Partial::Known(true));
        // Antisymmetry.
        if le(&a, &b) == Partial::Known(true) && le(&b, &a) == Partial::Known(true) {
            prop_assert_eq!(type_eq(&a, &b), Partial::Known(true));
        }
        // Transitivity.
        if le(&a, &b) == Partial::Known(true) && le(&b, &c) == Partial::Known(true) {
            prop_assert_eq!(le(&a, &c), Partial::Known(true));
        }
    }

    #[test]
    fn lub_is_least_upper_bound(a in arb_desc_type(), b in arb_desc_type()) {
        if let Ok(Partial::Known(l)) = lub(&a, &b) {
            prop_assert_eq!(le(&a, &l), Partial::Known(true));
            prop_assert_eq!(le(&b, &l), Partial::Known(true));
            // Least: lub(a, lub(a,b)) = lub(a,b).
            let again = lub(&a, &l).unwrap().known().unwrap();
            prop_assert_eq!(type_eq(&again, &l), Partial::Known(true));
        }
    }

    #[test]
    fn glb_is_greatest_lower_bound(a in arb_desc_type(), b in arb_desc_type()) {
        if let Ok(Partial::Known(g)) = glb(&a, &b) {
            prop_assert_eq!(le(&g, &a), Partial::Known(true));
            prop_assert_eq!(le(&g, &b), Partial::Known(true));
            let again = glb(&g, &a).unwrap().known().unwrap();
            prop_assert_eq!(type_eq(&again, &g), Partial::Known(true));
        }
    }

    #[test]
    fn lub_glb_consistency(a in arb_desc_type(), b in arb_desc_type()) {
        // If a ≤ b then a ⊔ b = b and a ⊓ b = a.
        if le(&a, &b) == Partial::Known(true) {
            let l = lub(&a, &b).unwrap().known().unwrap();
            prop_assert_eq!(type_eq(&l, &b), Partial::Known(true));
            let g = glb(&a, &b).unwrap().known().unwrap();
            prop_assert_eq!(type_eq(&g, &a), Partial::Known(true));
        }
    }
}

// ----- algorithm agreement --------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn join_strategies_agree(
        xs in proptest::collection::vec(arb_flat_record(), 0..15),
        ys in proptest::collection::vec(arb_flat_record(), 0..15),
    ) {
        // Restrict to homogeneous flat relations: take the first row's
        // labels as the schema for each side.
        let schema_of = |v: &Value| match v {
            Value::Record(fs) => fs.keys().copied().collect::<Vec<_>>(),
            _ => vec![],
        };
        let homog = |rows: Vec<Value>| -> Relation {
            let Some(first) = rows.first() else { return Relation::new() };
            let schema = schema_of(first);
            Relation::from_rows(rows.iter().filter(|r| schema_of(r) == schema).cloned())
        };
        let r = homog(xs);
        let s = homog(ys);
        let nl = nested_loop_join(&r, &s);
        prop_assert_eq!(&nl, &hash_join(&r, &s));
        prop_assert_eq!(&nl, &sort_merge_join(&r, &s));
    }

    #[test]
    fn closures_agree_and_are_monotone(edges in arb_edges()) {
        let naive = naive_closure(&edges);
        let semi = seminaive_closure(&edges);
        prop_assert_eq!(&naive, &semi);
        for e in &edges {
            prop_assert!(naive.contains(e));
        }
        // Idempotent.
        let again = naive_closure(&naive.iter().copied().collect::<Vec<_>>());
        prop_assert_eq!(again, naive);
    }
}

// ----- bulk-merge and structural hashing -------------------------------------

proptest! {
    #[test]
    fn mset_extend_matches_repeated_insert(
        base in proptest::collection::vec(0i64..25, 0..20),
        adds in proptest::collection::vec(0i64..25, 0..20),
    ) {
        let mut bulk = MSet::from_iter(base.iter().map(|&x| Value::Int(x)));
        let mut slow = bulk.clone();
        bulk.extend(adds.iter().map(|&x| Value::Int(x)));
        for &x in &adds {
            slow.insert(Value::Int(x));
        }
        prop_assert_eq!(&bulk, &slow);
        // extend is union with the normalized additions.
        let addset = MSet::from_iter(adds.iter().map(|&x| Value::Int(x)));
        prop_assert_eq!(bulk, MSet::from_iter(base.into_iter().map(Value::Int)).union(&addset));
    }

    #[test]
    fn structural_hash_respects_equality(a in arb_desc_value(), b in arb_desc_value()) {
        let digest = |v: &Value| {
            let mut h = DefaultHasher::new();
            machiavelli::value::hash_value(v, &mut h);
            h.finish()
        };
        // Equal values must hash equal (the HashMap soundness direction).
        if a == b {
            prop_assert_eq!(digest(&a), digest(&b));
        }
        prop_assert_eq!(digest(&a), digest(&a.clone()));
    }
}

// ----- planner vs nested-loop semantics --------------------------------------

/// Build a random 1–3-generator comprehension over the part–supplier
/// schema: sources drawn from `suppliers` / `supplied_by` / `parts` /
/// a dependent `<var>.Suppliers`, equi-join conjuncts between generator
/// pairs, and pushdown-able key filters — the space the planner covers
/// (plus shapes it declines, which exercise classification). Driven by a
/// seed rather than nested strategies so the query shape shrinks simply.
fn random_comprehension(seed: u64, key_space: u64) -> String {
    let mut state = seed | 1;
    let mut next = move |m: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % m.max(1)
    };
    struct Gen {
        var: &'static str,
        source: String,
        key: &'static str,
    }
    let vars = ["x", "y", "z"];
    let n_gens = 1 + next(3) as usize;
    let mut gens: Vec<Gen> = Vec::new();
    for var in vars.iter().take(n_gens) {
        let (source, key) = match next(4) {
            0 => ("suppliers".to_string(), "S#"),
            1 => ("supplied_by".to_string(), "P#"),
            2 => ("parts".to_string(), "P#"),
            _ => match gens.iter().rev().find(|g| g.source == "supplied_by") {
                // Dependent: range over the nested supplier set of an
                // earlier binder.
                Some(prev) => (format!("{}.Suppliers", prev.var), "S#"),
                None => ("suppliers".to_string(), "S#"),
            },
        };
        gens.push(Gen { var, source, key });
    }
    let mut conjuncts: Vec<String> = Vec::new();
    for i in 1..n_gens {
        if next(3) == 0 {
            continue; // cross product with this generator
        }
        let j = next(i as u64) as usize;
        let (a, b) = if next(2) == 0 { (j, i) } else { (i, j) };
        conjuncts.push(format!(
            "{}.{} = {}.{}",
            gens[a].var, gens[a].key, gens[b].var, gens[b].key
        ));
    }
    for g in &gens {
        if next(3) == 0 {
            conjuncts.push(format!("{}.{} > {}", g.var, g.key, next(key_space)));
        }
    }
    if conjuncts.is_empty() {
        conjuncts.push("true".into());
    }
    let result = gens
        .iter()
        .map(|g| format!("{}.{}", g.var, g.key))
        .collect::<Vec<_>>()
        .join(", ");
    let where_clause = gens
        .iter()
        .map(|g| format!("{} <- {}", g.var, g.source))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "select ({result}) where {where_clause} with {};",
        conjuncts.join(" andalso ")
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn planner_matches_select_loop_on_random_comprehensions(
        seed in 0u64..u64::MAX / 2,
        n_parts in 4usize..24,
        n_suppliers in 2usize..10,
    ) {
        let src = random_comprehension(seed, 2 * n_parts as u64);
        let (mut session, _db) = scaled_parts_session(n_parts, n_suppliers, seed ^ 0x9e3779b9);
        let run = |s: &mut machiavelli::Session, on: bool| {
            let prev = set_planner_enabled(on);
            let out = s
                .eval_one(&src)
                .map(|o| machiavelli::value::show_value(&o.value))
                .map_err(|e| e.to_string());
            set_planner_enabled(prev);
            out
        };
        let planned = run(&mut session, true);
        let interpreted = run(&mut session, false);
        // (On mismatch the query shape is recoverable from the seed.)
        prop_assert!(planned == interpreted, "{}: {:?} vs {:?}", src, planned, interpreted);
    }
}

// ----- the plain-value lane ---------------------------------------------------

proptest! {
    #[test]
    fn plain_lane_round_trips_and_agrees(a in arb_desc_value(), b in arb_desc_value()) {
        use machiavelli::value::plain::{from_plain, plain_cmp, plain_hash, to_plain};
        // arb_desc_value produces pure data (no refs/dynamics), so
        // extraction must succeed…
        let pa = to_plain(&a).expect("description data extracts");
        let pb = to_plain(&b).expect("description data extracts");
        // …round-trip structurally…
        prop_assert_eq!(&from_plain(&pa), &a);
        // …order identically…
        prop_assert_eq!(plain_cmp(&pa, &pb), value_cmp(&a, &b));
        // …and hash identically (the partition-lane soundness direction).
        let dv = |v: &Value| {
            let mut h = DefaultHasher::new();
            machiavelli::value::hash_value(v, &mut h);
            h.finish()
        };
        let dp = |p: &machiavelli::value::PlainValue| {
            let mut h = DefaultHasher::new();
            plain_hash(p, &mut h);
            h.finish()
        };
        prop_assert_eq!(dv(&a), dp(&pa));
    }
}

// ----- the parallel lane vs the sequential paths ------------------------------

/// Evaluate `src` in `session` with an explicit execution mode:
/// `planner` toggles plan dispatch, `par` = `Some(t)` forces the
/// parallel lane on with `t` worker threads and a 1-row join cutoff
/// (`None` disables the lane). The store is disabled throughout so
/// eligible joins route to the parallel lane instead of the index
/// cache, and every override is restored before returning.
fn run_in_mode(
    session: &mut machiavelli::Session,
    src: &str,
    planner: bool,
    par: Option<usize>,
) -> Result<String, String> {
    use machiavelli::value::tuning;
    let prev_planner = set_planner_enabled(planner);
    let prev_store = machiavelli::store::set_store_enabled(false);
    let prev_enabled = tuning::set_parallel_enabled(par.is_some());
    let prev_threads = tuning::set_par_threads(par);
    let prev_rows = tuning::set_par_join_min_build_rows(Some(1));
    let prev_hom = tuning::set_par_hom_min_items(Some(1));
    let out = session
        .eval_one(src)
        .map(|o| machiavelli::value::show_value(&o.value))
        .map_err(|e| e.to_string());
    tuning::set_par_hom_min_items(prev_hom);
    tuning::set_par_join_min_build_rows(prev_rows);
    tuning::set_par_threads(prev_threads);
    tuning::set_parallel_enabled(prev_enabled);
    machiavelli::store::set_store_enabled(prev_store);
    set_planner_enabled(prev_planner);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // The parallel hash join is result-equivalent to the sequential
    // planner and to `select_loop` across 1/2/4/8 worker threads, on
    // the same seeded comprehension space the planner property uses —
    // duplicate keys (tiny key spaces) and empty hash partitions
    // (fewer distinct keys than partitions) arise naturally.
    #[test]
    fn parallel_join_matches_sequential_paths(
        seed in 0u64..u64::MAX / 2,
        n_parts in 4usize..24,
        n_suppliers in 2usize..10,
    ) {
        let src = random_comprehension(seed, 2 * n_parts as u64);
        let (mut session, _db) = scaled_parts_session(n_parts, n_suppliers, seed ^ 0x51c6e1);
        let loop_ref = run_in_mode(&mut session, &src, false, None);
        let seq_ref = run_in_mode(&mut session, &src, true, None);
        prop_assert!(seq_ref == loop_ref, "{src}: {seq_ref:?} vs {loop_ref:?}");
        for threads in [1usize, 2, 4, 8] {
            let par = run_in_mode(&mut session, &src, true, Some(threads));
            prop_assert!(
                par == seq_ref,
                "{src} @ {threads} threads: {par:?} vs {seq_ref:?}"
            );
        }
    }

    // `par_hom`-backed folds (the prelude's `card`/`sum`/`member` and
    // a raw product fold) agree with the sequential interpreter fold
    // across 1/2/4/8 worker threads.
    #[test]
    fn parallel_hom_folds_match_sequential(
        xs in proptest::collection::vec(-50i64..50, 0..60),
        k in -50i64..50,
    ) {
        let mut session = machiavelli::Session::new();
        session
            .bind_external("S", Value::set(xs.iter().map(|&x| Value::Int(x))), "{int}")
            .unwrap();
        let src = format!(
            "(card(S), sum(S), member({k}, S), hom((fn(x) => x), *, 1, S));"
        );
        let seq_ref = run_in_mode(&mut session, &src, true, None);
        prop_assert!(seq_ref.is_ok(), "{seq_ref:?}");
        for threads in [1usize, 2, 4, 8] {
            let par = run_in_mode(&mut session, &src, true, Some(threads));
            prop_assert!(par == seq_ref, "{src} @ {threads} threads: {par:?} vs {seq_ref:?}");
        }
    }
}

/// Evaluate `src` with the **composed** store+parallel configuration:
/// store enabled (cacheable builds are served from / inserted into the
/// session index store), parallel lane on with `t` threads and 1-row
/// join/probe cutoffs — so store-served plain indexes take the cached
/// parallel probe. `par = None` keeps the store but disables the lane
/// (the sequential cached probe).
fn run_composed(
    session: &mut machiavelli::Session,
    src: &str,
    par: Option<usize>,
) -> Result<String, String> {
    use machiavelli::value::tuning;
    let prev_planner = set_planner_enabled(true);
    let prev_store = machiavelli::store::set_store_enabled(true);
    let prev_enabled = tuning::set_parallel_enabled(par.is_some());
    let prev_threads = tuning::set_par_threads(par);
    let prev_rows = tuning::set_par_join_min_build_rows(Some(1));
    let prev_probe = tuning::set_par_probe_min_rows(Some(1));
    let prev_hom = tuning::set_par_hom_min_items(Some(1));
    let out = session
        .eval_one(src)
        .map(|o| machiavelli::value::show_value(&o.value))
        .map_err(|e| e.to_string());
    tuning::set_par_hom_min_items(prev_hom);
    tuning::set_par_probe_min_rows(prev_probe);
    tuning::set_par_join_min_build_rows(prev_rows);
    tuning::set_par_threads(prev_threads);
    tuning::set_parallel_enabled(prev_enabled);
    machiavelli::store::set_store_enabled(prev_store);
    set_planner_enabled(prev_planner);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    // The acceptance property of the composed lane: store-served
    // builds probed in parallel agree with the sequential planner and
    // with `select_loop`, across 1/2/4/8 worker threads, cold and warm,
    // and across interleaved mutations (a write to an unrelated ref —
    // which the dependency-tracked invalidation must survive — and a
    // rebind of one relation, which pointer-identity keying must
    // catch).
    #[test]
    fn composed_store_parallel_matches_sequential_paths(
        seed in 0u64..u64::MAX / 2,
        n_parts in 4usize..24,
        n_suppliers in 2usize..10,
    ) {
        let src = random_comprehension(seed, 2 * n_parts as u64);
        let (mut session, _db) = scaled_parts_session(n_parts, n_suppliers, seed ^ 0xa5a5a5);
        session.store_reset();
        session.run("val side = ref(0);").unwrap();
        let loop_ref = run_in_mode(&mut session, &src, false, None);
        for threads in [1usize, 2, 4, 8] {
            session.store_reset();
            // Cold run builds (and caches) the indexes; warm run probes
            // them — in parallel when threads allow.
            let cold = run_composed(&mut session, &src, Some(threads));
            prop_assert!(cold == loop_ref, "{src} cold @ {threads}: {cold:?} vs {loop_ref:?}");
            let warm = run_composed(&mut session, &src, Some(threads));
            prop_assert!(warm == loop_ref, "{src} warm @ {threads}: {warm:?} vs {loop_ref:?}");
            // An unrelated write must not change results (and should
            // leave the cache warm — counter-asserted elsewhere).
            session.eval_one("side := 1;").unwrap();
            let after_write = run_composed(&mut session, &src, Some(threads));
            prop_assert!(
                after_write == loop_ref,
                "{src} after unrelated write @ {threads}: {after_write:?} vs {loop_ref:?}"
            );
            // The sequential cached probe agrees too.
            let seq_cached = run_composed(&mut session, &src, None);
            prop_assert!(seq_cached == loop_ref, "{src} seq cached: {seq_cached:?}");
        }
        // Mutate a relation the queries actually read: the composed
        // path must see fresh rows exactly like `select_loop`.
        session.run("val suppliers = union(suppliers, {[S#=999, Sname=\"x\", City=\"y\"]});").unwrap();
        let loop_after = run_in_mode(&mut session, &src, false, None);
        let par_after = run_composed(&mut session, &src, Some(4));
        prop_assert!(par_after == loop_after, "{src} after rebind: {par_after:?} vs {loop_after:?}");
    }
}

/// Deterministic composed-lane engagement: a warm plain index probed at
/// four threads counts `par_probes` (not inline-lane joins), builds
/// exactly once across runs, and survives unrelated writes.
#[test]
fn cached_parallel_probe_engages_counts_and_survives_writes() {
    let mut session = machiavelli::Session::new();
    session.store_reset();
    let rows = |n: usize, label: &str| -> String {
        (0..n)
            .map(|i| format!("[K={i}, {label}={}]", i * 10))
            .collect::<Vec<_>>()
            .join(", ")
    };
    session
        .run(&format!(
            "val r = {{{}}}; val t = {{{}}}; val side = ref(0);",
            rows(60, "A"),
            rows(40, "B"),
        ))
        .unwrap();
    // Probe side (`r`) larger than the build (`t`): no swap, `t` caches
    // in plain form on the first run.
    let q = "select (x.A, y.B) where x <- r, y <- t with x.K = y.K;";
    let seq = run_composed(&mut session, q, None);
    session.par_reset();
    let par = run_composed(&mut session, q, Some(4));
    assert_eq!(par, seq);
    let stats = session.par_stats();
    assert!(stats.par_probes >= 1, "cached probe engaged: {stats:?}");
    assert_eq!(stats.par_joins, 0, "not the inline lane: {stats:?}");
    assert_eq!(stats.par_probe_fallbacks, 0, "{stats:?}");
    let store = session.store_stats();
    assert_eq!(store.builds, 1, "one build across all runs: {store:?}");
    assert_eq!(store.plain_entries, 1, "{store:?}");
    // Unrelated ref writes leave the cached index warm and the
    // parallel probe running.
    for i in 0..3 {
        session.eval_one(&format!("side := {i};")).unwrap();
        assert_eq!(run_composed(&mut session, q, Some(4)), seq);
    }
    let store = session.store_stats();
    assert_eq!(store.builds, 1, "cache survived the writes: {store:?}");
    assert_eq!((store.invalidated, store.cleared), (0, 0), "{store:?}");
    assert!(session.par_stats().par_probes >= 4);
}

/// Non-extractable **keys** (identity-bearing `ref` values, whose
/// equality plain data cannot represent) force the runtime fallback on
/// whichever side computes them, with the fallback counter recording it
/// and results identical to the sequential paths. Rows merely
/// *containing* refs off the key path still parallelize — only the key
/// tuples cross the lane.
#[test]
fn parallel_join_falls_back_on_unextractable_keys() {
    use machiavelli::value::show_value;
    let mut session = machiavelli::Session::new();
    // `d` is a shared ref: rows of `r` and `t` join on ref identity.
    session
        .run(
            "val d = ref(1);
             val r = {[K=d, A=1], [K=ref(2), A=2], [K=ref(3), A=3]};
             val t = {[K=d, B=10], [K=ref(9), B=90]};
             val p = {[K=1, R=ref(1)], [K=2, R=ref(2)]};
             val q = {[K=1, B=10], [K=2, B=20], [K=9, B=90]};",
        )
        .unwrap();
    // Ref-valued keys on both sides: extraction declines, fallback.
    let ref_keys = "select (x.A, y.B) where x <- r, y <- t with x.K = y.K;";
    // Refs in the rows but int keys: the lane runs (keys extract; rows
    // are matched by index and never cross a thread).
    let refs_off_key_path = "select (x.K, y.B) where x <- p, y <- q with x.K = y.K;";
    for (query, expect_hit) in [(ref_keys, false), (refs_off_key_path, true)] {
        let seq = run_in_mode(&mut session, query, true, None);
        session.par_reset();
        let par = run_in_mode(&mut session, query, true, Some(4));
        assert_eq!(par, seq, "{query}");
        let stats = session.par_stats();
        if expect_hit {
            assert!(stats.par_joins >= 1, "{query}: {stats:?}");
            assert_eq!(stats.par_join_fallbacks, 0, "{query}: {stats:?}");
        } else {
            assert!(stats.par_join_fallbacks >= 1, "{query}: {stats:?}");
            assert_eq!(stats.par_joins, 0, "{query}: {stats:?}");
        }
    }
    // The ref-identity join itself answers correctly: only the shared
    // `d` rows match.
    let out = session.eval_one(ref_keys).unwrap().value;
    assert_eq!(show_value(&out), "{(1, 10)}");
}

/// The probe-drain memory cap: a probe pipeline much larger than the
/// build side (here > 64× with the cutoff overridden to 1) bails to the
/// streaming sequential probe — the drained prefix replays and the
/// live remainder streams, with identical results and a counted
/// fallback.
#[test]
fn parallel_join_caps_probe_materialization() {
    let mut session = machiavelli::Session::new();
    let many: String = (0..200)
        .map(|i| format!("[K={i}]"))
        .collect::<Vec<_>>()
        .join(", ");
    session
        .run(&format!(
            "val many = {{{many}}}; val two = {{[K=1, B=10], [K=199, B=20]}};"
        ))
        .unwrap();
    let q = "select (x.K, y.B) where x <- many, y <- two with x.K = y.K;";
    let seq = run_in_mode(&mut session, q, true, None);
    session.par_reset();
    let par = run_in_mode(&mut session, q, true, Some(4));
    assert_eq!(par, seq);
    let stats = session.par_stats();
    assert!(stats.par_join_fallbacks >= 1, "{stats:?}");
    assert_eq!(stats.par_joins, 0, "{stats:?}");
}

/// Duplicate keys and empty partitions, pinned deterministically: many
/// rows per key on both sides, and a single distinct key so all but one
/// hash partition is empty.
#[test]
fn parallel_join_handles_duplicates_and_empty_partitions() {
    let mut session = machiavelli::Session::new();
    let dup_rows: String = (0..40)
        .map(|i| format!("[K={}, A={i}]", i % 3))
        .collect::<Vec<_>>()
        .join(", ");
    session
        .run(&format!(
            "val dups = {{{dup_rows}}}; val one = {{[K=1, B=7], [K=1, B=8]}};"
        ))
        .unwrap();
    for query in [
        "select (x.A, y.A) where x <- dups, y <- dups with x.K = y.K;",
        "select (x.A, y.B) where x <- dups, y <- one with x.K = y.K;",
    ] {
        let seq = run_in_mode(&mut session, query, true, None);
        for threads in [2usize, 4, 8] {
            let par = run_in_mode(&mut session, query, true, Some(threads));
            assert_eq!(par, seq, "{query} @ {threads}");
        }
    }
}

// ----- interpreter vs native ------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn interpreted_join_matches_native(edges in arb_edges(), others in arb_edges()) {
        let mut s = machiavelli::Session::new();
        let r = edges_to_relation(&edges);
        let t = {
            // Rename to B/C so the join is on B.
            let rel = edges_to_relation(&others);
            rel.rename("A", "B2").rename("B", "C").rename("B2", "B")
        };
        s.bind_external("r", r.clone().into_value(), "{[A: int, B: int]}").unwrap();
        s.bind_external("t", t.clone().into_value(), "{[B: int, C: int]}").unwrap();
        let interpreted = s.eval_one("join(r, t);").unwrap().value;
        prop_assert_eq!(interpreted, nested_loop_join(&r, &t).into_value());
    }

    #[test]
    fn interpreted_select_matches_native_filter(edges in arb_edges(), k in 0i64..12) {
        let mut s = machiavelli::Session::new();
        let r = edges_to_relation(&edges);
        s.bind_external("r", r.clone().into_value(), "{[A: int, B: int]}").unwrap();
        let interpreted = s
            .eval_one(&format!("select x where x <- r with x.A > {k};"))
            .unwrap()
            .value;
        let native = r.select(|v| matches!(v, Value::Record(fs) if matches!(fs.get("A"), Some(Value::Int(a)) if *a > k)));
        prop_assert_eq!(interpreted, native.into_value());
    }
}
