//! Golden `:analyze` output and traced/untraced equivalence.
//!
//! The goldens pin the traced operator tree for the paper's two query
//! shapes — the Figure 9 equi-join and the Figure 5 recursive-cost
//! select — with the trace clock zeroed so every time renders as `0ns`
//! and only the *stable* fields (operator labels, lanes, cache
//! outcomes, row counts, decline codes) remain. The proptest then
//! asserts tracing is purely observational: traced execution returns
//! identical results and identical decline codes to untraced, at one
//! and at four worker threads.

use machiavelli::trace;
use machiavelli::Session;
use machiavelli_bench::{fig2_session, scaled_parts_session, FIG5_SOURCE};
use proptest::prelude::*;

/// A session with deterministic trace output: zeroed clock, cold
/// store, pinned worker-thread count.
fn pinned(threads: usize) -> Session {
    let s = Session::new();
    s.store_reset();
    s.reset_stats();
    s.set_par_threads(Some(threads));
    trace::set_clock(Some(|| 0));
    s
}

fn unpin(s: &Session) {
    trace::set_clock(None);
    s.set_par_threads(None);
}

const FIG9_SETUP: &str = "val r = {[K=1, C=10, A=1], [K=2, C=50, A=2], [K=3, C=95, A=3]};
     val s = {[K=1, C=1, A=10], [K=2, C=20, A=20], [K=3, C=30, A=30]};";

const FIG9_QUERY: &str =
    "select (x.A, y.A) where x <- r, y <- s with x.C < 90 andalso x.K = y.K andalso y.C > 5;";

#[test]
fn golden_analyze_fig9_join_cold_then_cached() {
    let mut s = pinned(1);
    s.run(FIG9_SETUP).unwrap();
    // Cold store: the join consults the store and builds its index
    // (`[cache build]`); the probe-side scan yields the 2 rows that
    // clear `x.C < 90`, the join emits the 1 key match with `y.C > 5`.
    // (The projection is folded into the join's emit, and the build
    // side is consumed during `open` — it appears as the cache
    // outcome, not as a child span.)
    let cold = s.analyze(FIG9_QUERY).unwrap();
    assert_eq!(
        cold,
        "select: total 0ns\n  \
         HashJoin probe(x.K) build(y.K) [seq] [cache build] rows=1 open=0ns next=0ns\n    \
         Scan x <- r filter (x.C < 90) [seq] rows=2 open=0ns next=0ns\n\
         observed[join s build(_.K) filter((_.C > 5))]: runs=1 last_rows=1 avg_rows=1\n"
    );
    // Warm store: same tree, `[cache hit]`, and the observed-stats
    // history now spans two runs.
    let warm = s.analyze(FIG9_QUERY).unwrap();
    assert_eq!(
        warm,
        "select: total 0ns\n  \
         HashJoin probe(x.K) build(y.K) [seq] [cache hit] rows=1 open=0ns next=0ns\n    \
         Scan x <- r filter (x.C < 90) [seq] rows=2 open=0ns next=0ns\n\
         observed[join s build(_.K) filter((_.C > 5))]: runs=2 last_rows=1 avg_rows=1\n"
    );
    unpin(&s);
}

#[test]
fn golden_analyze_ref_keyed_join_names_its_decline() {
    let mut s = pinned(1);
    // Identity-bearing rows: the build side caches only in rc form —
    // the store's decline is typed and lands on the join's span.
    s.run(
        "val d1 = ref(1); val d2 = ref(2);
           val e = {[K=d1, A=1], [K=d2, A=2]};
           val f = {[K=d1, B=10]};",
    )
    .unwrap();
    let report = s
        .analyze("select (x.A, y.B) where x <- e, y <- f with x.K = y.K;")
        .unwrap();
    assert_eq!(
        report,
        "select: total 0ns\n  \
         HashJoin probe(x.K) build(y.K) [seq] [cache build] rows=1 open=0ns next=0ns \
         declines: store-rc-only\n    \
         Scan x <- e [seq] rows=2 open=0ns next=0ns\n\
         observed[join f build(_.K) filter()]: runs=1 last_rows=1 avg_rows=1\n"
    );
    unpin(&s);
}

#[test]
fn golden_analyze_fig5_recursive_cost() {
    let mut s = fig2_session();
    s.store_reset();
    s.reset_stats();
    s.set_par_threads(Some(1));
    trace::set_clock(Some(|| 0));
    s.run(FIG5_SOURCE).unwrap();
    // The outer select's `cost(x) > n` predicate could observe
    // evaluation order, so the planner declines it by name and the
    // interpreter's select_loop runs it — but each recursive `cost`
    // call plans its *inner* subpart join, which folds into the same
    // trace: built once, a cache hit on the second composite part.
    let report = s.analyze("expensive_parts(parts, 100);").unwrap();
    assert_eq!(
        report,
        "select: total 0ns\n  \
         HashJoin probe(w.P#) build(z.P#) [seq] [cache build] rows=2 open=0ns next=0ns\n    \
         Scan w <- x.SubParts [seq] rows=2 open=0ns next=0ns\n  \
         HashJoin probe(w.P#) build(z.P#) [seq] [cache hit] rows=2 open=0ns next=0ns\n    \
         Scan w <- x.SubParts [seq] rows=2 open=0ns next=0ns\n  \
         declines: planner-unsafe-conjunct\n\
         observed[join parts build(_.P#) filter()]: runs=2 last_rows=2 avg_rows=2\n"
    );
    unpin(&s);
}

// ----- tracing is observation-only ---------------------------------------

/// A small seeded comprehension space over the part–supplier schema:
/// shapes the planner pipelines (scans, equi-joins, dependent
/// generators) and shapes it declines by name (unsafe conjuncts), so
/// the equivalence property exercises spans *and* decline codes.
fn seeded_query(seed: u64) -> String {
    let mut state = seed | 1;
    let mut next = move |m: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % m.max(1)
    };
    match next(6) {
        0 => format!("select x.Pname where x <- parts with x.P# < {};", next(30)),
        1 => "select (x.Pname, y.Suppliers) where x <- parts, y <- supplied_by \
              with x.P# = y.P#;"
            .to_string(),
        2 => "select x.S# where x <- suppliers with member(x, suppliers);".to_string(),
        3 => format!(
            "select y.P# where x <- parts, y <- supplied_by \
             with x.P# = y.P# andalso x.P# < {};",
            next(30)
        ),
        4 => "card(select x.S# where x <- suppliers with true);".to_string(),
        _ => "select (y.P#, z.S#) where y <- supplied_by, z <- y.Suppliers with true;".to_string(),
    }
}

/// Evaluate `src` with tracing forced on/off at `threads` workers and
/// aggressive lane cutoffs, from a cold store and zeroed decline
/// counts; returns the rendered result (or error) plus the nonzero
/// decline codes the run recorded. Every override is restored.
fn run_observed(
    session: &mut Session,
    src: &str,
    threads: usize,
    traced: bool,
) -> (Result<String, String>, Vec<(&'static str, u64)>) {
    use machiavelli::value::tuning;
    session.store_reset();
    let prev_trace = session.set_tracing(Some(traced));
    let prev_enabled = tuning::set_parallel_enabled(true);
    let prev_threads = session.set_par_threads(Some(threads));
    let prev_rows = tuning::set_par_join_min_build_rows(Some(1));
    let prev_hom = tuning::set_par_hom_min_items(Some(1));
    trace::reset_session_declines();
    let out = session
        .eval_one(src)
        .map(|o| machiavelli::value::show_value(&o.value))
        .map_err(|e| e.to_string());
    let declines: Vec<(&'static str, u64)> = trace::session_declines()
        .into_iter()
        .filter(|(_, n)| *n > 0)
        .map(|(r, n)| (r.code(), n))
        .collect();
    tuning::set_par_hom_min_items(prev_hom);
    tuning::set_par_join_min_build_rows(prev_rows);
    session.set_par_threads(prev_threads);
    tuning::set_parallel_enabled(prev_enabled);
    session.set_tracing(prev_trace);
    let _ = session.trace_events();
    (out, declines)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Tracing never changes what a query computes or which lanes
    // decline: traced execution returns identical results and
    // identical decline codes to untraced, at 1 and at 4 worker
    // threads.
    #[test]
    fn tracing_is_observation_only(
        seed in 0u64..u64::MAX / 2,
        n_parts in 4usize..20,
        n_suppliers in 2usize..8,
    ) {
        let src = seeded_query(seed);
        let (mut session, _db) = scaled_parts_session(n_parts, n_suppliers, seed ^ 0x0b5e);
        for threads in [1usize, 4] {
            let (r_off, d_off) = run_observed(&mut session, &src, threads, false);
            let (r_on, d_on) = run_observed(&mut session, &src, threads, true);
            prop_assert!(
                r_off == r_on,
                "{src} @ {threads} threads: traced {r_on:?} vs untraced {r_off:?}"
            );
            prop_assert!(
                d_off == d_on,
                "{src} @ {threads} threads: traced declines {d_on:?} vs untraced {d_off:?}"
            );
        }
    }
}
