//! Round-trip property: pretty-printing a parsed expression and re-parsing
//! yields the same AST (spans aside).

use crate::ast::Expr;
use crate::parser::parse_expr;
use crate::pretty::expr_to_string;

/// Structural equality ignoring spans.
fn same(a: &Expr, b: &Expr) -> bool {
    strip(a) == strip(b)
}

/// Erase spans by re-building the expression with dummy spans.
fn strip(e: &Expr) -> String {
    // Debug output of the kind tree with spans removed via pretty-printing
    // twice is circular; instead compare the pretty forms, which are
    // deterministic.
    expr_to_string(e)
}

fn roundtrip(src: &str) {
    let e1 = parse_expr(src).unwrap_or_else(|err| panic!("parse {src:?}: {err}"));
    let printed = expr_to_string(&e1);
    let e2 = parse_expr(&printed)
        .unwrap_or_else(|err| panic!("reparse {printed:?} (from {src:?}): {err}"));
    assert!(
        same(&e1, &e2),
        "round-trip mismatch for {src:?}\n first: {}\nsecond: {}",
        expr_to_string(&e1),
        expr_to_string(&e2)
    );
    // And printing must be a fixed point after one iteration.
    assert_eq!(printed, expr_to_string(&e2));
}

#[test]
fn roundtrip_paper_expressions() {
    for src in [
        r#"{[Name = "Joe", Salary = 22340], [Name = "Fred", Salary = 123456]}"#,
        "select x.Name where x <- S with x.Salary > 100000",
        "hom((fn(x) => {f(x)}), union, {}, S)",
        "hom*((fn(x) => f(x)), +, S)",
        r#"project([Name="Joe", Age=21, Salary=22340], [Name:string, Salary:int])"#,
        r#"join([Name=[First="Joe"], Age=21], [Name=[Last="Doe"]])"#,
        "con(a, b)",
        "(fn(e,p) => e)",
        "if r = {} then R else Closure(union(R,r))",
        "case x.Status of Employee of y => y.Extension, Consultant of y => y.Telephone",
        "modify(x, Age, x.Age + 1)",
        "(Consultant of [Address=\"Philadelphia\", Telephone=2221234])",
        "let val d = (!emp1).Department in d := modify(!d, Building, 67) end",
        "select [Name=(!x).Name, Id=x] where x <- S with true",
        "(!x).Salary as Value",
        "join(StudentView(persons), EmployeeView(persons))",
        "x.Advisor = y.Id andalso x.Salary > y.Salary",
        "member([A=x.A, B=y.B], R)",
        "Join3(x.Suppliers, suppliers, {[Sname=\"Baker\"]}) <> {}",
        "unionc(StudentView(person), EmployeeView(person))",
        "not(p(x)) orelse q(x)",
        "-x + 3",
        "f(g, +, 0)",
        "ref([Dname=\"Sales\", Building=45])",
        "dynamic(x)",
        "dynamic(x, [Name: string])",
        "(1, 2, 3)",
        "x := y := z",
        "rec(f, (fn(n) => if n = 0 then 1 else n * f(n - 1)))",
    ] {
        roundtrip(src);
    }
}

#[test]
fn roundtrip_nested_structures() {
    roundtrip(
        r#"{[Pname="bolt", P#=1, Pinfo=(BasePart of [Cost=5])],
           [Pname="engine", P#=2189,
            Pinfo=(CompositePart of [SubParts={[P#=1, Qty=189]}, AssemCost=1000])]}"#,
    );
}

#[test]
fn roundtrip_deeply_nested_arith() {
    roundtrip("1 - (2 - 3) - 4");
    roundtrip("(1 + 2) * (3 + 4)");
    roundtrip("a div b mod c");
    roundtrip("x ^ y ^ z");
}
