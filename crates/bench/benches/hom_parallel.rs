//! A2 bench — the paper's parallel-`hom` claim: proper applications (op
//! associative-commutative) computed sequentially vs across threads.
//! Expected shape: parallel wins once per-element work or volume is
//! large enough to amortize thread startup; sequential wins on small
//! sets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// Short measurement windows so the full figure suite runs in minutes;
/// rerun individual benches with Criterion CLI flags for precision.
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}
use machiavelli_relational::{par_hom, seq_hom};

/// A deliberately non-trivial per-element function (so there is real
/// work to parallelize): a short pseudo-random walk.
fn work(x: &i64) -> i64 {
    let mut v = *x as u64 | 1;
    for _ in 0..64 {
        v = v
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
    }
    (v >> 33) as i64
}

fn bench_hom(c: &mut Criterion) {
    let mut group = c.benchmark_group("hom_parallel");
    group.sample_size(15);
    for n in [1_000usize, 100_000, 1_000_000] {
        let data: Vec<i64> = (0..n as i64).collect();
        group.bench_with_input(BenchmarkId::new("seq", n), &data, |b, d| {
            b.iter(|| seq_hom(d, work, |a, b| a.wrapping_add(b), 0))
        });
        for threads in [2usize, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("par{threads}"), n),
                &data,
                |b, d| b.iter(|| par_hom(d, work, |a, b| a.wrapping_add(b), 0, threads)),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_hom
}
criterion_main!(benches);
