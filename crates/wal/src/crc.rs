//! CRC-32 (IEEE 802.3 polynomial, the zlib/`cksum -o 3` variant) —
//! the per-record checksum the log trusts instead of its own writes.
//! Hand-rolled table-driven implementation: the workspace builds
//! offline, so no checksum crate is available (and forty lines beat a
//! dependency for a fixed 30-year-old polynomial).

/// Reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (initial value all-ones, final xor all-ones).
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_resume(0, bytes)
}

/// Extend a finished CRC-32 with more bytes:
/// `crc32_resume(crc32(a), b) == crc32(a ++ b)`. The replication layer
/// keeps a rolling checksum of the log's trusted prefix this way, so a
/// cursor's CRC never requires re-reading the whole file.
pub fn crc32_resume(prev: u32, bytes: &[u8]) -> u32 {
    let mut crc = !prev;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The standard check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn resume_matches_one_shot() {
        let data = b"MACHWAL v1 gen 3\nB2:it3:inti42:C";
        for cut in 0..data.len() {
            let (a, b) = data.split_at(cut);
            assert_eq!(crc32_resume(crc32(a), b), crc32(data), "cut {cut}");
        }
    }

    #[test]
    fn single_bit_flip_changes_the_checksum() {
        let base = b"B2:it3:inti42:".to_vec();
        let want = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), want, "flip at byte {i} bit {bit}");
            }
        }
    }
}
