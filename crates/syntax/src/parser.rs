//! Recursive-descent parser for Machiavelli.
//!
//! Operator precedence, loosest to tightest (following SML conventions):
//!
//! 1. `:=` (right-associative)
//! 2. `orelse` (left)
//! 3. `andalso` (left)
//! 4. comparisons `= <> < > <= >=` (non-associative)
//! 5. `+ - ^` (left)
//! 6. `* / div mod` (left)
//! 7. prefix `not`, unary `-`, `!`
//! 8. postfix `.l`, `as l`, application `(…)`
//!
//! `if`, `fn`, `case`, `select`, `let` and variant injection `l of e`
//! extend as far right as possible and may appear anywhere an expression
//! is expected.

use crate::ast::*;
use crate::error::{ParseError, ParseErrorKind};
use crate::lexer::lex;
use crate::span::Span;
use crate::symbol::Symbol;
use crate::token::{Token, TokenKind};

/// Parsed row variable + fields of a record/variant type.
type TypeFields = (Option<RowVar>, Vec<(Label, TypeExpr)>);

/// Parse a full program (a sequence of `;`-terminated phrases).
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    Parser::new(tokens).program()
}

/// Parse a single expression (the entire input must be one expression).
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// Parse a type expression (the entire input must be one type).
///
/// Uses the type-mode lexer so description variables (`"a`) never
/// collide with string-literal lexing.
pub fn parse_type(src: &str) -> Result<TypeExpr, ParseError> {
    let tokens = crate::lexer::lex_type(src)?;
    let mut p = Parser::new(tokens);
    let t = p.type_expr()?;
    p.expect_eof()?;
    Ok(t)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// True while parsing a `case` scrutinee at the current nesting level:
    /// suppresses the `ident of e` injection production so that
    /// `case v of …` is not misread as the injection `v of …`. Cleared on
    /// entry to any bracketed sub-expression.
    suppress_inject: bool,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            suppress_inject: false,
        }
    }

    /// Run `f` with injection suppression cleared (inside brackets the
    /// `ident of e` production is unambiguous again).
    fn in_brackets<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, ParseError>,
    ) -> Result<T, ParseError> {
        let saved = std::mem::replace(&mut self.suppress_inject, false);
        let r = f(self);
        self.suppress_inject = saved;
        r
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        let i = (self.pos + 1).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.expected(&format!("`{kind}`")))
        }
    }

    fn expected(&self, what: &str) -> ParseError {
        ParseError::new(
            ParseErrorKind::Expected {
                expected: what.to_string(),
                got: self.peek().describe(),
            },
            self.span(),
        )
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if self.at(&TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.expected("end of input"))
        }
    }

    fn ident(&mut self) -> Result<Ident, ParseError> {
        Ok(Symbol::intern(&self.ident_str()?))
    }

    /// An identifier kept as raw text (type-variable and `rec` binder
    /// names, which are not interned).
    fn ident_str(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            TokenKind::Ident(name) => {
                let name = name.clone();
                self.bump();
                Ok(name)
            }
            _ => Err(self.expected("an identifier")),
        }
    }

    /// A record/variant label: an identifier, or a keyword usable as a
    /// label (none currently), or a tuple label `#k`.
    fn label(&mut self) -> Result<Label, ParseError> {
        self.ident()
    }

    // ----- programs -------------------------------------------------------

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut phrases = Vec::new();
        while !self.at(&TokenKind::Eof) {
            phrases.push(self.phrase()?);
        }
        Ok(phrases)
    }

    fn phrase(&mut self) -> Result<Phrase, ParseError> {
        let start = self.span();
        let kind = match self.peek() {
            TokenKind::Val => {
                self.bump();
                let name = self.ident()?;
                self.expect(&TokenKind::Eq)?;
                let expr = self.expr()?;
                PhraseKind::Val { name, expr }
            }
            TokenKind::Fun => {
                self.bump();
                // `fun f(x, …) = e` — possibly `val fun` typo-tolerance is
                // not attempted; the paper's `val fun Join3` is treated as
                // a misprint.
                let name = self.ident()?;
                let params = if self.eat(&TokenKind::LParen) {
                    let mut ps = vec![self.ident()?];
                    while self.eat(&TokenKind::Comma) {
                        ps.push(self.ident()?);
                    }
                    self.expect(&TokenKind::RParen)?;
                    ps
                } else {
                    // `fun Closure R = …` style: a single curried-looking
                    // parameter.
                    vec![self.ident()?]
                };
                self.expect(&TokenKind::Eq)?;
                let body = self.expr()?;
                PhraseKind::Fun { name, params, body }
            }
            _ => PhraseKind::Expr(self.expr()?),
        };
        // Phrases are `;`-terminated; the final `;` may be omitted at EOF.
        if !self.eat(&TokenKind::Semi) && !self.at(&TokenKind::Eof) {
            return Err(self.expected("`;`"));
        }
        let span = start.merge(self.prev_span());
        Ok(Phrase { kind, span })
    }

    // ----- expressions ----------------------------------------------------

    pub(crate) fn expr(&mut self) -> Result<Expr, ParseError> {
        self.assign_expr()
    }

    fn assign_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.orelse_expr()?;
        if self.eat(&TokenKind::Assign) {
            let rhs = self.assign_expr()?;
            let span = lhs.span.merge(rhs.span);
            return Ok(Expr::new(
                ExprKind::Assign {
                    target: Box::new(lhs),
                    value: Box::new(rhs),
                },
                span,
            ));
        }
        Ok(lhs)
    }

    fn orelse_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.andalso_expr()?;
        while self.eat(&TokenKind::Orelse) {
            let rhs = self.andalso_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(
                ExprKind::Binop {
                    op: BinOp::Orelse,
                    left: Box::new(lhs),
                    right: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn andalso_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat(&TokenKind::Andalso) {
            let rhs = self.cmp_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(
                ExprKind::Binop {
                    op: BinOp::Andalso,
                    left: Box::new(lhs),
                    right: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::NotEq => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        let span = lhs.span.merge(rhs.span);
        Ok(Expr::new(
            ExprKind::Binop {
                op,
                left: Box::new(lhs),
                right: Box::new(rhs),
            },
            span,
        ))
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                TokenKind::Caret => BinOp::Concat,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.mul_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(
                ExprKind::Binop {
                    op,
                    left: Box::new(lhs),
                    right: Box::new(rhs),
                },
                span,
            );
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::RealDiv,
                TokenKind::Div => BinOp::Div,
                TokenKind::Mod => BinOp::Mod,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(
                ExprKind::Binop {
                    op,
                    left: Box::new(lhs),
                    right: Box::new(rhs),
                },
                span,
            );
        }
    }

    /// True when the current token can begin an expression operand —
    /// used to disambiguate `-` as negation from `-` as an operator value.
    fn starts_operand(&self) -> bool {
        use TokenKind::*;
        matches!(
            self.peek(),
            Int(_)
                | Real(_)
                | Str(_)
                | Ident(_)
                | True
                | False
                | LParen
                | LBracket
                | LBrace
                | Fn
                | If
                | Case
                | Select
                | Let
                | Modify
                | Join
                | Con
                | Project
                | Union
                | Unionc
                | Hom
                | HomStar
                | Ref
                | Rec
                | Raise
                | Dynamic
                | Not
                | Bang
                | Minus
        )
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        let start = self.span();
        match self.peek() {
            TokenKind::Not => {
                self.bump();
                // `not` is also usable as a plain function: `not(e)`.
                let e = self.unary_expr()?;
                let span = start.merge(e.span);
                Ok(Expr::new(
                    ExprKind::Unop {
                        op: UnOp::Not,
                        expr: Box::new(e),
                    },
                    span,
                ))
            }
            TokenKind::Minus => {
                self.bump();
                if !self.starts_operand() {
                    // `-` used as a first-class operator value.
                    return Ok(Expr::new(ExprKind::OpVal(BinOp::Sub), start));
                }
                let e = self.unary_expr()?;
                let span = start.merge(e.span);
                Ok(Expr::new(
                    ExprKind::Unop {
                        op: UnOp::Neg,
                        expr: Box::new(e),
                    },
                    span,
                ))
            }
            TokenKind::Bang => {
                self.bump();
                let e = self.unary_expr()?;
                let span = start.merge(e.span);
                Ok(Expr::new(ExprKind::Deref(Box::new(e)), span))
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.atom()?;
        loop {
            match self.peek() {
                TokenKind::Dot => {
                    self.bump();
                    let label = self.label()?;
                    let span = e.span.merge(self.prev_span());
                    e = Expr::new(
                        ExprKind::Field {
                            expr: Box::new(e),
                            label,
                        },
                        span,
                    );
                }
                TokenKind::As => {
                    self.bump();
                    let label = self.label()?;
                    let span = e.span.merge(self.prev_span());
                    e = Expr::new(
                        ExprKind::As {
                            expr: Box::new(e),
                            label,
                        },
                        span,
                    );
                }
                TokenKind::LParen => {
                    // Application: `f(e, …)`.
                    self.bump();
                    let args = self.in_brackets(|p| {
                        let mut args = Vec::new();
                        if !p.at(&TokenKind::RParen) {
                            args.push(p.arg_expr()?);
                            while p.eat(&TokenKind::Comma) {
                                args.push(p.arg_expr()?);
                            }
                        }
                        Ok(args)
                    })?;
                    self.expect(&TokenKind::RParen)?;
                    let span = e.span.merge(self.prev_span());
                    e = Expr::new(
                        ExprKind::App {
                            func: Box::new(e),
                            args,
                        },
                        span,
                    );
                }
                _ => return Ok(e),
            }
        }
    }

    /// An argument expression: an ordinary expression, or a bare operator
    /// used as a value (`hom(f, +, 0, S)`).
    fn arg_expr(&mut self) -> Result<Expr, ParseError> {
        let span = self.span();
        let op = match self.peek() {
            TokenKind::Plus => Some(BinOp::Add),
            TokenKind::Star => Some(BinOp::Mul),
            TokenKind::Slash => Some(BinOp::RealDiv),
            TokenKind::Caret => Some(BinOp::Concat),
            TokenKind::Div => Some(BinOp::Div),
            TokenKind::Mod => Some(BinOp::Mod),
            TokenKind::Eq => Some(BinOp::Eq),
            TokenKind::NotEq => Some(BinOp::Ne),
            TokenKind::Andalso => Some(BinOp::Andalso),
            TokenKind::Orelse => Some(BinOp::Orelse),
            _ => None,
        };
        if let Some(op) = op {
            // Only when the operator is immediately followed by `,` or `)`
            // is it a first-class value; otherwise fall through to a normal
            // parse (which will fail with a sensible message).
            if matches!(self.peek2(), TokenKind::Comma | TokenKind::RParen) {
                self.bump();
                return Ok(Expr::new(ExprKind::OpVal(op), span));
            }
        }
        // `union` / `join` / `con` / `unionc` as first-class values, as in
        // the paper's `hom((fn(x) => {f(x)}), union, {}, S)`.
        let named = match self.peek() {
            TokenKind::Union => Some("union"),
            TokenKind::Unionc => Some("unionc"),
            TokenKind::Join => Some("join"),
            TokenKind::Con => Some("con"),
            _ => None,
        };
        if let Some(name) = named {
            if matches!(self.peek2(), TokenKind::Comma | TokenKind::RParen) {
                self.bump();
                return Ok(Expr::new(ExprKind::Var(Symbol::intern(name)), span));
            }
        }
        self.expr()
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::Int(n) => {
                self.bump();
                Ok(Expr::new(ExprKind::Int(n), start))
            }
            TokenKind::Real(r) => {
                self.bump();
                Ok(Expr::new(ExprKind::Real(r), start))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::new(ExprKind::Str(s), start))
            }
            TokenKind::True => {
                self.bump();
                Ok(Expr::new(ExprKind::Bool(true), start))
            }
            TokenKind::False => {
                self.bump();
                Ok(Expr::new(ExprKind::Bool(false), start))
            }
            TokenKind::Ident(name) => {
                self.bump();
                let name = Symbol::intern(&name);
                if self.at(&TokenKind::Of) && !self.suppress_inject {
                    // Variant injection `l of e`.
                    self.bump();
                    let e = self.expr()?;
                    let span = start.merge(e.span);
                    return Ok(Expr::new(
                        ExprKind::Inject {
                            label: name,
                            expr: Box::new(e),
                        },
                        span,
                    ));
                }
                Ok(Expr::new(ExprKind::Var(name), start))
            }
            TokenKind::LParen => self.paren_expr(),
            TokenKind::LBracket => self.record_expr(),
            TokenKind::LBrace => self.set_expr(),
            TokenKind::Fn => self.lambda_expr(),
            TokenKind::If => self.if_expr(),
            TokenKind::Case => self.case_expr(),
            TokenKind::Select => self.select_expr(),
            TokenKind::Let => self.let_expr(),
            TokenKind::Modify => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let e = self.expr()?;
                self.expect(&TokenKind::Comma)?;
                let label = self.label()?;
                self.expect(&TokenKind::Comma)?;
                let value = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let span = start.merge(self.prev_span());
                Ok(Expr::new(
                    ExprKind::Modify {
                        expr: Box::new(e),
                        label,
                        value: Box::new(value),
                    },
                    span,
                ))
            }
            TokenKind::Join => {
                let (l, r, span) = self.binary_form(start)?;
                Ok(Expr::new(
                    ExprKind::Join {
                        left: Box::new(l),
                        right: Box::new(r),
                    },
                    span,
                ))
            }
            TokenKind::Con => {
                let (l, r, span) = self.binary_form(start)?;
                Ok(Expr::new(
                    ExprKind::Con {
                        left: Box::new(l),
                        right: Box::new(r),
                    },
                    span,
                ))
            }
            TokenKind::Union => {
                let (l, r, span) = self.binary_form(start)?;
                Ok(Expr::new(
                    ExprKind::Union {
                        left: Box::new(l),
                        right: Box::new(r),
                    },
                    span,
                ))
            }
            TokenKind::Unionc => {
                let (l, r, span) = self.binary_form(start)?;
                Ok(Expr::new(
                    ExprKind::Unionc {
                        left: Box::new(l),
                        right: Box::new(r),
                    },
                    span,
                ))
            }
            TokenKind::Project => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let e = self.expr()?;
                self.expect(&TokenKind::Comma)?;
                let ty = self.type_expr()?;
                self.expect(&TokenKind::RParen)?;
                let span = start.merge(self.prev_span());
                Ok(Expr::new(
                    ExprKind::Project {
                        expr: Box::new(e),
                        ty,
                    },
                    span,
                ))
            }
            TokenKind::Hom => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let f = self.arg_expr()?;
                self.expect(&TokenKind::Comma)?;
                let op = self.arg_expr()?;
                self.expect(&TokenKind::Comma)?;
                let z = self.arg_expr()?;
                self.expect(&TokenKind::Comma)?;
                let set = self.arg_expr()?;
                self.expect(&TokenKind::RParen)?;
                let span = start.merge(self.prev_span());
                Ok(Expr::new(
                    ExprKind::Hom {
                        f: Box::new(f),
                        op: Box::new(op),
                        z: Box::new(z),
                        set: Box::new(set),
                    },
                    span,
                ))
            }
            TokenKind::HomStar => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let f = self.arg_expr()?;
                self.expect(&TokenKind::Comma)?;
                let op = self.arg_expr()?;
                self.expect(&TokenKind::Comma)?;
                let set = self.arg_expr()?;
                self.expect(&TokenKind::RParen)?;
                let span = start.merge(self.prev_span());
                Ok(Expr::new(
                    ExprKind::HomStar {
                        f: Box::new(f),
                        op: Box::new(op),
                        set: Box::new(set),
                    },
                    span,
                ))
            }
            TokenKind::Ref => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let span = start.merge(self.prev_span());
                Ok(Expr::new(ExprKind::Ref(Box::new(e)), span))
            }
            TokenKind::Rec => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let name = self.ident()?;
                self.expect(&TokenKind::Comma)?;
                let body = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let span = start.merge(self.prev_span());
                Ok(Expr::new(
                    ExprKind::Rec {
                        name,
                        body: Box::new(body),
                    },
                    span,
                ))
            }
            TokenKind::Dynamic => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let e = self.expr()?;
                // `dynamic(e)` packages; `dynamic(e, δ)` coerces back.
                if self.eat(&TokenKind::Comma) {
                    let ty = self.type_expr()?;
                    self.expect(&TokenKind::RParen)?;
                    let span = start.merge(self.prev_span());
                    return Ok(Expr::new(
                        ExprKind::Coerce {
                            expr: Box::new(e),
                            ty,
                        },
                        span,
                    ));
                }
                self.expect(&TokenKind::RParen)?;
                let span = start.merge(self.prev_span());
                Ok(Expr::new(ExprKind::MakeDynamic(Box::new(e)), span))
            }
            TokenKind::Raise => {
                self.bump();
                let msg = match self.peek().clone() {
                    TokenKind::Str(s) => {
                        self.bump();
                        s
                    }
                    TokenKind::Ident(name) => {
                        self.bump();
                        name
                    }
                    _ => return Err(self.expected("an error name or message")),
                };
                let span = start.merge(self.prev_span());
                Ok(Expr::new(ExprKind::Raise(msg), span))
            }
            _ => Err(self.expected("an expression")),
        }
    }

    /// Shared shape for `join(e,e)` / `con(e,e)` / `union(e,e)` /
    /// `unionc(e,e)`.
    fn binary_form(&mut self, start: Span) -> Result<(Expr, Expr, Span), ParseError> {
        self.bump();
        self.expect(&TokenKind::LParen)?;
        let (l, r) = self.in_brackets(|p| {
            let l = p.expr()?;
            p.expect(&TokenKind::Comma)?;
            let r = p.expr()?;
            Ok((l, r))
        })?;
        self.expect(&TokenKind::RParen)?;
        Ok((l, r, start.merge(self.prev_span())))
    }

    fn paren_expr(&mut self) -> Result<Expr, ParseError> {
        let start = self.span();
        self.expect(&TokenKind::LParen)?;
        self.in_brackets(|p| p.paren_expr_body(start))
    }

    fn paren_expr_body(&mut self, start: Span) -> Result<Expr, ParseError> {
        if self.eat(&TokenKind::RParen) {
            return Ok(Expr::new(ExprKind::Unit, start.merge(self.prev_span())));
        }
        let first = self.expr()?;
        if self.eat(&TokenKind::Comma) {
            // Tuple: desugars to a record with labels #1, #2, ….
            let mut items = vec![first];
            loop {
                items.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
            let span = start.merge(self.prev_span());
            let fields = items
                .into_iter()
                .enumerate()
                .map(|(i, e)| (crate::symbol::tuple_label(i + 1), e))
                .collect();
            return Ok(Expr::new(ExprKind::Record(fields), span));
        }
        self.expect(&TokenKind::RParen)?;
        Ok(first)
    }

    fn record_expr(&mut self) -> Result<Expr, ParseError> {
        let start = self.span();
        self.expect(&TokenKind::LBracket)?;
        self.in_brackets(|p| p.record_expr_body(start))
    }

    fn record_expr_body(&mut self, start: Span) -> Result<Expr, ParseError> {
        let mut fields: Vec<(Label, Expr)> = Vec::new();
        if !self.at(&TokenKind::RBracket) {
            loop {
                // The paper occasionally parenthesizes a field binding, as in
                // `[Name=…, (Salary=… as Value), Id=x]`; tolerate that.
                let parenthesized = self.eat(&TokenKind::LParen);
                let label_span = self.span();
                let label = self.label()?;
                self.expect(&TokenKind::Eq)?;
                let value = self.expr()?;
                if parenthesized {
                    self.expect(&TokenKind::RParen)?;
                }
                if fields.iter().any(|(l, _)| *l == label) {
                    return Err(ParseError::new(
                        ParseErrorKind::DuplicateLabel(label),
                        label_span,
                    ));
                }
                fields.push((label, value));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RBracket)?;
        let span = start.merge(self.prev_span());
        Ok(Expr::new(ExprKind::Record(fields), span))
    }

    fn set_expr(&mut self) -> Result<Expr, ParseError> {
        let start = self.span();
        self.expect(&TokenKind::LBrace)?;
        self.in_brackets(|p| p.set_expr_body(start))
    }

    fn set_expr_body(&mut self, start: Span) -> Result<Expr, ParseError> {
        let mut items = Vec::new();
        if !self.at(&TokenKind::RBrace) {
            loop {
                items.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RBrace)?;
        let span = start.merge(self.prev_span());
        Ok(Expr::new(ExprKind::Set(items), span))
    }

    fn lambda_expr(&mut self) -> Result<Expr, ParseError> {
        let start = self.span();
        self.expect(&TokenKind::Fn)?;
        let params = if self.eat(&TokenKind::LParen) {
            let mut ps = vec![self.ident()?];
            while self.eat(&TokenKind::Comma) {
                ps.push(self.ident()?);
            }
            self.expect(&TokenKind::RParen)?;
            ps
        } else {
            vec![self.ident()?]
        };
        self.expect(&TokenKind::DArrow)?;
        let body = self.expr()?;
        let span = start.merge(body.span);
        Ok(Expr::new(
            ExprKind::Lambda {
                params,
                body: Box::new(body),
            },
            span,
        ))
    }

    fn if_expr(&mut self) -> Result<Expr, ParseError> {
        let start = self.span();
        self.expect(&TokenKind::If)?;
        let cond = self.expr()?;
        self.expect(&TokenKind::Then)?;
        let then_branch = self.expr()?;
        self.expect(&TokenKind::Else)?;
        let else_branch = self.expr()?;
        let span = start.merge(else_branch.span);
        Ok(Expr::new(
            ExprKind::If {
                cond: Box::new(cond),
                then_branch: Box::new(then_branch),
                else_branch: Box::new(else_branch),
            },
            span,
        ))
    }

    fn case_expr(&mut self) -> Result<Expr, ParseError> {
        let start = self.span();
        self.expect(&TokenKind::Case)?;
        let saved = std::mem::replace(&mut self.suppress_inject, true);
        let scrutinee = self.expr()?;
        self.suppress_inject = saved;
        self.expect(&TokenKind::Of)?;
        let mut arms = Vec::new();
        let mut default = None;
        loop {
            if self.at(&TokenKind::Other) {
                self.bump();
                self.expect(&TokenKind::DArrow)?;
                let body = self.expr()?;
                default = Some(Box::new(body));
                // `other` must be last.
                if self.eat(&TokenKind::Comma) {
                    return Err(ParseError::new(ParseErrorKind::MisplacedOther, self.span()));
                }
                break;
            }
            let label = self.label()?;
            self.expect(&TokenKind::Of)?;
            // The binder may be `_` (an ordinary identifier here).
            let var = self.ident()?;
            self.expect(&TokenKind::DArrow)?;
            let body = self.expr()?;
            arms.push(CaseArm { label, var, body });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        if arms.is_empty() && default.is_none() {
            return Err(ParseError::new(ParseErrorKind::EmptyCase, start));
        }
        let span = start.merge(self.prev_span());
        Ok(Expr::new(
            ExprKind::Case {
                expr: Box::new(scrutinee),
                arms,
                default,
            },
            span,
        ))
    }

    fn select_expr(&mut self) -> Result<Expr, ParseError> {
        let start = self.span();
        self.expect(&TokenKind::Select)?;
        let result = self.expr()?;
        self.expect(&TokenKind::Where)?;
        let mut generators = Vec::new();
        loop {
            let var = self.ident()?;
            self.expect(&TokenKind::LArrow)?;
            let source = self.expr()?;
            generators.push(Generator { var, source });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        if generators.is_empty() {
            return Err(ParseError::new(ParseErrorKind::EmptySelect, start));
        }
        self.expect(&TokenKind::With)?;
        let pred = self.expr()?;
        let span = start.merge(pred.span);
        Ok(Expr::new(
            ExprKind::Select {
                result: Box::new(result),
                generators,
                pred: Box::new(pred),
            },
            span,
        ))
    }

    fn let_expr(&mut self) -> Result<Expr, ParseError> {
        let start = self.span();
        self.expect(&TokenKind::Let)?;
        // Both `let x = e in e` and `let val x = e in e end` are accepted.
        self.eat(&TokenKind::Val);
        let name = self.ident()?;
        self.expect(&TokenKind::Eq)?;
        let bound = self.expr()?;
        self.expect(&TokenKind::In)?;
        let body = self.expr()?;
        // Optional `end`.
        self.eat(&TokenKind::End);
        let span = start.merge(self.prev_span());
        Ok(Expr::new(
            ExprKind::Let {
                name,
                bound: Box::new(bound),
                body: Box::new(body),
            },
            span,
        ))
    }

    // ----- types ----------------------------------------------------------

    pub(crate) fn type_expr(&mut self) -> Result<TypeExpr, ParseError> {
        let lhs = self.type_prod()?;
        if self.eat(&TokenKind::Arrow) {
            let rhs = self.type_expr()?;
            let span = lhs.span.merge(rhs.span);
            return Ok(TypeExpr {
                kind: TypeExprKind::Arrow(Box::new(lhs), Box::new(rhs)),
                span,
            });
        }
        Ok(lhs)
    }

    fn type_prod(&mut self) -> Result<TypeExpr, ParseError> {
        let first = self.type_atom()?;
        if !self.at(&TokenKind::Star) {
            return Ok(first);
        }
        let mut items = vec![first];
        while self.eat(&TokenKind::Star) {
            items.push(self.type_atom()?);
        }
        let span = items[0].span.merge(items[items.len() - 1].span);
        let fields = items
            .into_iter()
            .enumerate()
            .map(|(i, t)| (crate::symbol::tuple_label(i + 1), t))
            .collect();
        Ok(TypeExpr {
            kind: TypeExprKind::Record { row: None, fields },
            span,
        })
    }

    fn type_atom(&mut self) -> Result<TypeExpr, ParseError> {
        let start = self.span();
        let kind = match self.peek().clone() {
            TokenKind::TyUnit => {
                self.bump();
                TypeExprKind::Unit
            }
            TokenKind::TyInt => {
                self.bump();
                TypeExprKind::Int
            }
            TokenKind::TyBool => {
                self.bump();
                TypeExprKind::Bool
            }
            TokenKind::TyString => {
                self.bump();
                TypeExprKind::String_
            }
            TokenKind::TyReal => {
                self.bump();
                TypeExprKind::Real
            }
            TokenKind::Dynamic => {
                self.bump();
                TypeExprKind::Dynamic
            }
            TokenKind::TyVar(v) => {
                self.bump();
                TypeExprKind::Var(v)
            }
            TokenKind::DescVar(v) => {
                self.bump();
                TypeExprKind::DescVar(v)
            }
            TokenKind::Ref => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let inner = self.type_expr()?;
                self.expect(&TokenKind::RParen)?;
                TypeExprKind::Ref(Box::new(inner))
            }
            TokenKind::Rec => {
                self.bump();
                let var = self.ident_str()?;
                self.expect(&TokenKind::Dot)?;
                let body = self.type_expr()?;
                TypeExprKind::Rec {
                    var,
                    body: Box::new(body),
                }
            }
            TokenKind::Ident(name) => {
                self.bump();
                TypeExprKind::Named(name)
            }
            TokenKind::LBrace => {
                self.bump();
                let inner = self.type_expr()?;
                self.expect(&TokenKind::RBrace)?;
                TypeExprKind::Set(Box::new(inner))
            }
            TokenKind::LBracket => {
                self.bump();
                let (row, fields) = self.type_fields(&TokenKind::RBracket)?;
                TypeExprKind::Record { row, fields }
            }
            TokenKind::Lt => {
                self.bump();
                let (row, fields) = self.type_fields(&TokenKind::Gt)?;
                TypeExprKind::Variant { row, fields }
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.type_expr()?;
                self.expect(&TokenKind::RParen)?;
                return Ok(inner);
            }
            _ => return Err(self.expected("a type")),
        };
        let span = start.merge(self.prev_span());
        Ok(TypeExpr { kind, span })
    }

    /// Parse `[('a) l:τ, …]` / `<('a) l:τ, …>` field lists up to `close`.
    fn type_fields(&mut self, close: &TokenKind) -> Result<TypeFields, ParseError> {
        let mut row = None;
        // Optional row variable `('a)` or `("a)`.
        if self.at(&TokenKind::LParen) {
            match self.peek2().clone() {
                TokenKind::TyVar(v) => {
                    self.bump();
                    self.bump();
                    self.expect(&TokenKind::RParen)?;
                    row = Some(RowVar {
                        name: v,
                        desc: false,
                    });
                }
                TokenKind::DescVar(v) => {
                    self.bump();
                    self.bump();
                    self.expect(&TokenKind::RParen)?;
                    row = Some(RowVar {
                        name: v,
                        desc: true,
                    });
                }
                _ => {}
            }
        }
        let mut fields: Vec<(Label, TypeExpr)> = Vec::new();
        if !self.at(close) {
            loop {
                let label_span = self.span();
                let label = self.label()?;
                self.expect(&TokenKind::Colon)?;
                let ty = self.type_expr()?;
                if fields.iter().any(|(l, _)| *l == label) {
                    return Err(ParseError::new(
                        ParseErrorKind::DuplicateLabel(label),
                        label_span,
                    ));
                }
                fields.push((label, ty));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(close)?;
        Ok((row, fields))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr(src: &str) -> Expr {
        parse_expr(src).unwrap_or_else(|e| panic!("parse {src:?}: {e}"))
    }

    #[test]
    fn parse_wealthy() {
        let prog =
            parse_program("fun Wealthy(S) = select x.Name where x <- S with x.Salary > 100000;")
                .unwrap();
        assert_eq!(prog.len(), 1);
        match &prog[0].kind {
            PhraseKind::Fun { name, params, body } => {
                assert_eq!(name, "Wealthy");
                assert_eq!(params, &["S".to_string()]);
                assert!(matches!(body.kind, ExprKind::Select { .. }));
            }
            other => panic!("unexpected phrase {other:?}"),
        }
    }

    #[test]
    fn parse_record_literal() {
        let e = expr(r#"[Name = "Joe", Salary = 22340]"#);
        match e.kind {
            ExprKind::Record(fields) => {
                assert_eq!(fields.len(), 2);
                assert_eq!(fields[0].0, "Name");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn duplicate_record_label_rejected() {
        let err = parse_expr("[A=1, A=2]").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::DuplicateLabel(_)));
    }

    #[test]
    fn parse_set_literal() {
        let e = expr("{1, 2, 3}");
        assert!(matches!(e.kind, ExprKind::Set(ref v) if v.len() == 3));
        let e = expr("{}");
        assert!(matches!(e.kind, ExprKind::Set(ref v) if v.is_empty()));
    }

    #[test]
    fn parse_injection() {
        let e = expr(r#"(Consultant of [Telephone=2221234])"#);
        match e.kind {
            ExprKind::Inject { label, .. } => assert_eq!(label, "Consultant"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_case_with_other() {
        let e =
            expr("case x.Status of Employee of y => y.Extension, Consultant of y => y.Telephone");
        match e.kind {
            ExprKind::Case { arms, default, .. } => {
                assert_eq!(arms.len(), 2);
                assert!(default.is_none());
            }
            other => panic!("{other:?}"),
        }
        let e = expr("case v of Value of x => true, other => false");
        match e.kind {
            ExprKind::Case { arms, default, .. } => {
                assert_eq!(arms.len(), 1);
                assert!(default.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_operator_precedence() {
        // 1 + 2 * 3 parses as 1 + (2 * 3)
        let e = expr("1 + 2 * 3");
        match e.kind {
            ExprKind::Binop {
                op: BinOp::Add,
                right,
                ..
            } => {
                assert!(matches!(right.kind, ExprKind::Binop { op: BinOp::Mul, .. }));
            }
            other => panic!("{other:?}"),
        }
        // comparison over arithmetic
        let e = expr("x.Salary > 100000 + 1");
        assert!(matches!(e.kind, ExprKind::Binop { op: BinOp::Gt, .. }));
        // andalso over comparison
        let e = expr("a = b andalso c = d");
        assert!(matches!(
            e.kind,
            ExprKind::Binop {
                op: BinOp::Andalso,
                ..
            }
        ));
    }

    #[test]
    fn parse_hom_with_operator_value() {
        let e = expr("hom((fn(y) => y.Qty), +, 0, S)");
        match e.kind {
            ExprKind::Hom { op, .. } => assert!(matches!(op.kind, ExprKind::OpVal(BinOp::Add))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_hom_star() {
        let e = expr("hom*((fn(x) => x), +, S)");
        assert!(matches!(e.kind, ExprKind::HomStar { .. }));
    }

    #[test]
    fn parse_join_project_con() {
        assert!(matches!(expr("join(a, b)").kind, ExprKind::Join { .. }));
        assert!(matches!(expr("con(a, b)").kind, ExprKind::Con { .. }));
        let e = expr("project(it, [Name:string])");
        match e.kind {
            ExprKind::Project { ty, .. } => {
                assert!(matches!(ty.kind, TypeExprKind::Record { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_select_multiple_generators() {
        let e = expr("select [A=x.A, B=y.B] where x <- R, y <- R with x.B = y.A");
        match e.kind {
            ExprKind::Select { generators, .. } => assert_eq!(generators.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_let_forms() {
        assert!(matches!(
            expr("let x = 1 in x end").kind,
            ExprKind::Let { .. }
        ));
        assert!(matches!(
            expr("let val x = 1 in x end").kind,
            ExprKind::Let { .. }
        ));
        assert!(matches!(expr("let x = 1 in x").kind, ExprKind::Let { .. }));
    }

    #[test]
    fn parse_refs() {
        assert!(matches!(expr("ref(3)").kind, ExprKind::Ref(_)));
        assert!(matches!(expr("!x").kind, ExprKind::Deref(_)));
        assert!(matches!(expr("d := 1").kind, ExprKind::Assign { .. }));
        // (!emp1).Department
        let e = expr("(!emp1).Department");
        assert!(matches!(e.kind, ExprKind::Field { .. }));
    }

    #[test]
    fn parse_as_postfix() {
        let e = expr("(!x).Salary as Value");
        match e.kind {
            ExprKind::As { label, .. } => assert_eq!(label, "Value"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_parenthesized_record_field() {
        let e = expr("[Name=n, (Salary=s as Value), Id=x]");
        match e.kind {
            ExprKind::Record(fields) => assert_eq!(fields.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_tuple_desugar() {
        let e = expr("(1, 2)");
        match e.kind {
            ExprKind::Record(fields) => {
                assert_eq!(fields[0].0, "#1");
                assert_eq!(fields[1].0, "#2");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_unit() {
        assert!(matches!(expr("()").kind, ExprKind::Unit));
    }

    #[test]
    fn parse_application_chain() {
        let e = expr("f(1)(2)");
        match e.kind {
            ExprKind::App { func, .. } => assert!(matches!(func.kind, ExprKind::App { .. })),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_type_expressions() {
        let t = parse_type("{[Name: string, Salary: int]}").unwrap();
        assert!(matches!(t.kind, TypeExprKind::Set(_)));
        let t = parse_type("[Name: [First: string, Last: string], Salary: int]").unwrap();
        assert!(matches!(t.kind, TypeExprKind::Record { .. }));
        let t = parse_type("rec v . (unit + (int * v))").unwrap_err();
        // `+` is not part of the type grammar; the paper's τ₁ + τ₂ notation
        // is for variants and spelled <#1:τ₁, #2:τ₂> in source.
        let _ = t;
        let t = parse_type("rec v . <#1: unit, #2: int * v>").unwrap();
        assert!(matches!(t.kind, TypeExprKind::Rec { .. }));
        let t = parse_type("ref([Name: string, Age: int])").unwrap();
        assert!(matches!(t.kind, TypeExprKind::Ref(_)));
        let t = parse_type("int -> int -> bool").unwrap();
        match t.kind {
            TypeExprKind::Arrow(_, rhs) => assert!(matches!(rhs.kind, TypeExprKind::Arrow(..))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_row_variables_in_types() {
        let t = parse_type("[('a) Age: int]").unwrap();
        match t.kind {
            TypeExprKind::Record { row, fields } => {
                let row = row.expect("row var");
                assert_eq!(row.name, "a");
                assert!(!row.desc);
                assert_eq!(fields.len(), 1);
            }
            other => panic!("{other:?}"),
        }
        let t = parse_type("<('a) Consultant: [Telephone: int]>").unwrap();
        assert!(matches!(t.kind, TypeExprKind::Variant { row: Some(_), .. }));
    }

    #[test]
    fn parse_desc_vars_in_types() {
        let t = parse_type("{\"b}").unwrap();
        match t.kind {
            TypeExprKind::Set(inner) => assert!(matches!(inner.kind, TypeExprKind::DescVar(_))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_program_multiple_phrases() {
        let prog = parse_program("val x = 1; fun f(y) = y; f(x);").unwrap();
        assert_eq!(prog.len(), 3);
        assert!(matches!(prog[2].kind, PhraseKind::Expr(_)));
    }

    #[test]
    fn parse_trailing_semi_optional() {
        let prog = parse_program("val x = 1").unwrap();
        assert_eq!(prog.len(), 1);
    }

    #[test]
    fn parse_nested_comment_program() {
        let prog = parse_program("(* Select all base parts *) val x = 1;").unwrap();
        assert_eq!(prog.len(), 1);
    }

    #[test]
    fn parse_fun_space_param() {
        let prog = parse_program("fun Closure R = R;").unwrap();
        match &prog[0].kind {
            PhraseKind::Fun { params, .. } => assert_eq!(params, &["R".to_string()]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_positions() {
        let err = parse_program("val = 3;").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::Expected { .. }));
    }

    #[test]
    fn parse_dynamic_forms() {
        assert!(matches!(expr("dynamic(x)").kind, ExprKind::MakeDynamic(_)));
        assert!(matches!(
            expr("dynamic(x, int)").kind,
            ExprKind::Coerce { .. }
        ));
    }

    #[test]
    fn parse_minus_forms() {
        assert!(matches!(
            expr("-3").kind,
            ExprKind::Unop { op: UnOp::Neg, .. }
        ));
        let e = expr("f(g, -, 0)");
        match e.kind {
            ExprKind::App { args, .. } => {
                assert!(matches!(args[1].kind, ExprKind::OpVal(BinOp::Sub)))
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            expr("a - b").kind,
            ExprKind::Binop { op: BinOp::Sub, .. }
        ));
    }
}
