//! Transitive closure (Figure 4's workload; ablation A2).
//!
//! * [`naive_closure`] — the paper's algorithm transcribed natively:
//!   each round recomputes *all* two-step compositions of the current
//!   relation against itself and stops when nothing new appears. Because
//!   the frontier doubles in path length each round, it converges in
//!   O(log diameter) rounds, each O(|R|²).
//! * [`seminaive_closure`] — classic delta iteration: only compositions
//!   involving newly discovered pairs are recomputed.
//!
//! Both operate on binary integer relations (adjacency pairs) for speed;
//! [`closure_relation`] adapts `Relation` values with `A`/`B` columns.

use crate::relation::{row, Relation};
use machiavelli_value::Value;
use std::collections::{BTreeSet, HashMap, HashSet};

/// The paper's Figure 4 algorithm on `(a, b)` pairs.
pub fn naive_closure(edges: &[(i64, i64)]) -> BTreeSet<(i64, i64)> {
    let mut r: BTreeSet<(i64, i64)> = edges.iter().copied().collect();
    loop {
        // r' = select [A=x.A, B=y.B] where x <- R, y <- R
        //      with x.B = y.A andalso not(member(..., R))
        let mut by_src: HashMap<i64, Vec<i64>> = HashMap::new();
        for &(a, b) in &r {
            by_src.entry(a).or_default().push(b);
        }
        let mut new = Vec::new();
        for &(a, b) in &r {
            if let Some(ys) = by_src.get(&b) {
                for &c in ys {
                    if !r.contains(&(a, c)) {
                        new.push((a, c));
                    }
                }
            }
        }
        if new.is_empty() {
            return r;
        }
        r.extend(new);
    }
}

/// Semi-naive (delta) transitive closure.
pub fn seminaive_closure(edges: &[(i64, i64)]) -> BTreeSet<(i64, i64)> {
    let mut all: HashSet<(i64, i64)> = edges.iter().copied().collect();
    let mut by_src: HashMap<i64, Vec<i64>> = HashMap::new();
    for &(a, b) in &all {
        by_src.entry(a).or_default().push(b);
    }
    let mut delta: Vec<(i64, i64)> = all.iter().copied().collect();
    while !delta.is_empty() {
        let mut next = Vec::new();
        for &(a, b) in &delta {
            if let Some(ys) = by_src.get(&b) {
                // Clone the target list: `by_src` also grows this round.
                for c in ys.clone() {
                    if all.insert((a, c)) {
                        next.push((a, c));
                    }
                }
            }
        }
        for &(a, c) in &next {
            by_src.entry(a).or_default().push(c);
        }
        delta = next;
    }
    all.into_iter().collect()
}

/// Closure of a `Relation` with integer `A`/`B` columns, returning a
/// `Relation` (bridges the interpreted and native worlds).
pub fn closure_relation(r: &Relation, seminaive: bool) -> Relation {
    let edges: Vec<(i64, i64)> = r
        .iter()
        .filter_map(|v| match v {
            Value::Record(fs) => match (fs.get("A"), fs.get("B")) {
                (Some(Value::Int(a)), Some(Value::Int(b))) => Some((*a, *b)),
                _ => None,
            },
            _ => None,
        })
        .collect();
    let closed = if seminaive {
        seminaive_closure(&edges)
    } else {
        naive_closure(&edges)
    };
    Relation::from_rows(
        closed
            .into_iter()
            .map(|(a, b)| row(&[("A", Value::Int(a)), ("B", Value::Int(b))])),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: i64) -> Vec<(i64, i64)> {
        (0..n).map(|i| (i, i + 1)).collect()
    }

    #[test]
    fn closure_of_chain() {
        let c = naive_closure(&chain(4));
        // 0→1→2→3→4: all (i, j) with i < j: 10 pairs.
        assert_eq!(c.len(), 10);
        assert!(c.contains(&(0, 4)));
        assert!(!c.contains(&(4, 0)));
    }

    #[test]
    fn naive_and_seminaive_agree() {
        for edges in [
            chain(6),
            vec![(1, 2), (2, 3), (3, 1)], // cycle
            vec![(1, 2), (3, 4)],         // disconnected
            vec![],                       // empty
            vec![(1, 1)],                 // self loop
            vec![(1, 2), (1, 3), (2, 4), (3, 4), (4, 5)],
        ] {
            assert_eq!(
                naive_closure(&edges),
                seminaive_closure(&edges),
                "{edges:?}"
            );
        }
    }

    #[test]
    fn cycle_closure_is_complete() {
        let c = seminaive_closure(&[(1, 2), (2, 3), (3, 1)]);
        assert_eq!(c.len(), 9); // all pairs over {1,2,3}
    }

    #[test]
    fn closure_relation_bridges() {
        let r = Relation::from_rows([
            row(&[("A", Value::Int(1)), ("B", Value::Int(2))]),
            row(&[("A", Value::Int(2)), ("B", Value::Int(3))]),
        ]);
        let naive = closure_relation(&r, false);
        let semi = closure_relation(&r, true);
        assert_eq!(naive, semi);
        assert_eq!(naive.len(), 3);
    }

    #[test]
    fn idempotent() {
        let once = naive_closure(&chain(5));
        let edges: Vec<_> = once.iter().copied().collect();
        assert_eq!(naive_closure(&edges), once);
    }
}
