//! A1 bench — natural-join strategies: nested loop vs hash vs sort-merge
//! over flat relations with uniform and skewed (few-key) distributions.
//! Expected shape: nested loop O(n·m) loses at scale; hash wins on
//! equality-joinable relations; sort-merge sits between.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// Short measurement windows so the full figure suite runs in minutes;
/// rerun individual benches with Criterion CLI flags for precision.
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}
use machiavelli::value::{con_value, join_value, show_value, Value};
use machiavelli_relational::{hash_join, nested_loop_join, row, sort_merge_join, Relation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

// --- the seed's string-rendered hash join, kept as the measured
// baseline for the structural-key rewrite -------------------------------

fn legacy_key_of(v: &Value, labels: &[machiavelli::value::Symbol]) -> Option<Vec<Value>> {
    let Value::Record(fs) = v else { return None };
    labels.iter().map(|l| fs.get(l).cloned()).collect()
}

fn legacy_hash_key(key: &[Value]) -> String {
    let mut out = String::new();
    for v in key {
        out.push_str(&show_value(v));
        out.push('\u{1f}');
    }
    out
}

/// Build/probe hash join keyed by rendered strings (the pre-rewrite
/// implementation, verbatim modulo the new `Fields` accessors).
fn legacy_string_hash_join(r: &Relation, s: &Relation) -> Relation {
    let labels = r.common_labels(s);
    if labels.is_empty() {
        return nested_loop_join(r, s);
    }
    let (build, probe, build_is_left) = if r.len() <= s.len() {
        (r, s, true)
    } else {
        (s, r, false)
    };
    let mut table: HashMap<String, Vec<&Value>> = HashMap::with_capacity(build.len());
    for x in build.iter() {
        if let Some(k) = legacy_key_of(x, &labels) {
            table.entry(legacy_hash_key(&k)).or_default().push(x);
        }
    }
    let mut out = Vec::new();
    for y in probe.iter() {
        let Some(k) = legacy_key_of(y, &labels) else {
            continue;
        };
        if let Some(matches) = table.get(&legacy_hash_key(&k)) {
            for x in matches {
                let (l, rgt) = if build_is_left { (*x, y) } else { (y, *x) };
                if con_value(l, rgt) {
                    out.push(join_value(l, rgt).expect("consistent values join"));
                }
            }
        }
    }
    Relation::from_rows(out)
}

fn gen_rel(n: usize, key_space: i64, labels: (&str, &str), seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    Relation::from_rows((0..n).map(|i| {
        row(&[
            (labels.0, Value::Int(rng.gen_range(0..key_space))),
            (labels.1, Value::Int(i as i64)),
        ])
    }))
}

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_ablation");
    group.sample_size(10);
    for n in [50usize, 200, 800] {
        // Uniform keys: selective join.
        let r = gen_rel(n, 4 * n as i64, ("K", "A"), 1);
        let s = gen_rel(n, 4 * n as i64, ("K", "B"), 2);
        group.bench_with_input(BenchmarkId::new("nested_loop/uniform", n), &n, |b, _| {
            b.iter(|| nested_loop_join(&r, &s))
        });
        group.bench_with_input(BenchmarkId::new("hash/uniform", n), &n, |b, _| {
            b.iter(|| hash_join(&r, &s))
        });
        group.bench_with_input(
            BenchmarkId::new("hash_string_key/uniform", n),
            &n,
            |b, _| b.iter(|| legacy_string_hash_join(&r, &s)),
        );
        group.bench_with_input(BenchmarkId::new("sort_merge/uniform", n), &n, |b, _| {
            b.iter(|| sort_merge_join(&r, &s))
        });

        // Skewed keys: few keys, large match groups.
        let rs = gen_rel(n, 8, ("K", "A"), 3);
        let ss = gen_rel(n, 8, ("K", "B"), 4);
        group.bench_with_input(BenchmarkId::new("nested_loop/skewed", n), &n, |b, _| {
            b.iter(|| nested_loop_join(&rs, &ss))
        });
        group.bench_with_input(BenchmarkId::new("hash/skewed", n), &n, |b, _| {
            b.iter(|| hash_join(&rs, &ss))
        });
        group.bench_with_input(BenchmarkId::new("hash_string_key/skewed", n), &n, |b, _| {
            b.iter(|| legacy_string_hash_join(&rs, &ss))
        });
        group.bench_with_input(BenchmarkId::new("sort_merge/skewed", n), &n, |b, _| {
            b.iter(|| sort_merge_join(&rs, &ss))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_strategies
}
criterion_main!(benches);
