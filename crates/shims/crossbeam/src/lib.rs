//! Offline shim for the `crossbeam` crate.
//!
//! The workspace uses `crossbeam::thread::scope` / scoped `spawn` and
//! the `deque` work-stealing queue; since Rust 1.63 the standard
//! library provides scoped threads, so `thread` is a thin adapter over
//! `std::thread::scope` exposing crossbeam's signatures (spawn
//! callbacks receive the scope, `scope` returns a `Result`), and
//! `deque` implements the `Worker`/`Stealer`/`Steal` surface over a
//! mutexed ring buffer (the lock-free Chase-Lev structure is overkill
//! for morsel-granular tasks: one lock acquisition per ~thousands of
//! rows of work).

pub mod thread {
    use std::any::Any;

    /// Scope handle passed to `scope` closures and spawn callbacks.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread; the callback receives the scope (so it
        /// can spawn siblings), matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope.spawn(move || {
                    let rescope = Scope { inner: inner_scope };
                    f(&rescope)
                }),
            }
        }

        /// Fallibly spawn a scoped thread: `Err` when the OS declines
        /// (thread limit, out of memory) instead of panicking, so
        /// callers can fold the chunk inline and degrade gracefully.
        /// (Shim extension: crossbeam spells this
        /// `builder().spawn(…)`; the workspace only needs the fallible
        /// entry point.)
        pub fn try_spawn<F, T>(&self, f: F) -> std::io::Result<ScopedJoinHandle<'scope, T>>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            std::thread::Builder::new()
                .spawn_scoped(inner_scope, move || {
                    let rescope = Scope { inner: inner_scope };
                    f(&rescope)
                })
                .map(|inner| ScopedJoinHandle { inner })
        }
    }

    /// Run `f` with a scope in which borrowed-data threads can be
    /// spawned; all threads are joined before `scope` returns.
    ///
    /// `std::thread::scope` propagates child panics by resuming the
    /// panic after joining, so unlike crossbeam this never actually
    /// returns `Err` — the `Result` exists for drop-in compatibility.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod deque {
    //! Work-stealing deque with crossbeam's `Worker`/`Stealer`/`Steal`
    //! API (FIFO flavor only — the workspace schedules morsels in
    //! range order). The owner pushes and pops at opposite ends;
    //! stealers take from the pop end, so stolen tasks preserve the
    //! queue's FIFO order. Contention surfaces as [`Steal::Retry`]
    //! (a held lock), exactly like crossbeam's CAS failure.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex, TryLockError};

    /// The outcome of one steal attempt.
    #[derive(Debug)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// A task was stolen.
        Success(T),
        /// The attempt raced another operation; try again.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if the attempt succeeded.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }
    }

    /// The owning end of a deque: push and pop, plus stealer handles
    /// for other threads.
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// A new FIFO deque (tasks pop in push order).
        pub fn new_fifo() -> Worker<T> {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        pub fn push(&self, task: T) {
            self.queue.lock().expect("deque lock").push_back(task);
        }

        pub fn pop(&self) -> Option<T> {
            self.queue.lock().expect("deque lock").pop_front()
        }

        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("deque lock").is_empty()
        }

        /// A handle other threads can steal through.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    /// The stealing end of a deque; clone freely across threads.
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Attempt to steal the oldest task. Non-blocking: a held lock
        /// reports [`Steal::Retry`] rather than waiting.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.try_lock() {
                Ok(mut q) => match q.pop_front() {
                    Some(t) => Steal::Success(t),
                    None => Steal::Empty,
                },
                Err(TryLockError::WouldBlock) => Steal::Retry,
                Err(TryLockError::Poisoned(e)) => match e.into_inner().pop_front() {
                    Some(t) => Steal::Success(t),
                    None => Steal::Empty,
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn deque_fifo_pop_and_steal_order() {
        use crate::deque::{Steal, Worker};
        let w: Worker<i32> = Worker::new_fifo();
        w.push(1);
        w.push(2);
        w.push(3);
        let s = w.stealer();
        assert_eq!(w.pop(), Some(1));
        assert!(matches!(s.steal(), Steal::Success(2)));
        assert_eq!(w.pop(), Some(3));
        assert!(matches!(s.steal(), Steal::Empty));
        assert!(s.clone().steal().success().is_none());
        assert!(w.is_empty());
    }

    #[test]
    fn deque_steals_cross_threads() {
        use crate::deque::{Steal, Worker};
        let w: Worker<u64> = Worker::new_fifo();
        for i in 0..100 {
            w.push(i);
        }
        let total: u64 = crate::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let s = w.stealer();
                    scope.spawn(move |_| {
                        let mut sum = 0u64;
                        loop {
                            match s.steal() {
                                Steal::Success(v) => sum += v,
                                Steal::Retry => std::thread::yield_now(),
                                Steal::Empty => break,
                            }
                        }
                        sum
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, (0..100).sum::<u64>());
    }

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn try_spawn_runs_and_joins() {
        let data = [2u64, 3];
        let product = crate::thread::scope(|s| {
            let h = s.try_spawn(|_| data.iter().product::<u64>()).unwrap();
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(product, 6);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = crate::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
