//! E0 bench — the introduction's `Wealthy` query: interpreted Machiavelli
//! vs the native relational substrate, over growing relations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// Short measurement windows so the full figure suite runs in minutes;
/// rerun individual benches with Criterion CLI flags for precision.
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}
use machiavelli::value::Value;
use machiavelli::Session;
use machiavelli_relational::gen_employees;

fn bench_wealthy(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig0_wealthy");
    group.sample_size(20);
    for n in [100usize, 1_000, 10_000] {
        let employees = gen_employees(n, 1);

        // Interpreted: the paper's query through the full pipeline
        // (type-checked once; the bench measures evaluation).
        let mut session = Session::new();
        session
            .bind_external(
                "employees",
                employees.clone().into_value(),
                "{[Name: string, Salary: int]}",
            )
            .unwrap();
        session
            .run("fun Wealthy(S) = select x.Name where x <- S with x.Salary > 100000;")
            .unwrap();
        group.bench_with_input(BenchmarkId::new("interpreted", n), &n, |b, _| {
            b.iter(|| session.eval_one("Wealthy(employees);").unwrap().value)
        });

        // Native: same query as select + project on the substrate.
        group.bench_with_input(BenchmarkId::new("native", n), &n, |b, _| {
            b.iter(|| {
                employees
                    .select(|v| {
                        matches!(v, Value::Record(fs)
                            if matches!(fs.get("Salary"), Some(Value::Int(s)) if *s > 100_000))
                    })
                    .project(&["Name"])
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_wealthy
}
criterion_main!(benches);
