//! Machiavelli's type system.
//!
//! This crate implements the static semantics of the Machiavelli database
//! programming language (Ohori, Buneman & Breazu-Tannen, SIGMOD 1989):
//!
//! * [`ty`] — types as regular trees with kinded unification variables;
//! * [`kind`] — the kind system (`'a`, `"a`, record and variant kinds);
//! * `unify` — kinded, equi-recursive unification;
//! * [`order`] — the information ordering `≤` with `⊔` (lub) and `⊓` (glb);
//! * [`constraint`] — conditional constraints (`τ = τ₁ lub τ₂`, …) and
//!   their two-mode solver;
//! * [`scheme`] — principal conditional type schemes;
//! * [`infer`] — algorithm W extended per \[OB88\];
//! * `lower` — lowering concrete type annotations;
//! * [`display`] — printing in the paper's notation.
//!
//! # Example
//!
//! ```
//! let phrases = machiavelli_types::infer_program(
//!     "fun Wealthy(S) = select x.Name where x <- S with x.Salary > 100000;",
//! ).unwrap();
//! assert_eq!(phrases[0].scheme.show(), "{[(\"a) Name:\"b,Salary:int]} -> {\"b}");
//! ```

pub mod constraint;
pub mod display;
pub mod error;
pub mod infer;
pub mod kind;
pub mod lower;
pub mod order;
pub mod scheme;
pub mod ty;
pub mod unify;

pub use constraint::Constraint;
pub use display::{show_type, TypeNamer};
pub use error::TypeError;
pub use infer::{infer_program, Inferencer, PhraseType, TypeEnv};
pub use kind::Kind;
pub use lower::{lower_closed, lower_open};
pub use order::{glb, le, lub, type_eq, Partial};
pub use scheme::Scheme;
pub use ty::{TvRef, Ty, Type, VarGen};
pub use unify::{require_desc, unify};
