//! Parallel `hom` (ablation A2).
//!
//! The paper observes that *proper* applications of `hom` — `op`
//! associative and commutative, `f` side-effect free — "have the property
//! of being computable in parallel". This module demonstrates the claim
//! on the native substrate: [`par_hom`] splits the set across threads,
//! folds each chunk, and combines the partial results with `op`.
//!
//! Machiavelli's interpreted values are deliberately single-threaded
//! (`Rc`-based), so the parallel path operates on extracted plain data —
//! exactly what a bulk-evaluation backend would do.

use crossbeam::thread;

/// Sequential `hom(f, op, z, items)` as the paper's right fold.
pub fn seq_hom<T, B>(items: &[T], f: impl Fn(&T) -> B, op: impl Fn(B, B) -> B, z: B) -> B {
    let mut acc = z;
    for x in items.iter().rev() {
        acc = op(f(x), acc);
    }
    acc
}

/// Parallel `hom` for *proper* applications: `op` must be associative and
/// commutative with identity `z`. Splits into `n_threads` chunks.
pub fn par_hom<T, B>(
    items: &[T],
    f: impl Fn(&T) -> B + Sync,
    op: impl Fn(B, B) -> B + Sync,
    z: B,
    n_threads: usize,
) -> B
where
    T: Sync,
    B: Send + Clone,
{
    let n_threads = n_threads.max(1);
    if items.len() < 2 * n_threads || n_threads == 1 {
        return seq_hom(items, &f, &op, z);
    }
    let chunk = items.len().div_ceil(n_threads);
    let partials = thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|slice| {
                let f = &f;
                let op = &op;
                let z = z.clone();
                scope.spawn(move |_| seq_hom(slice, f, op, z))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par_hom worker"))
            .collect::<Vec<B>>()
    })
    .expect("par_hom scope");
    let mut acc = z;
    for p in partials {
        acc = op(p, acc);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_hom_matches_definition() {
        // op(f(x1), op(f(x2), op(f(x3), z)))
        let r = seq_hom(&[1, 2, 3], |&x| x * 10, |a, b| a + b, 0);
        assert_eq!(r, 60);
    }

    #[test]
    fn par_matches_seq_for_proper_applications() {
        let data: Vec<i64> = (0..10_000).collect();
        for threads in [1, 2, 4, 8] {
            assert_eq!(
                par_hom(&data, |&x| x, |a, b| a + b, 0, threads),
                seq_hom(&data, |&x| x, |a, b| a + b, 0)
            );
            assert_eq!(
                par_hom(&data, |&x| x % 97, |a, b| a.max(b), i64::MIN, threads),
                96
            );
        }
    }

    #[test]
    fn par_count_and_filtering_hom() {
        // filter-like hom: count elements above a threshold.
        let data: Vec<i64> = (0..5000).collect();
        let count = par_hom(&data, |&x| i64::from(x > 2499), |a, b| a + b, 0, 4);
        assert_eq!(count, 2500);
    }

    #[test]
    fn small_inputs_fall_back_to_sequential() {
        assert_eq!(par_hom(&[1, 2, 3], |&x| x, |a, b| a + b, 0, 16), 6);
        assert_eq!(par_hom::<i64, i64>(&[], |&x| x, |a, b| a + b, 7, 4), 7);
    }
}
