//! Client-side helpers for the replication verbs of the `machid` wire
//! protocol: a one-request-one-response line client plus parsers for
//! the `SHIP`/`SIDS` response grammar (documented in
//! `machiavelli_server::wire`).

use machiavelli_server::wire::from_hex;
use machiavelli_wal::{Ship, SnapshotTransfer};
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A blocking line client over a TCP stream: write one request line,
/// read one response line.
pub struct LineClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl LineClient {
    /// Connect with an I/O timeout on reads and writes, so a partition
    /// surfaces as an error instead of a hang.
    pub fn connect(addr: &str, io_timeout: Duration) -> io::Result<LineClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(io_timeout))?;
        stream.set_write_timeout(Some(io_timeout))?;
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone()?);
        Ok(LineClient {
            reader,
            writer: stream,
        })
    }

    /// Send one request line and read its response line (newline
    /// stripped). EOF mid-protocol is an error.
    pub fn request(&mut self, line: &str) -> io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-protocol",
            ));
        }
        Ok(resp.trim_end_matches(['\n', '\r']).to_string())
    }
}

/// An error from parsing a wire response: either the server declined
/// (`ERR <kind> …`, kind preserved) or the line did not fit the
/// grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// A typed `ERR` response.
    Declined { kind: String, message: String },
    /// The response did not parse as the expected `OK` form.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Declined { kind, message } => {
                write!(f, "server declined ({kind}): {message}")
            }
            WireError::Malformed(line) => write!(f, "malformed response: {line}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Split off a typed `ERR kind message` response.
fn not_err(resp: &str) -> Result<&str, WireError> {
    if let Some(rest) = resp.strip_prefix("ERR ") {
        let (kind, message) = rest.split_once(' ').unwrap_or((rest, ""));
        return Err(WireError::Declined {
            kind: kind.to_string(),
            message: message.to_string(),
        });
    }
    Ok(resp)
}

fn malformed(resp: &str) -> WireError {
    WireError::Malformed(resp.to_string())
}

fn hex_field(tok: &str, resp: &str) -> Result<Vec<u8>, WireError> {
    if tok == "-" {
        return Ok(Vec::new());
    }
    from_hex(tok).ok_or_else(|| malformed(resp))
}

/// Parse an `OK sids <n> [<sid>]…` response.
pub fn parse_sids(resp: &str) -> Result<Vec<u64>, WireError> {
    let resp_ok = not_err(resp)?;
    let rest = resp_ok
        .strip_prefix("OK sids ")
        .ok_or_else(|| malformed(resp))?;
    let mut toks = rest.split_whitespace();
    let n: usize = toks
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| malformed(resp))?;
    let sids: Vec<u64> = toks
        .map(|t| t.parse())
        .collect::<Result<_, _>>()
        .map_err(|_| malformed(resp))?;
    if sids.len() != n {
        return Err(malformed(resp));
    }
    Ok(sids)
}

/// Parse an `OK ship …` response into the [`Ship`] it encodes.
pub fn parse_ship(resp: &str) -> Result<Ship, WireError> {
    let resp_ok = not_err(resp)?;
    let rest = resp_ok
        .strip_prefix("OK ship ")
        .ok_or_else(|| malformed(resp))?;
    let mut toks = rest.split_whitespace();
    match toks.next() {
        Some("groups") => {
            let gen = toks.next().and_then(|t| t.parse().ok());
            let from = toks.next().and_then(|t| t.parse().ok());
            let groups = toks.next().and_then(|t| t.parse().ok());
            let bytes = toks.next();
            match (gen, from, groups, bytes, toks.next()) {
                (Some(gen), Some(from), Some(groups), Some(bytes), None) => Ok(Ship::Groups {
                    gen,
                    from,
                    groups,
                    bytes: hex_field(bytes, resp)?,
                }),
                _ => Err(malformed(resp)),
            }
        }
        Some("snapshot") => {
            let gen = toks.next().and_then(|t| t.parse().ok());
            let snap = toks.next();
            let log = toks.next();
            match (gen, snap, log, toks.next()) {
                (Some(gen), Some(snap), Some(log), None) => Ok(Ship::Snapshot(SnapshotTransfer {
                    gen,
                    snap: if snap == "-" {
                        None
                    } else {
                        Some(hex_field(snap, resp)?)
                    },
                    log: hex_field(log, resp)?,
                })),
                _ => Err(malformed(resp)),
            }
        }
        _ => Err(malformed(resp)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sids_round_trip() {
        assert_eq!(parse_sids("OK sids 0").unwrap(), vec![]);
        assert_eq!(parse_sids("OK sids 2 1 7").unwrap(), vec![1, 7]);
        assert!(parse_sids("OK sids 2 1").is_err(), "count mismatch");
        assert!(matches!(
            parse_sids("ERR shutdown server is shut down"),
            Err(WireError::Declined { kind, .. }) if kind == "shutdown"
        ));
    }

    #[test]
    fn ship_round_trip() {
        assert_eq!(
            parse_ship("OK ship groups 3 128 0 -").unwrap(),
            Ship::Groups {
                gen: 3,
                from: 128,
                groups: 0,
                bytes: vec![]
            }
        );
        assert_eq!(
            parse_ship("OK ship groups 1 20 2 00ff10").unwrap(),
            Ship::Groups {
                gen: 1,
                from: 20,
                groups: 2,
                bytes: vec![0x00, 0xff, 0x10]
            }
        );
        assert_eq!(
            parse_ship("OK ship snapshot 2 - 414243").unwrap(),
            Ship::Snapshot(SnapshotTransfer {
                gen: 2,
                snap: None,
                log: b"ABC".to_vec()
            })
        );
        assert!(parse_ship("OK ship groups 1 20 2 zz").is_err());
        assert!(parse_ship("OK saved 1 gen 2").is_err());
    }
}
