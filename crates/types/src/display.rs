//! Rendering types in the paper's notation.
//!
//! * `'a` — an arbitrary type variable,
//! * `"a` — a description type variable,
//! * `[('a) l:τ, …]` — a record-kinded variable (`("a)` when it must be a
//!   description type),
//! * `<('a) l:τ, …>` — a variant-kinded variable,
//! * `τ₁ * τ₂` — tuples (records labelled `#1`, `#2`, …),
//! * `{τ}`, `ref(τ)`, `rec v . τ` — sets, references, recursive types.
//!
//! Variables are named `a`, `b`, … in order of first occurrence, so two
//! α-equivalent types print identically — tests compare paper output
//! against ours by printing both through this module.

use crate::kind::Kind;
use crate::ty::{resolve, TvRef, Ty, Type};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Allocates stable display names for unification variables.
#[derive(Debug, Default)]
pub struct TypeNamer {
    names: HashMap<u64, String>,
    next: usize,
}

impl TypeNamer {
    pub fn new() -> Self {
        Self::default()
    }

    /// The display name (without sigil) for variable id `id`.
    pub fn name_for(&mut self, id: u64) -> String {
        if let Some(n) = self.names.get(&id) {
            return n.clone();
        }
        let n = index_name(self.next);
        self.next += 1;
        self.names.insert(id, n.clone());
        n
    }
}

/// `0 → a`, `1 → b`, …, `25 → z`, `26 → a1`, `27 → b1`, …
fn index_name(i: usize) -> String {
    let letter = (b'a' + (i % 26) as u8) as char;
    let round = i / 26;
    if round == 0 {
        letter.to_string()
    } else {
        format!("{letter}{round}")
    }
}

/// Render `t` with a fresh namer (stand-alone display).
pub fn show_type(t: &Ty) -> String {
    let mut namer = TypeNamer::new();
    show_type_with(t, &mut namer)
}

/// Render `t`, sharing `namer` so related types use consistent names.
pub fn show_type_with(t: &Ty, namer: &mut TypeNamer) -> String {
    let mut out = String::new();
    let mut stack = Vec::new();
    write_ty_guarded(&mut out, t, namer, Prec::Top, &mut stack);
    out
}

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Prec {
    Top,
    /// Left operand of an arrow: arrows need parens.
    ArrowLhs,
    /// Tuple component: arrows and tuples need parens.
    Product,
}

/// `stack` holds the ids of kinded variables currently being expanded:
/// a variable that occurs inside its own kind (only possible transiently,
/// while reporting an occurs-check error) prints without re-expansion.
fn write_ty_guarded(
    out: &mut String,
    t: &Ty,
    namer: &mut TypeNamer,
    prec: Prec,
    stack: &mut Vec<u64>,
) {
    let t = resolve(t);
    match &*t {
        Type::Unit => out.push_str("unit"),
        Type::Int => out.push_str("int"),
        Type::Bool => out.push_str("bool"),
        Type::Str => out.push_str("string"),
        Type::Real => out.push_str("real"),
        Type::Dynamic => out.push_str("dynamic"),
        Type::Arrow(a, b) => {
            let parens = prec >= Prec::ArrowLhs;
            if parens {
                out.push('(');
            }
            write_ty_guarded(out, a, namer, Prec::ArrowLhs, stack);
            out.push_str(" -> ");
            write_ty_guarded(out, b, namer, Prec::Top, stack);
            if parens {
                out.push(')');
            }
        }
        Type::Record(fields) => {
            if is_tuple(fields) && !fields.is_empty() {
                let parens = prec >= Prec::ArrowLhs;
                if parens {
                    out.push('(');
                }
                // BTreeMap iterates "#1", "#10", "#2" lexicographically;
                // order by numeric index.
                let mut items: Vec<(usize, &Ty)> = fields
                    .iter()
                    .map(|(l, ty)| (l[1..].parse::<usize>().unwrap(), ty))
                    .collect();
                items.sort_by_key(|(i, _)| *i);
                for (pos, (_, ty)) in items.into_iter().enumerate() {
                    if pos > 0 {
                        out.push_str(" * ");
                    }
                    write_ty_guarded(out, ty, namer, Prec::Product, stack);
                }
                if parens {
                    out.push(')');
                }
            } else {
                out.push('[');
                write_fields(out, fields.iter(), namer, stack);
                out.push(']');
            }
        }
        Type::Variant(fields) => {
            out.push('<');
            write_fields(out, fields.iter(), namer, stack);
            out.push('>');
        }
        Type::Set(e) => {
            out.push('{');
            write_ty_guarded(out, e, namer, Prec::Top, stack);
            out.push('}');
        }
        Type::Ref(e) => {
            out.push_str("ref(");
            write_ty_guarded(out, e, namer, Prec::Top, stack);
            out.push(')');
        }
        Type::Rec(v, body) => {
            let _ = write!(out, "rec v{v} . ");
            write_ty_guarded(out, body, namer, Prec::Top, stack);
        }
        Type::RecVar(v) => {
            let _ = write!(out, "v{v}");
        }
        Type::Var(v) => write_var(out, v, namer, stack),
    }
}

fn is_tuple(fields: &std::collections::BTreeMap<crate::ty::Label, Ty>) -> bool {
    !fields.is_empty()
        && fields.keys().all(|l| l.starts_with('#'))
        && (1..=fields.len()).all(|i| fields.contains_key(format!("#{i}").as_str()))
}

fn write_fields<'a>(
    out: &mut String,
    fields: impl Iterator<Item = (&'a crate::ty::Label, &'a Ty)>,
    namer: &mut TypeNamer,
    stack: &mut Vec<u64>,
) {
    for (i, (l, ty)) in fields.enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{l}:");
        write_ty_guarded(out, ty, namer, Prec::Top, stack);
    }
}

fn write_var(out: &mut String, v: &TvRef, namer: &mut TypeNamer, stack: &mut Vec<u64>) {
    let id = v.id();
    let kind = v.kind();
    let name = namer.name_for(id);
    // A kinded variable occurring inside its own kind (transient, during
    // occurs-check error reporting) prints without re-expanding.
    let cyclic = stack.contains(&id);
    match kind {
        Kind::Any => {
            let _ = write!(out, "'{name}");
        }
        Kind::Desc => {
            let _ = write!(out, "\"{name}");
        }
        Kind::Record { fields, desc } => {
            let sig = if desc { '"' } else { '\'' };
            if cyclic {
                let _ = write!(out, "{sig}{name}");
                return;
            }
            stack.push(id);
            let _ = write!(out, "[({sig}{name}) ");
            write_fields(out, fields.iter(), namer, stack);
            out.push(']');
            stack.pop();
        }
        Kind::Variant { fields, desc } => {
            let sig = if desc { '"' } else { '\'' };
            if cyclic {
                let _ = write!(out, "{sig}{name}");
                return;
            }
            stack.push(id);
            let _ = write!(out, "<({sig}{name}) ");
            write_fields(out, fields.iter(), namer, stack);
            out.push('>');
            stack.pop();
        }
    }
}

/// Render a kind (used in error messages).
pub fn show_kind(k: &Kind) -> String {
    let mut namer = TypeNamer::new();
    match k {
        Kind::Any => "'_".to_string(),
        Kind::Desc => "\"_".to_string(),
        Kind::Record { fields, desc } => {
            let mut out = String::new();
            let mut stack = Vec::new();
            out.push_str(if *desc { "[(\"_) " } else { "[('_) " });
            write_fields(&mut out, fields.iter(), &mut namer, &mut stack);
            out.push(']');
            out
        }
        Kind::Variant { fields, desc } => {
            let mut out = String::new();
            let mut stack = Vec::new();
            out.push_str(if *desc { "<(\"_) " } else { "<('_) " });
            write_fields(&mut out, fields.iter(), &mut namer, &mut stack);
            out.push('>');
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::*;

    #[test]
    fn show_base_and_containers() {
        assert_eq!(show_type(&t_int()), "int");
        assert_eq!(show_type(&t_set(t_str())), "{string}");
        assert_eq!(
            show_type(&t_record([
                ("Name".into(), t_str()),
                ("Age".into(), t_int())
            ])),
            "[Age:int,Name:string]"
        );
        assert_eq!(show_type(&t_ref(t_int())), "ref(int)");
    }

    #[test]
    fn show_tuple_as_product() {
        assert_eq!(show_type(&t_tuple([t_int(), t_bool()])), "int * bool");
        assert_eq!(
            show_type(&t_arrow(t_tuple([t_int(), t_bool()]), t_int())),
            "(int * bool) -> int"
        );
    }

    #[test]
    fn show_vars_with_kinds() {
        let gen = VarGen::new();
        let a = gen.fresh_ty(Kind::Any, 0);
        let d = gen.fresh_ty(Kind::Desc, 0);
        let t = t_arrow(a.clone(), t_arrow(d, a));
        assert_eq!(show_type(&t), "'a -> \"b -> 'a");
    }

    #[test]
    fn show_record_kinded_var() {
        let gen = VarGen::new();
        let b = gen.fresh_ty(Kind::Desc, 0);
        let row = gen.fresh_ty(
            Kind::record(
                [("Name".into(), b.clone()), ("Salary".into(), t_int())],
                true,
            ),
            0,
        );
        let t = t_arrow(t_set(row), t_set(b));
        assert_eq!(show_type(&t), "{[(\"a) Name:\"b,Salary:int]} -> {\"b}");
    }

    #[test]
    fn show_variant_kinded_var() {
        let gen = VarGen::new();
        let v = gen.fresh_ty(Kind::variant([("Consultant".into(), t_int())], false), 0);
        assert_eq!(show_type(&v), "<('a) Consultant:int>");
    }

    #[test]
    fn show_recursive_type() {
        let body = t_variant([
            ("Nil".into(), t_unit()),
            (
                "Cons".into(),
                t_tuple([t_int(), std::rc::Rc::new(Type::RecVar(7))]),
            ),
        ]);
        let rec: Ty = std::rc::Rc::new(Type::Rec(7, body));
        assert_eq!(show_type(&rec), "rec v7 . <Cons:int * v7,Nil:unit>");
    }

    #[test]
    fn arrow_lhs_parenthesized() {
        let t = t_arrow(t_arrow(t_int(), t_int()), t_bool());
        assert_eq!(show_type(&t), "(int -> int) -> bool");
    }

    #[test]
    fn name_sequence_wraps() {
        assert_eq!(index_name(0), "a");
        assert_eq!(index_name(25), "z");
        assert_eq!(index_name(26), "a1");
    }
}
