//! Golden-plan tests: pin the operator trees the comprehension planner
//! chooses for the paper's query shapes (`Session::plan_of` renders the
//! physical pipeline; the `Fallback` line names shapes left to the
//! interpreter's nested loop). Cacheable operators carry an index-store
//! marker — `[idx build]` against a cold store, `[idx cached]` once the
//! session holds a live index with the operator's fingerprint. If
//! planner behavior changes on purpose, update these strings
//! deliberately.

use machiavelli::Session;

/// Render against a cold store so `[idx build]` markers are
/// deterministic regardless of what ran earlier on this thread, and
/// with a single worker thread so no machine- or env-dependent
/// `[par n=…]` marker appears (the parallel goldens below pin the
/// thread count explicitly instead).
fn plan(src: &str) -> String {
    let s = Session::new();
    s.store_reset();
    s.set_par_threads(Some(1));
    s.plan_of(src).unwrap()
}

/// Render with a four-thread parallel lane (and a cold store).
fn plan_par4(src: &str) -> String {
    let s = Session::new();
    s.store_reset();
    let prev = s.set_par_threads(Some(4));
    let out = s.plan_of(src).unwrap();
    s.set_par_threads(prev);
    out
}

#[test]
fn fig9_shape_two_generator_equi_join_is_hash_join() {
    // The advisor/salary join shape of Figure 9: two independent
    // generators linked by a key equality, with a per-side filter. The
    // sources are *view calls*, which construct fresh storage every
    // evaluation — an index over them could never be looked up again,
    // so the join is deliberately uncached (no idx marker; materialize
    // the view into a binding to get reuse, as the variant below does).
    assert_eq!(
        plan(
            "select [Name = s.Name, Salary = e.Salary]
             where s <- StudentView(persons), e <- EmployeeView(persons)
             with s.Name = e.Name andalso e.Salary > 1000;"
        ),
        "Project [Name=s.Name, Salary=e.Salary]\n  \
         HashJoin probe(s.Name) build(e.Name)\n    \
         Scan s <- StudentView(persons)\n    \
         Build e <- EmployeeView(persons) filter (e.Salary > 1000)"
    );
}

#[test]
fn fig9_view_call_join_renders_the_parallel_marker_at_four_threads() {
    // The same uncached view-call join as above, with a multi-threaded
    // parallel lane: both key closures are plain-evaluable, so the
    // next execution fans out (once the build side clears the row
    // cutoff) — `explain` renders the configured worker count. The
    // build side's pushed filter is binder-closed and par-evaluable,
    // so it additionally advertises the columnar morsel lane.
    assert_eq!(
        plan_par4(
            "select [Name = s.Name, Salary = e.Salary]
             where s <- StudentView(persons), e <- EmployeeView(persons)
             with s.Name = e.Name andalso e.Salary > 1000;"
        ),
        "Project [Name=s.Name, Salary=e.Salary]\n  \
         HashJoin[par n=4] probe(s.Name) build(e.Name)\n    \
         Scan s <- StudentView(persons)\n    \
         Build[columnar par n=4] e <- EmployeeView(persons) filter (e.Salary > 1000)"
    );
}

#[test]
fn independent_generators_both_render_columnar_at_four_threads() {
    // Both generators carry binder-closed, par-evaluable pushed
    // filters: the **independent-generator schedule** — the executor
    // evaluates both sources up front and filters both relations as
    // one work-stealing morsel batch (no barrier between the scans).
    // `explain` shows both sides on the columnar lane.
    assert_eq!(
        plan_par4(
            "select [Name = s.Name, Salary = e.Salary]
             where s <- StudentView(persons), e <- EmployeeView(persons)
             with s.Age > 20 andalso s.Name = e.Name andalso e.Salary > 1000;"
        ),
        "Project [Name=s.Name, Salary=e.Salary]\n  \
         HashJoin[par n=4] probe(s.Name) build(e.Name)\n    \
         Scan[columnar par n=4] s <- StudentView(persons) filter (s.Age > 20)\n    \
         Build[columnar par n=4] e <- EmployeeView(persons) filter (e.Salary > 1000)"
    );
}

#[test]
fn single_generator_filter_renders_columnar_at_four_threads() {
    // The introduction's Wealthy query on the columnar lane: a pushed
    // ordering filter over one binder offloads to per-column worker
    // loops once the relation clears the row cutoff.
    assert_eq!(
        plan_par4("select x.Name where x <- S with x.Salary > 100000;"),
        "Project x.Name\n  \
         Scan[columnar par n=4] x <- S filter (x.Salary > 100000)"
    );
}

#[test]
fn store_served_and_env_dependent_joins_do_not_render_par() {
    // A store-cacheable join stays on the store path (a cached index
    // beats any rebuild), and an environment-dependent build is outside
    // the lane's static eligibility: neither renders `[par …]` even at
    // four threads.
    let cached = plan_par4("select (x.A, y.B) where x <- r, y <- s with x.K = y.K;");
    assert!(cached.contains("HashJoin[idx build]"), "{cached}");
    let env_dep =
        plan_par4("select y where x <- V(r), y <- W(s) with x.K = y.K andalso y.B > cutoff;");
    assert!(env_dep.contains("HashJoin probe(x.K)"), "{env_dep}");
    assert!(!env_dep.contains("[par"), "{env_dep}");
}

#[test]
fn fig9_shape_over_bound_relations_is_a_cacheable_hash_join() {
    // The same shape over stored relations (or materialized views):
    // the build side is keyed on stable storage, hence the idx marker.
    assert_eq!(
        plan(
            "select [Name = s.Name, Salary = e.Salary]
             where s <- students, e <- employees
             with s.Name = e.Name andalso e.Salary > 1000;"
        ),
        "Project [Name=s.Name, Salary=e.Salary]\n  \
         HashJoin[idx build] probe(s.Name) build(e.Name)\n    \
         Scan s <- students\n    \
         Build e <- employees filter (e.Salary > 1000)"
    );
}

#[test]
fn fig5_subpart_join_is_hash_join() {
    // The inner comprehension of Figure 5's `cost`: subparts joined to
    // the part database on part number. (`w` ranges over a field of an
    // enclosing binder — independent *within* this comprehension.) The
    // `parts` build table is cacheable: this is exactly the index the
    // `cost` recursion reuses across recursive calls.
    assert_eq!(
        plan(
            "select [SubpartCost = cost(z), Qty = w.Qty]
             where w <- x.SubParts, z <- parts
             with z.P# = w.P#;"
        ),
        "Project [SubpartCost=cost(z), Qty=w.Qty]\n  \
         HashJoin[idx build] probe(w.P#) build(z.P#)\n    \
         Scan w <- x.SubParts\n    \
         Build z <- parts"
    );
}

#[test]
fn fig5_shape_renders_cached_after_first_evaluation() {
    // Same fig5 inner shape, but on a session that has actually run the
    // query once. The first generator's relation (`subs`) is the
    // smaller stable side, so the first execution *swaps* the build
    // onto it; the warm plan predicts the same orientation from the
    // live cached fingerprint and renders the exchanged sides.
    let mut s = Session::new();
    s.store_reset();
    s.set_par_threads(Some(1));
    s.run(
        "val parts = {[P#=1, C=5], [P#=2, C=9]};
         val subs = {[P#=1, Qty=4]};",
    )
    .unwrap();
    let q = "select (z.C, w.Qty) where w <- subs, z <- parts with z.P# = w.P#;";
    let cold = s.plan_of(q).unwrap();
    assert!(
        cold.contains("HashJoin[idx build] probe(w.P#) build(z.P#)"),
        "{cold}"
    );
    s.eval_one(q).unwrap();
    assert_eq!(
        s.plan_of(q).unwrap(),
        "Project (z.C, w.Qty)\n  \
         HashJoin[idx cached, swapped] probe(z.P#) build(w.P#)\n    \
         Scan z <- parts\n    \
         Build w <- subs"
    );
    s.set_par_threads(None);
}

#[test]
fn cached_plain_index_renders_the_parallel_probe_marker() {
    // A warm, store-served join whose entry is plain (pure data rows)
    // and whose probe key is plain-evaluable: at four threads the next
    // execution probes the cached index in parallel — `explain` renders
    // the composed marker. (The build side `t` is the smaller relation,
    // so no swap interferes with the orientation.)
    let mut s = Session::new();
    s.store_reset();
    s.set_par_threads(Some(1));
    s.run(
        "val r = {[K=1, A=10], [K=2, A=20], [K=3, A=30]};
         val t = {[K=1, B=5], [K=2, B=6]};",
    )
    .unwrap();
    let q = "select (x.A, y.B) where x <- r, y <- t with x.K = y.K;";
    s.eval_one(q).unwrap();
    let prev = s.set_par_threads(Some(4));
    assert_eq!(
        s.plan_of(q).unwrap(),
        "Project (x.A, y.B)\n  \
         HashJoin[idx cached, par n=4] probe(x.K) build(y.K)\n    \
         Scan x <- r\n    \
         Build y <- t"
    );
    s.set_par_threads(prev);
    // Single-threaded the same warm plan renders the plain cached
    // marker without the probe suffix.
    let warm = s.plan_of(q).unwrap();
    assert!(warm.contains("HashJoin[idx cached] probe(x.K)"), "{warm}");
    s.set_par_threads(None);
}

#[test]
fn swapped_cached_index_composes_with_the_parallel_probe_marker() {
    // The swapped orientation also advertises the parallel probe when
    // the swapped entry is plain and the (new) probe keys are eligible.
    let mut s = Session::new();
    s.store_reset();
    s.set_par_threads(Some(1));
    s.run(
        "val small = {[K=1, A=10]};
         val big = {[K=1, B=5], [K=2, B=6], [K=3, B=7]};",
    )
    .unwrap();
    let q = "select (x.A, y.B) where x <- small, y <- big with x.K = y.K;";
    s.eval_one(q).unwrap(); // swaps: builds over `small`
    s.set_par_threads(Some(4));
    assert_eq!(
        s.plan_of(q).unwrap(),
        "Project (x.A, y.B)\n  \
         HashJoin[idx cached, swapped, par n=4] probe(y.K) build(x.K)\n    \
         Scan y <- big\n    \
         Build x <- small"
    );
    s.set_par_threads(None);
}

#[test]
fn single_generator_filter_is_scan_with_pushdown() {
    // The introduction's Wealthy query: an ordering filter is *not* an
    // index shape — it stays a plain scan and creates no store entry
    // (no cache pollution from one-shot filter queries).
    assert_eq!(
        plan("select x.Name where x <- S with x.Salary > 100000;"),
        "Project x.Name\n  Scan x <- S filter (x.Salary > 100000)"
    );
}

#[test]
fn single_generator_filter_queries_do_not_create_indexes() {
    let mut s = Session::new();
    s.store_reset();
    s.run("val S = {[Name=\"Joe\", Salary=22340], [Name=\"Helen\", Salary=132000]};")
        .unwrap();
    s.eval_one("select x.Name where x <- S with x.Salary > 100000;")
        .unwrap();
    let stats = s.store_stats();
    assert_eq!(stats.entries, 0, "{stats:?}");
    assert_eq!(stats.builds, 0, "{stats:?}");
}

#[test]
fn equality_probe_scan_is_index_scan() {
    // A single generator filtered by equality against the environment:
    // the scan probes a cached grouping of the relation instead of
    // filtering row by row.
    assert_eq!(
        plan("select x where x <- s with x.K = limit;"),
        "Project x\n  IndexScan[idx build] x <- s key(x.K = limit)"
    );
    // Composite key plus a residual pushed filter.
    assert_eq!(
        plan("select x where x <- s with x.K = a andalso x.J = b andalso x.A > 0;"),
        "Project x\n  \
         IndexScan[idx build] x <- s key(x.K = a, x.J = b) filter (x.A > 0)"
    );
}

#[test]
fn dependent_generator_is_dependent_nested_loop() {
    // Figure 3 shape: supplier sets nested inside rows.
    assert_eq!(
        plan("select s.S# where p <- supplied_by, s <- p.Suppliers with true;"),
        "Project s.S#\n  \
         NestedLoop s <- p.Suppliers (dependent)\n    \
         Scan p <- supplied_by"
    );
}

#[test]
fn non_equi_join_is_nested_loop_with_residual() {
    assert_eq!(
        plan("select (x, y) where x <- r, y <- s with x.K < y.K;"),
        "Project (x, y)\n  \
         Filter (x.K < y.K)\n    \
         NestedLoop y <- s\n      \
         Scan x <- r"
    );
}

#[test]
fn three_generator_mixed_plan() {
    // Two hash joins stack left-deep; the non-key conjunct lands in a
    // residual filter at the level it becomes decidable.
    assert_eq!(
        plan(
            "select (x.A, y.B, z.C)
             where x <- r, y <- s, z <- t
             with x.K = y.K andalso y.J = z.J andalso x.A < z.C;"
        ),
        "Project (x.A, y.B, z.C)\n  \
         Filter (x.A < z.C)\n    \
         HashJoin[idx build] probe(y.J) build(z.J)\n      \
         HashJoin[idx build] probe(x.K) build(y.K)\n        \
         Scan x <- r\n        \
         Build y <- s\n      \
         Build z <- t"
    );
}

#[test]
fn environment_dependent_build_table_carries_no_marker() {
    // The build-side filter mentions `cutoff` from the environment: the
    // table is rebuilt per execution and never cached, so no idx
    // marker is rendered.
    assert_eq!(
        plan("select y where x <- r, y <- s with x.K = y.K andalso y.B > cutoff;"),
        "Project y\n  \
         HashJoin probe(x.K) build(y.K)\n    \
         Scan x <- r\n    \
         Build y <- s filter (y.B > cutoff)"
    );
}

#[test]
fn unsafe_shapes_name_their_fallback() {
    // Function application in the predicate (may raise / not terminate).
    assert_eq!(
        plan("select x where x <- R with not(member(x, R));"),
        "Fallback (select_loop): predicate conjunct is not planner-safe: \
         not member(x, R)"
    );
    // `div` can raise on zero, so reordering it is observable.
    assert_eq!(
        plan("select x where x <- r, y <- s with x.K = y.K andalso 10 div x.A > 1;"),
        "Fallback (select_loop): predicate conjunct is not planner-safe: 10 div x.A > 1"
    );
    // A dependent source that applies a function.
    assert_eq!(
        plan("select y where x <- r, y <- f(x) with true;"),
        "Fallback (select_loop): dependent source of `y` is not planner-safe: f(x)"
    );
}

#[test]
fn equality_to_environment_constant_on_a_join_step_is_a_pushed_filter() {
    // `y.K = limit` mentions no earlier binder: a per-row filter on the
    // (non-first) generator, not a join key (the hash join needs a
    // probe side). Only the *first* generator's scan turns equality
    // filters into index probes.
    assert_eq!(
        plan("select y where x <- r, y <- s with y.K = limit;"),
        "Project y\n  \
         NestedLoop y <- s filter (y.K = limit)\n    \
         Scan x <- r"
    );
}
