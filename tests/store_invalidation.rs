//! The index store's correctness contract, end to end: repeated plans
//! reuse cached indexes (the fig5 `cost` recursion builds its `parts`
//! hash exactly once), and **no query ever observes pre-mutation rows**
//! — whether the relation was mutated through a reference (`:=` bumps
//! the mutation epoch) or rebuilt and rebound (copy-on-write storage
//! gives the new relation a new identity). A seeded property test
//! interleaves queries and mutations and holds the planner+store path
//! to the `select_loop` reference at every step.

use machiavelli::eval::set_planner_enabled;
use machiavelli::value::show_value;
use machiavelli::Session;
use machiavelli_bench::{scaled_parts_session, FIG5_SOURCE};
use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;

/// Run `f` with planner dispatch forced on/off, restoring the previous
/// setting afterwards.
fn with_planner<T>(on: bool, f: impl FnOnce() -> T) -> T {
    let prev = set_planner_enabled(on);
    let out = f();
    set_planner_enabled(prev);
    out
}

fn eval(s: &mut Session, src: &str) -> Result<String, String> {
    s.eval_one(src)
        .map(|o| show_value(&o.value))
        .map_err(|e| e.to_string())
}

#[test]
fn fig5_recursion_builds_the_parts_index_exactly_once() {
    // The PR 2 planner rebuilt the `parts` hash table inside every
    // recursive `cost` call. With the store, the first composite part
    // builds it and every later call — across the whole
    // `expensive_parts` sweep — probes the cached index.
    let (mut s, db) = scaled_parts_session(30, 5, 7);
    s.run(FIG5_SOURCE).unwrap();
    s.store_reset();
    s.eval_one("expensive_parts(parts, 0);").unwrap();
    let stats = s.store_stats();
    assert_eq!(
        stats.builds, 1,
        "one build for the whole recursion: {stats:?}"
    );
    assert!(stats.hits >= 1, "recursive calls must hit: {stats:?}");
    assert_eq!(stats.entries, 1, "{stats:?}");
    assert_eq!(stats.cached_rows, db.parts.len(), "{stats:?}");
    // A second full sweep is pure cache hits.
    let builds_before = stats.builds;
    s.eval_one("expensive_parts(parts, 0);").unwrap();
    assert_eq!(
        s.store_stats().builds,
        builds_before,
        "no rebuild on re-run"
    );
}

#[test]
fn identical_queries_share_one_build() {
    let mut s = Session::new();
    s.store_reset();
    s.run("val r = {[K=1, A=10], [K=2, A=20]}; val probe = {[K=1]};")
        .unwrap();
    let q = "select x.A where y <- probe, x <- r with x.K = y.K;";
    assert_eq!(eval(&mut s, q).unwrap(), "{10}");
    assert_eq!(eval(&mut s, q).unwrap(), "{10}");
    let stats = s.store_stats();
    assert_eq!(
        (stats.builds, stats.hits, stats.misses),
        (1, 1, 1),
        "{stats:?}"
    );
}

#[test]
fn ref_mutation_between_identical_queries_is_a_fresh_miss() {
    // The satellite scenario: a `ref`-held relation is mutated between
    // two identical queries. The second query must see the new rows and
    // must not be served from the cache (epoch invalidation).
    let mut s = Session::new();
    s.store_reset();
    s.run("val dbref = ref({[K=1, A=10], [K=2, A=20]}); val probe = {[K=1]};")
        .unwrap();
    let q = "select x.A where y <- probe, x <- !dbref with x.K = y.K;";
    assert_eq!(eval(&mut s, q).unwrap(), "{10}");
    assert_eq!(eval(&mut s, q).unwrap(), "{10}");
    let warm = s.store_stats();
    assert_eq!((warm.builds, warm.hits), (1, 1), "{warm:?}");

    s.eval_one("dbref := union(!dbref, {[K=1, A=99]});")
        .unwrap();
    assert_eq!(eval(&mut s, q).unwrap(), "{10, 99}", "fresh rows visible");
    let after = s.store_stats();
    assert_eq!(after.builds, 2, "the mutated relation re-built: {after:?}");
    assert_eq!(after.hits, warm.hits, "no stale hit: {after:?}");
    assert!(
        after.invalidated >= 1,
        "epoch dropped the old entry: {after:?}"
    );
}

#[test]
fn alpha_equivalent_queries_share_one_index() {
    // Fingerprints normalize the binder to `_`, so renaming a generator
    // variable does not duplicate the cached grouping.
    let mut s = Session::new();
    s.store_reset();
    s.run("val r = {[K=1, A=10], [K=2, A=20]}; val probe = {[K=1]};")
        .unwrap();
    assert_eq!(
        eval(
            &mut s,
            "select x.A where y <- probe, x <- r with x.K = y.K;"
        )
        .unwrap(),
        "{10}"
    );
    assert_eq!(
        eval(
            &mut s,
            "select z.A where w <- probe, z <- r with z.K = w.K;"
        )
        .unwrap(),
        "{10}"
    );
    let stats = s.store_stats();
    assert_eq!(
        (stats.builds, stats.hits, stats.entries),
        (1, 1, 1),
        "{stats:?}"
    );
}

#[test]
fn rebinding_a_rebuilt_relation_misses_by_pointer_identity() {
    // No reference write at all: the relation is rebuilt functionally
    // and rebound under the same name. Copy-on-write storage gives the
    // union a fresh identity, so the cache cannot serve the old index.
    let mut s = Session::new();
    s.store_reset();
    s.run("val r = {[K=1, A=10]}; val probe = {[K=1]};")
        .unwrap();
    let q = "select x.A where y <- probe, x <- r with x.K = y.K;";
    assert_eq!(eval(&mut s, q).unwrap(), "{10}");
    s.run("val r = union(r, {[K=1, A=99]});").unwrap();
    assert_eq!(eval(&mut s, q).unwrap(), "{10, 99}");
    let stats = s.store_stats();
    assert_eq!(stats.builds, 2, "{stats:?}");
    assert_eq!(stats.hits, 0, "{stats:?}");
}

#[test]
fn index_scan_sees_mutations_through_a_ref() {
    let mut s = Session::new();
    s.store_reset();
    s.run("val sref = ref({[K=1, A=10], [K=2, A=20]});")
        .unwrap();
    let q = "select x.A where x <- !sref with x.K = 2;";
    assert_eq!(eval(&mut s, q).unwrap(), "{20}");
    assert_eq!(eval(&mut s, q).unwrap(), "{20}");
    let warm = s.store_stats();
    assert_eq!((warm.builds, warm.hits), (1, 1), "{warm:?}");
    s.eval_one("sref := union(!sref, {[K=2, A=21]});").unwrap();
    assert_eq!(eval(&mut s, q).unwrap(), "{20, 21}");
    assert_eq!(s.store_stats().hits, warm.hits, "no stale hit");
}

#[test]
fn planner_and_interpreter_agree_on_a_warm_cache() {
    // Same query three times through the store, checked against the
    // nested loop each time — a cached probe must be observationally
    // identical to a fresh build.
    let (mut s, _db) = scaled_parts_session(16, 5, 3);
    s.store_reset();
    let q = "select (p.Pname, sb.P#) where p <- parts, sb <- supplied_by \
             with p.P# = sb.P#;";
    let reference = with_planner(false, || eval(&mut s, q));
    for round in 0..3 {
        let planned = with_planner(true, || eval(&mut s, q));
        assert_eq!(planned, reference, "round {round}");
    }
    assert!(s.store_stats().hits >= 1);
}

#[test]
fn lru_budget_bounds_cached_rows_end_to_end() {
    let mut s = Session::new();
    s.store_reset();
    machiavelli::store::with_store(|st| st.set_budget(3));
    s.run(
        "val big = {[K=1], [K=2], [K=3], [K=4]}; \
           val small = {[K=1], [K=2]}; val probe = {[K=1]};",
    )
    .unwrap();
    // `big` exceeds the whole budget: runs fine, caches nothing.
    eval(
        &mut s,
        "select x where y <- probe, x <- big with x.K = y.K;",
    )
    .unwrap();
    assert_eq!(s.store_stats().entries, 0);
    // An oversized IndexScan shape streams (no grouping is even built)
    // and still answers correctly.
    assert_eq!(
        eval(&mut s, "select x.K where x <- big with x.K = 2;").unwrap(),
        "{2}"
    );
    assert_eq!(s.store_stats().entries, 0);
    // `small` fits and is cached.
    eval(
        &mut s,
        "select x where y <- probe, x <- small with x.K = y.K;",
    )
    .unwrap();
    let stats = s.store_stats();
    assert_eq!((stats.entries, stats.cached_rows), (1, 2), "{stats:?}");
    machiavelli::store::with_store(|st| st.set_budget(machiavelli::store::DEFAULT_BUDGET_ROWS));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Interleave equi-join queries (over both a ref-held and a
    // plainly-bound relation) with reference mutations, and require the
    // planner+store path to agree with the `select_loop` reference
    // after every step.
    #[test]
    fn interleaved_queries_and_mutations_never_see_stale_rows(
        ops in proptest::collection::vec((any::<bool>(), 0i64..5, 0i64..40), 1..10),
        seed in 0i64..100,
    ) {
        let mut s = Session::new();
        s.store_reset();
        s.run(&format!(
            "val dbref = ref({{[K=0, A={seed}], [K=1, A={}]}});
             val fixed = {{[K=0, B=7], [K=2, B=9]}};
             val probe = {{[K=0], [K=1], [K=2], [K=3]}};",
            seed + 1
        )).unwrap();
        let queries = [
            "select (y.K, x.A) where y <- probe, x <- !dbref with x.K = y.K;",
            "select (x.A, z.B) where x <- !dbref, z <- fixed with x.K = z.K;",
        ];
        for (i, (mutate, k, a)) in ops.iter().enumerate() {
            if *mutate {
                s.eval_one(&format!(
                    "dbref := union(!dbref, {{[K={k}, A={a}]}});"
                )).unwrap();
            }
            let q = queries[i % queries.len()];
            let planned = with_planner(true, || eval(&mut s, q));
            let reference = with_planner(false, || eval(&mut s, q));
            prop_assert!(
                planned == reference,
                "op {i} of {ops:?}: {planned:?} vs {reference:?}"
            );
        }
    }
}
