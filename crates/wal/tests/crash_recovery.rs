//! Seeded kill-replay-verify: the crash-recovery harness.
//!
//! Hundreds of random interleavings of binds, ref writes, aliases,
//! checkpoints, and crashes — with injected torn writes, sync failures,
//! and mid-checkpoint kills — each verified by replaying the model's
//! durable prefix into a fresh session and comparing canonical state
//! (a shared-registry encoding of every binding, so pointer identity
//! across bindings is part of the comparison, not just values).
//!
//! The base seed comes from `MACHIAVELLI_FAULT_SEED` (default 1989), so
//! the CI chaos job and a local repro run the same interleavings.

use std::path::{Path, PathBuf};

use machiavelli::persist::{encode_with_registry, RefRegistry};
use machiavelli::Session;
use machiavelli_value::faults::{set_fault_config, FaultConfig};
use machiavelli_wal::{DurableSession, RecoveryReport, WalError};

fn base_seed() -> u64 {
    std::env::var("MACHIAVELLI_FAULT_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(1989)
}

/// Local splitmix64: the harness must not share a stream with the fault
/// layer it is testing.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn tempdir(tag: &str, n: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mach-crash-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Canonical durable-visible state: every binding encoded through one
/// shared registry, in a fixed name order. Two sessions get the same
/// string iff every binding has the same value *and* the same
/// cross-binding sharing (aliased refs receive one durable id).
fn canonical_state(session: &Session, names: &[String]) -> String {
    let mut reg = RefRegistry::new();
    let mut out = String::new();
    for name in names {
        if let Some((ty, value)) = session.persistable_binding(name) {
            let enc = encode_with_registry(&value, &mut reg)
                .unwrap_or_else(|e| panic!("canonical encode of {name}: {e}"));
            out.push_str(name);
            out.push(':');
            out.push_str(&ty);
            out.push('=');
            out.push_str(&enc);
            out.push(';');
        }
    }
    out
}

/// Replay `srcs` into a fresh in-memory session with faults shielded —
/// the ground truth a recovery must match.
fn expected_state(srcs: &[String], names: &[String]) -> String {
    let mut model = Session::bare();
    for src in srcs {
        model
            .run(src)
            .unwrap_or_else(|e| panic!("model replay of {src:?}: {e}"));
    }
    canonical_state(&model, names)
}

/// The model: sources applied in-memory this process lifetime, and how
/// many of them are durable on disk.
struct Model {
    applied: Vec<String>,
    durable: usize,
    /// Every name ever bound, in bind order (recovery may hold a
    /// superset of the durable model's names only if the harness is
    /// wrong — canonical_state over this list catches that too).
    names: Vec<String>,
    refs: Vec<String>,
}

impl Model {
    fn note_name(&mut self, name: &str) {
        if !self.names.iter().any(|n| n == name) {
            self.names.push(name.to_string());
        }
    }
}

/// Crash the session (drop it), check the recovered state against the
/// model twice (recovery must be idempotent), and hand back the
/// recovered session for the run to continue with.
fn crash_and_verify(dir: &Path, model: &mut Model, ctx: &str) -> DurableSession {
    set_fault_config(Some(FaultConfig::off()));
    model.applied.truncate(model.durable);
    // Bindings past the durable watermark died with the process; the
    // generator must stop aliasing them.
    model.refs = surviving_refs(&model.applied);
    let expected = expected_state(&model.applied, &model.names);
    let (ds, report) = DurableSession::open_bare(dir).unwrap_or_else(|e| panic!("{ctx}: {e}"));
    let got = canonical_state(ds.session(), &model.names);
    assert_eq!(got, expected, "{ctx}: first recovery diverged from model");
    drop(ds);
    let (ds, report2) = DurableSession::open_bare(dir).unwrap_or_else(|e| panic!("{ctx}: {e}"));
    let got2 = canonical_state(ds.session(), &model.names);
    assert_eq!(
        got2, expected,
        "{ctx}: second recovery diverged (not idempotent)"
    );
    assert_eq!(
        normalize(report2),
        normalize(report),
        "{ctx}: reports diverged across idempotent recoveries"
    );
    ds
}

/// Ref-typed names still bound after replaying exactly `srcs`: direct
/// `ref(..)` binds plus aliases of already-ref names.
fn surviving_refs(srcs: &[String]) -> Vec<String> {
    let mut refs: Vec<String> = Vec::new();
    for src in srcs {
        let Some(rest) = src.strip_prefix("val ") else {
            continue;
        };
        let name = rest.split(' ').next().unwrap().to_string();
        let rhs = src.split_once("= ").unwrap().1.trim_end_matches(';');
        if (rhs.starts_with("ref(") || refs.iter().any(|r| r == rhs)) && !refs.contains(&name) {
            refs.push(name);
        }
    }
    refs
}

/// A torn tail is truncated by the first recovery, so only the counts
/// that describe surviving state must match across recoveries.
fn normalize(mut r: RecoveryReport) -> RecoveryReport {
    r.torn_tail_truncated = false;
    r.stale_log_discarded = false;
    r
}

fn fault_profile(rng: &mut Rng, seed: u64) -> FaultConfig {
    let intensity = [0u32, 30_000, 120_000, 350_000][rng.below(4) as usize];
    let mut cfg = FaultConfig {
        seed,
        ..FaultConfig::off()
    };
    match rng.below(4) {
        0 => cfg.wal_torn_ppm = intensity,
        1 => cfg.wal_sync_fail_ppm = intensity,
        2 => cfg.checkpoint_kill_ppm = intensity,
        _ => {
            cfg.wal_torn_ppm = intensity / 2;
            cfg.wal_sync_fail_ppm = intensity / 2;
            cfg.checkpoint_kill_ppm = intensity / 3;
        }
    }
    cfg
}

#[test]
fn random_interleavings_recover_exactly() {
    let iterations: u64 = std::env::var("MACHIAVELLI_CRASH_ITERS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(220);
    let base = base_seed();
    let prev = set_fault_config(Some(FaultConfig::off()));

    for iter in 0..iterations {
        let seed = base.wrapping_mul(1_000_003).wrapping_add(iter);
        let mut rng = Rng::new(seed);
        let dir = tempdir("mix", seed);
        let mut model = Model {
            applied: Vec::new(),
            durable: 0,
            names: Vec::new(),
            refs: Vec::new(),
        };
        let (mut ds, _) = DurableSession::open_bare(&dir).unwrap();
        let faults = fault_profile(&mut rng, seed);
        let steps = 6 + rng.below(14);

        for step in 0..steps {
            let ctx = format!("seed {seed} iter {iter} step {step}");
            let roll = rng.below(100);
            if roll < 14 {
                // Simulated kill: drop the session mid-run.
                ds = crash_and_verify(&dir, &mut model, &ctx);
                continue;
            }
            if roll < 22 {
                set_fault_config(Some(faults));
                let res = ds.checkpoint();
                set_fault_config(Some(FaultConfig::off()));
                match res {
                    Ok(()) => model.durable = model.applied.len(),
                    Err(WalError::CheckpointKilled { renamed }) => {
                        // Stage-2 kill: the snapshot rename happened, so
                        // current state IS durable; stage-1 kill: the old
                        // snapshot + log still rule.
                        if renamed {
                            model.durable = model.applied.len();
                        }
                    }
                    Err(e) => panic!("{ctx}: checkpoint: {e}"),
                }
                continue;
            }
            // An evaluation op.
            let k = model.names.len();
            let (src, bound): (String, Vec<String>) = if roll < 42 || model.refs.is_empty() {
                if rng.below(3) == 0 {
                    (
                        format!("val n{k} = ref({});", rng.below(1000)),
                        vec![format!("n{k}")],
                    )
                } else {
                    (
                        format!("val n{k} = {};", rng.below(1000)),
                        vec![format!("n{k}")],
                    )
                }
            } else if roll < 62 {
                let r = &model.refs[rng.below(model.refs.len() as u64) as usize];
                (format!("{r} := {};", rng.below(1000)), vec!["it".into()])
            } else if roll < 78 {
                let r = &model.refs[rng.below(model.refs.len() as u64) as usize];
                (format!("val a{k} = {r};", r = r), vec![format!("a{k}")])
            } else {
                let r = &model.refs[rng.below(model.refs.len() as u64) as usize];
                (format!("!{r};", r = r), vec!["it".into()])
            };
            set_fault_config(Some(faults));
            let res = ds.eval(&src);
            set_fault_config(Some(FaultConfig::off()));
            match res {
                Ok(_) => {
                    model.applied.push(src.clone());
                    model.durable = model.applied.len();
                }
                // The write happened in memory but not on disk; it
                // becomes durable only via a later checkpoint.
                Err(WalError::TornWrite) | Err(WalError::SyncFailed) => {
                    model.applied.push(src.clone());
                }
                Err(WalError::CheckpointKilled { renamed }) => {
                    model.applied.push(src.clone());
                    if renamed {
                        model.durable = model.applied.len();
                    }
                }
                Err(e) => panic!("{ctx}: eval {src:?}: {e}"),
            }
            for b in bound {
                if src.contains("ref(") {
                    model.refs.push(b.clone());
                }
                model.note_name(&b);
            }
            // Aliases of refs are themselves ref names.
            if src.starts_with("val a") {
                let name = src[4..].split(' ').next().unwrap().to_string();
                if !model.refs.contains(&name) {
                    model.refs.push(name);
                }
            }
        }
        let ctx = format!("seed {seed} iter {iter} final");
        let ds = crash_and_verify(&dir, &mut model, &ctx);
        drop(ds);
        let _ = std::fs::remove_dir_all(&dir);
    }
    set_fault_config(prev);
}

#[test]
fn torn_tail_is_truncated_and_state_survives() {
    let prev = set_fault_config(Some(FaultConfig::off()));
    let dir = tempdir("torn", base_seed());
    {
        let (mut ds, _) = DurableSession::open_bare(&dir).unwrap();
        ds.eval("val keep = 7;").unwrap();
    }
    // Scribble a partial frame after the last commit — a kill mid-write.
    let log = dir.join("wal.log");
    let clean_len = std::fs::metadata(&log).unwrap().len();
    let mut bytes = std::fs::read(&log).unwrap();
    bytes.extend_from_slice(&[0x2A, 0x00, 0x00, 0x00, 0xDE, 0xAD]);
    std::fs::write(&log, &bytes).unwrap();

    let (mut ds, report) = DurableSession::open_bare(&dir).unwrap();
    assert!(report.torn_tail_truncated);
    assert_eq!(report.commits_replayed, 1);
    assert_eq!(
        std::fs::metadata(&log).unwrap().len(),
        clean_len,
        "tail cut"
    );
    assert_eq!(
        ds.eval("keep;").unwrap().0.pop().unwrap().show(),
        "val it = 7 : int"
    );
    // And the log accepts appends again after truncation.
    ds.eval("val more = 8;").unwrap();
    drop(ds);
    let (mut ds, report) = DurableSession::open_bare(&dir).unwrap();
    assert!(!report.torn_tail_truncated);
    assert_eq!(
        ds.eval("more;").unwrap().0.pop().unwrap().show(),
        "val it = 8 : int"
    );
    let _ = std::fs::remove_dir_all(&dir);
    set_fault_config(prev);
}

#[test]
fn doomed_log_heals_via_checkpoint() {
    let prev = set_fault_config(Some(FaultConfig::off()));
    let dir = tempdir("doomed", base_seed());
    let (mut ds, _) = DurableSession::open_bare(&dir).unwrap();
    ds.eval("val before = 1;").unwrap();

    // Guarantee the next append tears.
    set_fault_config(Some(FaultConfig {
        wal_torn_ppm: 1_000_000,
        seed: base_seed(),
        ..FaultConfig::off()
    }));
    let err = ds.eval("val lost = 2;").unwrap_err();
    assert!(matches!(err, WalError::TornWrite), "{err}");
    assert!(ds.log().is_doomed());
    set_fault_config(Some(FaultConfig::off()));

    // The next commit self-heals with a checkpoint that captures the
    // torn evaluation too — it did happen in memory.
    let (_, receipt) = ds.eval("val after = 3;").unwrap();
    assert!(receipt.checkpointed);
    assert!(!ds.log().is_doomed());
    drop(ds);

    let (mut ds, report) = DurableSession::open_bare(&dir).unwrap();
    assert!(report.recovered);
    assert_eq!(
        ds.eval("before + lost + after;")
            .unwrap()
            .0
            .pop()
            .unwrap()
            .show(),
        "val it = 6 : int"
    );
    let _ = std::fs::remove_dir_all(&dir);
    set_fault_config(prev);
}

#[test]
fn mid_checkpoint_kills_land_on_exactly_one_side() {
    let prev = set_fault_config(Some(FaultConfig::off()));
    let mut saw_stage1 = false;
    let mut saw_stage2 = false;
    for s in 0..200u64 {
        if saw_stage1 && saw_stage2 {
            break;
        }
        let seed = base_seed().wrapping_mul(7919).wrapping_add(s);
        let dir = tempdir("ckpt-kill", seed);
        let (mut ds, _) = DurableSession::open_bare(&dir).unwrap();
        ds.eval("val base = ref(10);").unwrap();
        ds.checkpoint().unwrap();
        ds.eval("base := 11;").unwrap();
        ds.eval("val extra = 12;").unwrap();

        set_fault_config(Some(FaultConfig {
            checkpoint_kill_ppm: 500_000,
            seed,
            ..FaultConfig::off()
        }));
        let res = ds.checkpoint();
        set_fault_config(Some(FaultConfig::off()));
        drop(ds); // crash right after the kill

        let names = ["base", "extra", "it"].map(String::from).to_vec();
        let (ds, report) = DurableSession::open_bare(&dir).unwrap();
        let got = canonical_state(ds.session(), &names);
        match res {
            Err(WalError::CheckpointKilled { renamed: false }) => {
                saw_stage1 = true;
                // Old snapshot + old log: the full pre-kill history
                // replays from them.
                let expected = expected_state(
                    &[
                        "val base = ref(10);".into(),
                        "base := 11;".into(),
                        "val extra = 12;".into(),
                    ],
                    &names,
                );
                assert_eq!(got, expected, "stage-1 kill, seed {seed}");
                assert!(!report.stale_log_discarded, "seed {seed}");
            }
            Err(WalError::CheckpointKilled { renamed: true }) => {
                saw_stage2 = true;
                // New snapshot took effect; the old-generation log is
                // stale and must be discarded, not replayed on top.
                let expected = expected_state(
                    &[
                        "val base = ref(10);".into(),
                        "base := 11;".into(),
                        "val extra = 12;".into(),
                    ],
                    &names,
                );
                assert_eq!(got, expected, "stage-2 kill, seed {seed}");
                assert!(report.stale_log_discarded, "seed {seed}");
            }
            Ok(()) => {}
            Err(e) => panic!("seed {seed}: {e}"),
        }
        drop(ds);
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert!(saw_stage1, "no seed produced a stage-1 checkpoint kill");
    assert!(saw_stage2, "no seed produced a stage-2 checkpoint kill");
    set_fault_config(prev);
}

#[test]
fn recovery_preserves_cross_binding_sharing() {
    let prev = set_fault_config(Some(FaultConfig::off()));
    let dir = tempdir("sharing", base_seed());
    {
        let (mut ds, _) = DurableSession::open_bare(&dir).unwrap();
        ds.eval("val cell = ref(1);").unwrap();
        ds.eval("val alias = cell;").unwrap();
        ds.eval("val third = ref(1);").unwrap();
    }
    let (mut ds, _) = DurableSession::open_bare(&dir).unwrap();
    // alias writes must reach cell but not third — pointer identity,
    // not value equality, survived the disk round-trip.
    ds.eval("alias := 5;").unwrap();
    assert_eq!(
        ds.eval("!cell;").unwrap().0.pop().unwrap().show(),
        "val it = 5 : int"
    );
    assert_eq!(
        ds.eval("!third;").unwrap().0.pop().unwrap().show(),
        "val it = 1 : int"
    );
    let _ = std::fs::remove_dir_all(ds.log().dir());
    set_fault_config(prev);
}

#[test]
fn wal_counters_accumulate() {
    let prev = set_fault_config(Some(FaultConfig::off()));
    let dir = tempdir("counters", base_seed());
    let before = machiavelli_value::wal_counters();
    {
        let (mut ds, _) = DurableSession::open_bare(&dir).unwrap();
        ds.eval("val c = 1;").unwrap();
        ds.eval("val d = 2;").unwrap();
        ds.checkpoint().unwrap();
    }
    let (_ds, _) = DurableSession::open_bare(&dir).unwrap();
    let after = machiavelli_value::wal_counters();
    assert!(after.commits >= before.commits + 2);
    assert!(after.records_appended >= before.records_appended + 4);
    assert!(after.bytes_logged > before.bytes_logged);
    assert!(after.checkpoints > before.checkpoints);
    assert!(after.recoveries > before.recoveries);
    let _ = std::fs::remove_dir_all(&dir);
    set_fault_config(prev);
}
