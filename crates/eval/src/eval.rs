//! The call-by-value evaluator.
//!
//! Evaluation is type-erased: programs are checked by
//! `machiavelli-types` first, and the evaluator implements the paper's
//! dynamic semantics, including:
//!
//! * `hom(f, op, z, s)` as the right fold
//!   `op(f(x₁), op(f(x₂), … op(f(xₙ), z)…))` over the set's canonical
//!   order (a *proper* application — associative-commutative `op` — is
//!   order-independent, §2);
//! * `select … where … with …` by nested iteration over the generators;
//! * `modify` as a **pure** copy-and-update (no side effect, §3.2);
//! * references with object identity and `:=`;
//! * the database operations delegated to `machiavelli-value`.

use crate::error::EvalError;
use machiavelli_plan::{mentions_any, plan_select, ExecError};
use machiavelli_syntax::ast::{BinOp, Expr, ExprKind, UnOp};
use machiavelli_syntax::symbol::Symbol;
use machiavelli_types::lower::lower_closed;
use machiavelli_value::{
    con_value, conforms, join_value, project_value, show_value, unionc_value, Builtin, Closure,
    DynValue, Env, Fields, MSet, RefValue, Value, ValueError,
};
use std::cell::Cell;
use std::rc::Rc;

/// Maximum evaluator recursion depth: a logical guard against runaway
/// recursion.
const MAX_DEPTH: u32 = 10_000;

/// Below this much estimated stack headroom the evaluator reports a
/// graceful [`EvalError::StackOverflow`] instead of risking the OS
/// guard page (the offline `stacker` shim measures, it cannot grow).
const STACK_RED_ZONE: usize = 192 * 1024;

/// Entry point for per-level stack accounting; growth is a no-op under
/// the offline shim, the headroom check in [`Cx::enter`] is the guard.
fn with_stack<T>(f: impl FnOnce() -> T) -> T {
    stacker::maybe_grow(STACK_RED_ZONE, 1024 * 1024, f)
}

/// Evaluate an expression in `env`.
pub fn eval_expr(env: &Env, e: &Expr) -> Result<Value, EvalError> {
    let mut cx = Cx { depth: 0, ticks: 0 };
    cx.eval(env, e)
}

/// Apply a function value to arguments (exposed for the OODB layer and
/// benches that drive closures from Rust).
pub fn apply_value(f: &Value, args: Vec<Value>) -> Result<Value, EvalError> {
    let mut cx = Cx { depth: 0, ticks: 0 };
    cx.apply(f, args)
}

/// The cooperative tick: fault-injection points first (an injected
/// panic or delay must be able to fire even on un-governed sessions),
/// then the guard poll.
fn governed_tick() -> Result<(), EvalError> {
    machiavelli_value::faults::maybe_delay();
    machiavelli_value::faults::maybe_eval_panic();
    if let Some(trip) = machiavelli_value::governor::check_current() {
        return Err(EvalError::Interrupted(trip));
    }
    Ok(())
}

thread_local! {
    /// Whether `select` dispatches to the comprehension planner
    /// (`machiavelli-plan`). On by default; tests and the
    /// planner-vs-interpreter benches flip it to force `select_loop`.
    static PLANNER_ENABLED: Cell<bool> = const { Cell::new(true) };
}

/// Is planner dispatch for `select` enabled on this thread?
pub fn planner_enabled() -> bool {
    PLANNER_ENABLED.with(|c| c.get())
}

/// Enable/disable planner dispatch on this thread, returning the
/// previous setting (so callers can restore it).
pub fn set_planner_enabled(on: bool) -> bool {
    PLANNER_ENABLED.with(|c| c.replace(on))
}

/// Balances a [`machiavelli_trace::begin_query`] on every exit from the
/// `select` arm — including `?` early returns and unwinds — so the
/// trace depth counter can never leak. Nested `select`s fold into the
/// outermost query's trace via the depth counter.
struct QueryTraceGuard;

impl Drop for QueryTraceGuard {
    fn drop(&mut self) {
        machiavelli_trace::end_query();
    }
}

/// The initial evaluation environment: builtins that are ordinary
/// identifiers.
pub fn builtin_env() -> Env {
    Env::new()
        .bind("union", Value::Builtin(Builtin::Union))
        .bind("not", Value::Builtin(Builtin::Not))
        .bind("applyc", Value::Builtin(Builtin::ApplyC))
}

/// Every this many `enter` calls the evaluator runs its cooperative
/// tick: fault-injection points plus the [`machiavelli_value::governor`]
/// poll. Depth alone cannot drive the tick — row loops evaluate at a
/// constant shallow depth, so a depth-keyed check would never fire on
/// exactly the long-running shapes deadlines exist for. A power of two
/// so the gate is a mask.
const GOVERNOR_TICK: u64 = 256;

struct Cx {
    depth: u32,
    /// Monotone count of `enter` calls (never decremented), driving the
    /// cooperative tick.
    ticks: u64,
}

impl Cx {
    fn enter(&mut self) -> Result<(), EvalError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(EvalError::StackOverflow);
        }
        // Periodically confirm real headroom remains; recursion depth
        // alone does not bound frame sizes.
        if self.depth.is_multiple_of(16)
            && stacker::remaining_stack().is_some_and(|rem| rem < STACK_RED_ZONE)
        {
            return Err(EvalError::StackOverflow);
        }
        self.ticks += 1;
        if self.ticks.is_multiple_of(GOVERNOR_TICK) {
            governed_tick()?;
        }
        Ok(())
    }

    fn eval(&mut self, env: &Env, e: &Expr) -> Result<Value, EvalError> {
        self.enter()?;
        let out = with_stack(|| self.eval_inner(env, e));
        self.depth -= 1;
        out
    }

    fn eval_inner(&mut self, env: &Env, e: &Expr) -> Result<Value, EvalError> {
        use ExprKind::*;
        match &e.kind {
            Unit => Ok(Value::Unit),
            Int(n) => Ok(Value::Int(*n)),
            Real(r) => Ok(Value::Real(*r)),
            Str(s) => Ok(Value::str(s.as_str())),
            Bool(b) => Ok(Value::Bool(*b)),
            Var(name) => env
                .lookup(name)
                .ok_or_else(|| EvalError::Unbound(name.to_string())),
            Lambda { params, body } => Ok(Value::Closure(Rc::new(Closure {
                params: params.clone(),
                body: (**body).clone(),
                env: env.clone(),
                rec_name: None,
            }))),
            App { func, args } => {
                let f = self.eval(env, func)?;
                let argv: Vec<Value> = args
                    .iter()
                    .map(|a| self.eval(env, a))
                    .collect::<Result<_, _>>()?;
                self.apply(&f, argv)
            }
            If {
                cond,
                then_branch,
                else_branch,
            } => match self.eval(env, cond)? {
                Value::Bool(true) => self.eval(env, then_branch),
                Value::Bool(false) => self.eval(env, else_branch),
                other => Err(EvalError::NotAFunction(show_value(&other))),
            },
            Record(fields) => {
                let mut out = Vec::with_capacity(fields.len());
                for (l, fe) in fields {
                    out.push((*l, self.eval(env, fe)?));
                }
                Ok(Value::Record(Fields::from_vec(out)))
            }
            Field { expr, label } => {
                let v = self.eval(env, expr)?;
                match &v {
                    Value::Record(fs) => fs.get(label).cloned().ok_or_else(|| {
                        ValueError::NoSuchField {
                            value: show_value(&v),
                            label: label.to_string(),
                        }
                        .into()
                    }),
                    other => Err(ValueError::NoSuchField {
                        value: show_value(other),
                        label: label.to_string(),
                    }
                    .into()),
                }
            }
            Modify { expr, label, value } => {
                let v = self.eval(env, expr)?;
                let new = self.eval(env, value)?;
                match v {
                    Value::Record(mut fs) => {
                        if !fs.contains_key(label) {
                            return Err(ValueError::NoSuchField {
                                value: "record".into(),
                                label: label.to_string(),
                            }
                            .into());
                        }
                        fs.insert(*label, new);
                        Ok(Value::Record(fs))
                    }
                    other => Err(ValueError::NoSuchField {
                        value: show_value(&other),
                        label: label.to_string(),
                    }
                    .into()),
                }
            }
            Inject { label, expr } => {
                let v = self.eval(env, expr)?;
                Ok(Value::variant(*label, v))
            }
            Case {
                expr,
                arms,
                default,
            } => {
                let v = self.eval(env, expr)?;
                let Value::Variant(label, payload) = &v else {
                    return Err(EvalError::NotAFunction(show_value(&v)));
                };
                for arm in arms {
                    if arm.label == *label {
                        let inner = env.bind(arm.var, (**payload).clone());
                        return self.eval(&inner, &arm.body);
                    }
                }
                match default {
                    Some(d) => self.eval(env, d),
                    None => Err(ValueError::AsMismatch {
                        expected: arms
                            .iter()
                            .map(|a| a.label.to_string())
                            .collect::<Vec<_>>()
                            .join("/"),
                        found: label.to_string(),
                    }
                    .into()),
                }
            }
            As { expr, label } => {
                let v = self.eval(env, expr)?;
                match &v {
                    Value::Variant(l, payload) if l == label => Ok((**payload).clone()),
                    Value::Variant(l, _) => Err(ValueError::AsMismatch {
                        expected: label.to_string(),
                        found: l.to_string(),
                    }
                    .into()),
                    other => Err(EvalError::NotAFunction(show_value(other))),
                }
            }
            Set(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(self.eval(env, item)?);
                }
                Ok(Value::set(out))
            }
            Union { left, right } => {
                let l = self.eval(env, left)?;
                let r = self.eval(env, right)?;
                set_union(&l, &r)
            }
            Unionc { left, right } => {
                let l = self.eval(env, left)?;
                let r = self.eval(env, right)?;
                Ok(unionc_value(&l, &r)?)
            }
            Hom { f, op, z, set } => {
                let fv = self.eval(env, f)?;
                let opv = self.eval(env, op)?;
                let zv = self.eval(env, z)?;
                let sv = self.eval(env, set)?;
                let items = as_set(&sv)?;
                // `hom` with the union operator (the paper's map/filter
                // idiom) is a bulk accumulation: k per-step merges cost
                // O(k·n) element shifts, one `MSet::extend` costs one
                // sort plus one merge. Union is proper (associative,
                // commutative, idempotent), so batching is unobservable;
                // `f` still runs in right-fold order with the same
                // not-a-set error points as the generic fold.
                if matches!(opv, Value::Builtin(Builtin::Union)) && !items.is_empty() {
                    return self.union_fold(&fv, &zv, items.iter().rev());
                }
                // *Proper* applications — `op` a known associative-
                // commutative operator with `z` its identity, `f`
                // effect-free — are "computable in parallel" (§2):
                // extract the set to plain data and fold it chunk-wise
                // through `relational::par_hom`. `None` means the shape
                // or data declined; the sequential fold below is exact.
                if let Some(v) = try_par_hom(&fv, &opv, &zv, items) {
                    return Ok(v);
                }
                // Right fold, per the paper's definition.
                let mut acc = zv;
                for x in items.iter().rev() {
                    let fx = self.apply(&fv, vec![x.clone()])?;
                    acc = self.apply(&opv, vec![fx, acc])?;
                }
                Ok(acc)
            }
            HomStar { f, op, set } => {
                let fv = self.eval(env, f)?;
                let opv = self.eval(env, op)?;
                let sv = self.eval(env, set)?;
                let items = as_set(&sv)?;
                let mut iter = items.iter().rev();
                let Some(last) = iter.next() else {
                    return Err(ValueError::EmptyHomStar.into());
                };
                let mut acc = self.apply(&fv, vec![last.clone()])?;
                // Same bulk-union path as `hom`, seeded by the first
                // application; on a singleton set the operator is never
                // applied, so `acc` passes through unchecked exactly
                // like the generic fold.
                if matches!(opv, Value::Builtin(Builtin::Union)) && items.len() > 1 {
                    return self.union_fold(&fv, &acc, iter);
                }
                for x in iter {
                    let fx = self.apply(&fv, vec![x.clone()])?;
                    acc = self.apply(&opv, vec![fx, acc])?;
                }
                Ok(acc)
            }
            Ref(inner) => {
                let v = self.eval(env, inner)?;
                Ok(Value::Ref(RefValue::new(v)))
            }
            Deref(inner) => {
                let v = self.eval(env, inner)?;
                match v {
                    Value::Ref(r) => Ok(r.get()),
                    other => Err(EvalError::NotAFunction(show_value(&other))),
                }
            }
            Assign { target, value } => {
                let t = self.eval(env, target)?;
                let v = self.eval(env, value)?;
                match t {
                    Value::Ref(r) => {
                        // Index-store invalidation hook: `RefValue::set`
                        // bumps the thread's mutation epoch, so any
                        // cached index (machiavelli-store) built before
                        // this write is dropped before its next use — a
                        // `:=` can never be followed by a query serving
                        // pre-mutation rows from an index.
                        r.set(v);
                        Ok(Value::Unit)
                    }
                    other => Err(EvalError::NotAFunction(show_value(&other))),
                }
            }
            Con { left, right } => {
                let l = self.eval(env, left)?;
                let r = self.eval(env, right)?;
                Ok(Value::Bool(con_value(&l, &r)))
            }
            Join { left, right } => {
                let l = self.eval(env, left)?;
                let r = self.eval(env, right)?;
                Ok(join_value(&l, &r)?)
            }
            Project { expr, ty } => {
                let v = self.eval(env, expr)?;
                let target = lower_closed(ty).map_err(|err| {
                    EvalError::Value(ValueError::ProjectionMismatch {
                        value: show_value(&v),
                        ty: err.to_string(),
                    })
                })?;
                Ok(project_value(&v, &target)?)
            }
            Let { name, bound, body } => {
                let bv = self.eval(env, bound)?;
                let inner = env.bind(*name, bv);
                self.eval(&inner, body)
            }
            Select {
                result,
                generators,
                pred,
            } => {
                // Default path: compile the comprehension into an operator
                // pipeline (hash build/probe for equi-join shapes, filter
                // pushdown). `plan_select` declines shapes where
                // reordering could be observable — those and a disabled
                // planner fall through to the nested-loop semantics
                // below. Expression evaluation inside the pipeline calls
                // back into `self`, so semantics live in one place.
                machiavelli_trace::begin_query("select");
                let _qt = QueryTraceGuard;
                if planner_enabled() {
                    match plan_select(generators, pred, result) {
                        Ok(plan) => {
                            return match machiavelli_plan::execute(&plan, env, self) {
                                Ok(v) => Ok(v),
                                Err(ExecError::Eval(e)) => Err(e),
                                Err(ExecError::NotASet(shown)) => {
                                    Err(ValueError::NotASet(shown).into())
                                }
                                Err(ExecError::NotABool(shown)) => {
                                    Err(EvalError::NotAFunction(shown))
                                }
                                Err(ExecError::Interrupted(trip)) => {
                                    Err(EvalError::Interrupted(trip))
                                }
                                Err(ExecError::WorkerPanic(msg)) => {
                                    Err(EvalError::WorkerPanicked(msg))
                                }
                            };
                        }
                        // The typed reason joins the decline taxonomy
                        // (always counted); the nested-loop fallback
                        // below is the behavior.
                        Err(u) => machiavelli_trace::note_decline(u.decline_reason()),
                    }
                }
                // The paper's semantics builds the product of the sources,
                // so each independent source is evaluated exactly once.
                // Sources that mention earlier generator variables (a
                // strict extension) are re-evaluated per binding.
                let mut sources: Vec<Option<MSet>> = Vec::with_capacity(generators.len());
                let mut earlier: Vec<Symbol> = Vec::new();
                for g in generators {
                    if mentions_any(&g.source, &earlier) {
                        sources.push(None);
                    } else {
                        let v = self.eval(env, &g.source)?;
                        sources.push(Some(as_set(&v)?.clone()));
                    }
                    earlier.push(g.var);
                }
                // Results accumulate in a vector and canonicalize once —
                // per-element `MSet::insert` would shift O(n) each time.
                let mut out = Vec::new();
                self.select_loop(env, generators, &sources, pred, result, 0, &mut out)?;
                Ok(Value::Set(MSet::from_iter(out)))
            }
            Binop {
                op: BinOp::Andalso,
                left,
                right,
            } => match self.eval(env, left)? {
                Value::Bool(false) => Ok(Value::Bool(false)),
                Value::Bool(true) => self.eval(env, right),
                other => Err(EvalError::NotAFunction(show_value(&other))),
            },
            Binop {
                op: BinOp::Orelse,
                left,
                right,
            } => match self.eval(env, left)? {
                Value::Bool(true) => Ok(Value::Bool(true)),
                Value::Bool(false) => self.eval(env, right),
                other => Err(EvalError::NotAFunction(show_value(&other))),
            },
            Binop { op, left, right } => {
                let l = self.eval(env, left)?;
                let r = self.eval(env, right)?;
                apply_binop(*op, &l, &r)
            }
            Unop { op, expr } => {
                let v = self.eval(env, expr)?;
                match (op, v) {
                    (UnOp::Neg, Value::Int(n)) => Ok(Value::Int(-n)),
                    (UnOp::Neg, Value::Real(r)) => Ok(Value::Real(-r)),
                    (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
                    (_, other) => Err(EvalError::NotAFunction(show_value(&other))),
                }
            }
            OpVal(op) => Ok(Value::Op(*op)),
            Rec { name, body } => {
                let ExprKind::Lambda {
                    params,
                    body: lbody,
                } = &body.kind
                else {
                    return Err(EvalError::NotAFunction("rec body".into()));
                };
                Ok(Value::Closure(Rc::new(Closure {
                    params: params.clone(),
                    body: (**lbody).clone(),
                    env: env.clone(),
                    rec_name: Some(*name),
                })))
            }
            Raise(msg) => Err(ValueError::Raised(msg.clone()).into()),
            MakeDynamic(inner) => {
                let v = self.eval(env, inner)?;
                Ok(Value::Dynamic(DynValue::new(v, None)))
            }
            Coerce { expr, ty } => {
                let v = self.eval(env, expr)?;
                let Value::Dynamic(d) = &v else {
                    return Err(EvalError::NotAFunction(show_value(&v)));
                };
                let target = lower_closed(ty).map_err(|err| {
                    EvalError::Value(ValueError::CoercionFailed {
                        value: show_value(&v),
                        ty: err.to_string(),
                    })
                })?;
                if conforms(&d.value, &target) {
                    Ok((*d.value).clone())
                } else {
                    Err(ValueError::CoercionFailed {
                        value: show_value(&d.value),
                        ty: machiavelli_types::show_type(&target),
                    }
                    .into())
                }
            }
        }
    }

    /// The shared bulk path for `hom`/`hom*` with the union operator:
    /// apply `f` over `items` (already in right-fold order, excluding
    /// whatever produced `seed`), then merge everything into `seed` with
    /// one `MSet::extend` instead of per-step merges. Error points match
    /// the generic fold exactly: each application result is set-checked
    /// as it arrives, and the seed is set-checked once, right after the
    /// first application (where the generic fold's first union would
    /// inspect it).
    fn union_fold<'a>(
        &mut self,
        fv: &Value,
        seed: &Value,
        items: impl Iterator<Item = &'a Value>,
    ) -> Result<Value, EvalError> {
        let mut parts: Vec<Value> = Vec::new();
        let mut seed_checked = false;
        for x in items {
            let fx = self.apply(fv, vec![x.clone()])?;
            let fx = as_set(&fx)?;
            if !seed_checked {
                as_set(seed)?;
                seed_checked = true;
            }
            parts.extend(fx.iter().cloned());
        }
        let mut acc = as_set(seed)?.clone();
        acc.extend(parts);
        Ok(Value::Set(acc))
    }

    /// Nested-loop evaluation of `select` over pre-evaluated independent
    /// sources (`Some`) and dependent sources re-evaluated per binding
    /// (`None`).
    #[allow(clippy::too_many_arguments)]
    fn select_loop(
        &mut self,
        env: &Env,
        generators: &[machiavelli_syntax::ast::Generator],
        sources: &[Option<MSet>],
        pred: &Expr,
        result: &Expr,
        idx: usize,
        out: &mut Vec<Value>,
    ) -> Result<(), EvalError> {
        if idx == generators.len() {
            if let Value::Bool(true) = self.eval(env, pred)? {
                out.push(self.eval(env, result)?);
            }
            return Ok(());
        }
        let g = &generators[idx];
        let dependent;
        let items: &MSet = match &sources[idx] {
            Some(pre) => pre,
            None => {
                let v = self.eval(env, &g.source)?;
                dependent = as_set(&v)?.clone();
                &dependent
            }
        };
        for item in items.iter() {
            let inner = env.bind(g.var, item.clone());
            self.select_loop(&inner, generators, sources, pred, result, idx + 1, out)?;
        }
        Ok(())
    }

    /// Apply a function value. Tuple-currying mismatch is bridged in both
    /// directions (a 2-parameter closure applied to one pair value, and
    /// vice versa) so first-class operators and closures compose.
    fn apply(&mut self, f: &Value, mut args: Vec<Value>) -> Result<Value, EvalError> {
        self.enter()?;
        let out = (|| match f {
            Value::Closure(c) => {
                if c.params.len() != args.len() {
                    if c.params.len() > 1 && args.len() == 1 {
                        // Destructure a tuple argument.
                        if let Value::Record(fs) = &args[0] {
                            if fs.len() == c.params.len() {
                                if let Some(items) = fs.tuple_items() {
                                    args = items.into_iter().cloned().collect();
                                }
                            }
                        }
                    } else if c.params.len() == 1 && args.len() > 1 {
                        args = vec![Value::tuple(args)];
                    }
                    if c.params.len() != args.len() {
                        return Err(EvalError::Arity {
                            expected: c.params.len(),
                            got: args.len(),
                        });
                    }
                }
                let mut env = c.env.clone();
                if let Some(name) = c.rec_name {
                    env = env.bind(name, Value::Closure(c.clone()));
                }
                for (p, a) in c.params.iter().zip(args) {
                    env = env.bind(p, a);
                }
                self.eval(&env, &c.body)
            }
            Value::Op(op) => {
                let (l, r) = two_args(args)?;
                apply_binop(*op, &l, &r)
            }
            Value::Builtin(Builtin::Union) => {
                let (l, r) = two_args(args)?;
                set_union(&l, &r)
            }
            Value::Builtin(Builtin::ApplyC) => {
                // §6 coercion application: dynamically just application
                // (the static rule guaranteed the argument carries at
                // least the domain's structure).
                let (f, x) = two_args(args)?;
                self.apply(&f, vec![x])
            }
            Value::Builtin(Builtin::Not) => {
                if args.len() != 1 {
                    return Err(EvalError::Arity {
                        expected: 1,
                        got: args.len(),
                    });
                }
                match &args[0] {
                    Value::Bool(b) => Ok(Value::Bool(!b)),
                    other => Err(EvalError::NotAFunction(show_value(other))),
                }
            }
            other => Err(EvalError::NotAFunction(show_value(other))),
        })();
        self.depth -= 1;
        out
    }
}

/// The planner's callback into the evaluator: pipeline operators
/// evaluate sources, filters, join keys and the result expression
/// through the ordinary `eval`, sharing depth/stack accounting.
impl machiavelli_plan::EvalHook for Cx {
    type Error = EvalError;
    fn eval(&mut self, env: &Env, expr: &Expr) -> Result<Value, EvalError> {
        Cx::eval(self, env, expr)
    }
}

/// The associative-commutative operators the parallel `hom` lane knows,
/// paired with their identity (`z` must equal it: `par_hom` seeds every
/// chunk with `z`, so a non-identity seed would be folded in once per
/// chunk).
enum ProperOp {
    /// `+` over int, z = 0.
    Sum,
    /// `*` over int, z = 1.
    Product,
    /// `andalso`, z = true.
    All,
    /// `orelse`, z = false.
    Any,
}

/// Attempt the parallel lane for a *proper* `hom` application. `Some`
/// is the finished fold; `None` means "not taken" (improper shape, lane
/// disabled or single-threaded, sub-threshold input, extraction or
/// plain-evaluation failure) and the caller must run the sequential
/// fold — which is exact, because `f`'s body is planner-safe (pure,
/// total), so nothing the parallel attempt evaluated can have been
/// observable.
///
/// Eligible shapes are the prelude's `count`/`sum`-style folds: `op` a
/// known associative-commutative [`BinOp`] with `z` its identity, and
/// `f` a one-parameter closure whose body `machiavelli_plan::analysis`
/// classifies effect-free (the planner-safe class) — captured bindings
/// are extracted to plain data alongside the set, so `member`-style
/// closures over plain values parallelize too.
fn try_par_hom(fv: &Value, opv: &Value, zv: &Value, items: &MSet) -> Option<Value> {
    use machiavelli_plan::{par_evaluable, plain_eval, PlainBindings};
    use machiavelli_value::plain::{to_plain, PlainValue};
    use machiavelli_value::tuning;

    let Value::Op(op) = opv else { return None };
    let proper = match (op, zv) {
        (BinOp::Add, Value::Int(0)) => ProperOp::Sum,
        (BinOp::Mul, Value::Int(1)) => ProperOp::Product,
        (BinOp::Andalso, Value::Bool(true)) => ProperOp::All,
        (BinOp::Orelse, Value::Bool(false)) => ProperOp::Any,
        _ => return None,
    };
    let Value::Closure(c) = fv else { return None };
    let &[param] = c.params.as_slice() else {
        return None;
    };
    if !machiavelli_plan::is_safe_expr(&c.body) {
        return None;
    }
    if !tuning::parallel_enabled()
        || tuning::par_threads() < 2
        || items.len() < tuning::par_hom_min_items()
    {
        return None;
    }
    // A tripped guard must surface through the sequential fold's
    // cooperative tick — declining here keeps the parallel lane from
    // computing a result the query is no longer allowed to return.
    if machiavelli_value::governor::check_current().is_some() {
        return None;
    }
    let mut vars = Vec::new();
    machiavelli_plan::expr_vars(&c.body, &mut vars);
    vars.sort_by_key(|s| s.id());
    vars.dedup_by_key(|s| s.id());
    if !par_evaluable(&c.body, &vars) {
        // Safe but not plain-evaluable (`con`): statically ineligible,
        // uncounted — like a join with `par: None`.
        return None;
    }
    // Shape is proper, statically eligible, and the lane is on: from
    // here every decline is a counted *runtime* fallback. Captured
    // bindings (free variables of the body other than the parameter)
    // must exist and extract to plain data.
    let decline = || {
        tuning::note_par_hom(false);
        machiavelli_trace::note_decline(machiavelli_trace::DeclineReason::ParHomExtract);
        None
    };
    let mut captured: Vec<(machiavelli_value::Symbol, PlainValue)> = Vec::new();
    for v in vars {
        if v.id() == param.id() {
            continue;
        }
        match c.env.with_lookup(v, to_plain) {
            Some(Some(p)) => captured.push((v, p)),
            _ => return decline(),
        }
    }
    let plain_items: Option<Vec<PlainValue>> = items.iter().map(to_plain).collect();
    let Some(plain_items) = plain_items else {
        return decline();
    };
    let threads = tuning::par_threads();
    let body = &c.body;
    let captured = &captured[..];
    // Per-element evaluation in the workers; a declined element poisons
    // its chunk's partial with `None`, which the combiners propagate.
    let apply_f = |kind_int: bool, x: &PlainValue| -> Option<PlainValue> {
        let env = PlainBindings {
            head: Some((param, x)),
            rest: captured,
        };
        let v = plain_eval(body, &env)?;
        match (&v, kind_int) {
            (PlainValue::Int(_), true) | (PlainValue::Bool(_), false) => Some(v),
            _ => None,
        }
    };
    let result = match proper {
        ProperOp::Sum | ProperOp::Product => {
            let is_sum = matches!(proper, ProperOp::Sum);
            let folded = machiavelli_relational::par_hom(
                &plain_items,
                |x| match apply_f(true, x) {
                    Some(PlainValue::Int(n)) => Some(n),
                    _ => None,
                },
                |a, b| match (a, b) {
                    // Wrapping, mirroring `apply_binop`.
                    (Some(a), Some(b)) if is_sum => Some(a.wrapping_add(b)),
                    (Some(a), Some(b)) => Some(a.wrapping_mul(b)),
                    _ => None,
                },
                Some(if is_sum { 0 } else { 1 }),
                threads,
            );
            folded.map(Value::Int)
        }
        ProperOp::All | ProperOp::Any => {
            let is_all = matches!(proper, ProperOp::All);
            let folded = machiavelli_relational::par_hom(
                &plain_items,
                |x| match apply_f(false, x) {
                    Some(PlainValue::Bool(b)) => Some(b),
                    _ => None,
                },
                |a, b| match (a, b) {
                    (Some(a), Some(b)) if is_all => Some(a && b),
                    (Some(a), Some(b)) => Some(a || b),
                    _ => None,
                },
                Some(is_all),
                threads,
            );
            folded.map(Value::Bool)
        }
    };
    match result {
        Some(v) => {
            tuning::note_par_hom(true);
            Some(v)
        }
        None => decline(),
    }
}

/// Extract two arguments, destructuring a single tuple if needed.
fn two_args(args: Vec<Value>) -> Result<(Value, Value), EvalError> {
    match args.len() {
        2 => {
            let mut it = args.into_iter();
            Ok((it.next().unwrap(), it.next().unwrap()))
        }
        1 => match args.into_iter().next().unwrap() {
            Value::Record(fs) if fs.len() == 2 => match fs.tuple_items() {
                Some(items) => Ok((items[0].clone(), items[1].clone())),
                None => Err(EvalError::NotAFunction(show_value(&Value::Record(fs)))),
            },
            other => Err(EvalError::NotAFunction(show_value(&other))),
        },
        n => Err(EvalError::Arity {
            expected: 2,
            got: n,
        }),
    }
}

fn as_set(v: &Value) -> Result<&MSet, EvalError> {
    match v {
        Value::Set(s) => Ok(s),
        other => Err(ValueError::NotASet(show_value(other)).into()),
    }
}

fn set_union(l: &Value, r: &Value) -> Result<Value, EvalError> {
    match (l, r) {
        (Value::Set(a), Value::Set(b)) => Ok(Value::Set(a.union(b))),
        (Value::Set(_), other) | (other, _) => Err(ValueError::NotASet(show_value(other)).into()),
    }
}

/// Apply an infix operator to evaluated operands.
pub fn apply_binop(op: BinOp, l: &Value, r: &Value) -> Result<Value, EvalError> {
    use BinOp::*;
    let num_err = || {
        EvalError::NotAFunction(format!(
            "{} {} {}",
            show_value(l),
            op.symbol(),
            show_value(r)
        ))
    };
    Ok(match (op, l, r) {
        (Add, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_add(*b)),
        (Sub, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_sub(*b)),
        (Mul, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_mul(*b)),
        (Div, Value::Int(a), Value::Int(b)) => {
            if *b == 0 {
                return Err(ValueError::Raised("Div".into()).into());
            }
            Value::Int(a.wrapping_div(*b))
        }
        (Mod, Value::Int(a), Value::Int(b)) => {
            if *b == 0 {
                return Err(ValueError::Raised("Mod".into()).into());
            }
            Value::Int(a.wrapping_rem(*b))
        }
        (Add, Value::Real(a), Value::Real(b)) => Value::Real(a + b),
        (Sub, Value::Real(a), Value::Real(b)) => Value::Real(a - b),
        (Mul, Value::Real(a), Value::Real(b)) => Value::Real(a * b),
        (RealDiv, Value::Real(a), Value::Real(b)) => Value::Real(a / b),
        (Concat, Value::Str(a), Value::Str(b)) => Value::str(format!("{a}{b}")),
        (Eq, a, b) => Value::Bool(a == b),
        (Ne, a, b) => Value::Bool(a != b),
        (Lt, Value::Int(a), Value::Int(b)) => Value::Bool(a < b),
        (Gt, Value::Int(a), Value::Int(b)) => Value::Bool(a > b),
        (Le, Value::Int(a), Value::Int(b)) => Value::Bool(a <= b),
        (Ge, Value::Int(a), Value::Int(b)) => Value::Bool(a >= b),
        (Lt, Value::Real(a), Value::Real(b)) => Value::Bool(a < b),
        (Gt, Value::Real(a), Value::Real(b)) => Value::Bool(a > b),
        (Le, Value::Real(a), Value::Real(b)) => Value::Bool(a <= b),
        (Ge, Value::Real(a), Value::Real(b)) => Value::Bool(a >= b),
        (Lt, Value::Str(a), Value::Str(b)) => Value::Bool(a < b),
        (Gt, Value::Str(a), Value::Str(b)) => Value::Bool(a > b),
        (Andalso, Value::Bool(a), Value::Bool(b)) => Value::Bool(*a && *b),
        (Orelse, Value::Bool(a), Value::Bool(b)) => Value::Bool(*a || *b),
        _ => return Err(num_err()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use machiavelli_syntax::parse_expr;

    fn run(src: &str) -> Value {
        let e = parse_expr(src).unwrap();
        eval_expr(&builtin_env(), &e).unwrap_or_else(|err| panic!("{src}: {err}"))
    }

    fn run_err(src: &str) -> EvalError {
        let e = parse_expr(src).unwrap();
        eval_expr(&builtin_env(), &e).unwrap_err()
    }

    #[test]
    fn arithmetic() {
        assert_eq!(run("1 + 2 * 3"), Value::Int(7));
        assert_eq!(run("10 div 3"), Value::Int(3));
        assert_eq!(run("10 mod 3"), Value::Int(1));
        assert_eq!(run("-(3)"), Value::Int(-3));
    }

    #[test]
    fn division_by_zero_raises() {
        assert!(matches!(
            run_err("1 div 0"),
            EvalError::Value(ValueError::Raised(_))
        ));
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(run("1 < 2 andalso 3 > 2"), Value::Bool(true));
        assert_eq!(run("1 = 2 orelse 2 = 2"), Value::Bool(true));
        assert_eq!(run("not(true)"), Value::Bool(false));
    }

    #[test]
    fn short_circuit() {
        // The right side would raise if evaluated.
        assert_eq!(run("false andalso (1 div 0 = 0)"), Value::Bool(false));
        assert_eq!(run("true orelse (1 div 0 = 0)"), Value::Bool(true));
    }

    #[test]
    fn records_and_fields() {
        assert_eq!(run("[Name=\"Joe\", Age=21].Age"), Value::Int(21));
        assert_eq!(
            run("modify([Name=\"John\", Age=21], Age, 22)"),
            Value::record([
                ("Name".into(), Value::str("John")),
                ("Age".into(), Value::Int(22))
            ])
        );
    }

    #[test]
    fn modify_is_pure() {
        assert_eq!(
            run("let val r = [Age=21] in (modify(r, Age, 99), r.Age) end"),
            Value::tuple([
                Value::record([("Age".into(), Value::Int(99))]),
                Value::Int(21)
            ])
        );
    }

    #[test]
    fn lambda_and_application() {
        assert_eq!(run("(fn(x) => x + 1)(41)"), Value::Int(42));
        assert_eq!(run("(fn(x,y) => x * y)(6, 7)"), Value::Int(42));
    }

    #[test]
    fn sets_are_mathematical() {
        assert_eq!(run("{1, 2, 2, 1}"), run("{2, 1}"));
        assert_eq!(run("{1} = {1, 1}"), Value::Bool(true));
        assert_eq!(run("union({1,2},{2,3})"), run("{1,2,3}"));
    }

    #[test]
    fn hom_is_right_fold() {
        assert_eq!(run("hom((fn(x) => x), +, 0, {1,2,3,4})"), Value::Int(10));
        // Non-commutative op exposes the fold order: op(f(1), op(f(2), op(f(3), 0)))
        // with op = (fn(a,b) => a - b): 1 - (2 - (3 - 0)) = 2.
        assert_eq!(
            run("hom((fn(x) => x), (fn(a,b) => a - b), 0, {1,2,3})"),
            Value::Int(2)
        );
    }

    #[test]
    fn hom_star() {
        assert_eq!(run("hom*((fn(x) => x), +, {5,6})"), Value::Int(11));
        assert!(matches!(
            run_err("hom*((fn(x) => x), +, {})"),
            EvalError::Value(ValueError::EmptyHomStar)
        ));
    }

    #[test]
    fn hom_with_union_operator_value() {
        // map via hom, as in the paper.
        assert_eq!(
            run("hom((fn(x) => {x + 1}), union, {}, {1, 2, 3})"),
            run("{2, 3, 4}")
        );
    }

    #[test]
    fn select_basic() {
        assert_eq!(
            run("select x + 1 where x <- {1,2,3} with x > 1"),
            run("{3, 4}")
        );
    }

    #[test]
    fn select_multiple_generators() {
        assert_eq!(
            run("select (x, y) where x <- {1,2}, y <- {10} with true"),
            run("{(1,10), (2,10)}")
        );
    }

    #[test]
    fn wealthy_from_intro() {
        let src = r#"
            (fn(S) => select x.Name where x <- S with x.Salary > 100000)(
              {[Name = "Joe", Salary = 22340],
               [Name = "Fred", Salary = 123456],
               [Name = "Helen", Salary = 132000]})
        "#;
        assert_eq!(run(src), run("{\"Fred\", \"Helen\"}"));
    }

    #[test]
    fn case_and_injection() {
        assert_eq!(
            run("case (Consultant of [Telephone=2221234]) of \
                   Employee of y => y.Extension, Consultant of y => y.Telephone"),
            Value::Int(2221234)
        );
        assert_eq!(
            run("case (None of ()) of Value of v => true, other => false"),
            Value::Bool(false)
        );
    }

    #[test]
    fn as_extraction_and_mismatch() {
        assert_eq!(run("(Value of 3) as Value"), Value::Int(3));
        assert!(matches!(
            run_err("(None of ()) as Value"),
            EvalError::Value(ValueError::AsMismatch { .. })
        ));
    }

    #[test]
    fn refs_identity_and_mutation() {
        assert_eq!(run("ref(3) = ref(3)"), Value::Bool(false));
        assert_eq!(
            run("let val r = ref(3) in (r := 4, !r) end"),
            Value::tuple([Value::Unit, Value::Int(4)])
        );
    }

    #[test]
    fn shared_reference_update_paper_example() {
        // The §5 department example: updating through emp1 is visible
        // through emp2.
        let src = r#"
            let val d = ref([Dname="Sales", Building=45]) in
            let val emp1 = [Name="Jones", Department=d] in
            let val emp2 = [Name="Smith", Department=d] in
            let val u = (emp1.Department := modify(!(emp1.Department), Building, 67)) in
            (!(emp2.Department)).Building
            end end end end
        "#;
        assert_eq!(run(src), Value::Int(67));
    }

    #[test]
    fn join_con_project_eval() {
        assert_eq!(
            run(r#"join([Name=[First="Joe"], Age=21], [Name=[Last="Doe"]])"#),
            run(r#"[Name=[First="Joe", Last="Doe"], Age=21]"#)
        );
        assert_eq!(run("con([A=1],[B=2])"), Value::Bool(true));
        assert_eq!(run("con([A=1],[A=2])"), Value::Bool(false));
        assert_eq!(
            run(r#"project([Name="Joe", Age=21, Salary=22340], [Name:string, Salary:int])"#),
            run(r#"[Name="Joe", Salary=22340]"#)
        );
        assert_eq!(run("project(3, int)"), Value::Int(3));
    }

    #[test]
    fn unionc_eval() {
        assert_eq!(
            run("unionc({[Name=\"a\", Advisor=1]}, {[Name=\"b\", Salary=2]})"),
            run("{[Name=\"a\"], [Name=\"b\"]}")
        );
    }

    #[test]
    fn rec_factorial() {
        assert_eq!(
            run("rec(f, (fn(n) => if n = 0 then 1 else n * f(n - 1)))(10)"),
            Value::Int(3628800)
        );
    }

    #[test]
    fn dynamic_roundtrip() {
        assert_eq!(run("dynamic(dynamic(3), int)"), Value::Int(3));
        assert!(matches!(
            run_err("dynamic(dynamic(3), string)"),
            EvalError::Value(ValueError::CoercionFailed { .. })
        ));
        assert_eq!(run("dynamic(3) = dynamic(3)"), Value::Bool(false));
    }

    #[test]
    fn raise_propagates() {
        assert!(matches!(
            run_err("raise \"boom\""),
            EvalError::Value(ValueError::Raised(m)) if m == "boom"
        ));
    }

    #[test]
    fn string_ops() {
        assert_eq!(run("\"foo\" ^ \"bar\""), Value::str("foobar"));
        assert_eq!(run("\"abc\" = \"abc\""), Value::Bool(true));
    }

    #[test]
    fn tuple_bridge_application() {
        // A 2-param closure applied to one tuple value.
        assert_eq!(
            run("let val p = (6, 7) in (fn(x,y) => x * y)(p) end"),
            Value::Int(42)
        );
    }

    #[test]
    fn deep_recursion_overflows_gracefully() {
        let err = run_err("rec(f, (fn(n) => f(n + 1)))(0)");
        assert_eq!(err, EvalError::StackOverflow);
    }

    /// Run `f` with the parallel lane forced on (4 workers, tiny
    /// cutoff), restoring the previous configuration after.
    fn with_forced_parallel<R>(f: impl FnOnce() -> R) -> R {
        use machiavelli_value::tuning;
        let prev_t = tuning::set_par_threads(Some(4));
        let prev_n = tuning::set_par_hom_min_items(Some(8));
        let out = f();
        tuning::set_par_hom_min_items(prev_n);
        tuning::set_par_threads(prev_t);
        out
    }

    #[test]
    fn proper_hom_applications_fold_in_parallel() {
        use machiavelli_value::tuning;
        let big: String = format!(
            "{{{}}}",
            (0..500)
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        with_forced_parallel(|| {
            tuning::reset_par_stats();
            assert_eq!(
                run(&format!("hom((fn(x) => x), +, 0, {big})")),
                Value::Int((0..500).sum::<i64>())
            );
            assert_eq!(
                run(&format!("hom((fn(x) => 1), +, 0, {big})")),
                Value::Int(500)
            );
            assert_eq!(
                run(&format!("hom((fn(x) => x < 1000), andalso, true, {big})")),
                Value::Bool(true)
            );
            assert_eq!(
                run(&format!("hom((fn(x) => x = 250), orelse, false, {big})")),
                Value::Bool(true)
            );
            // A captured binding extracts alongside the set (the
            // prelude's `member` shape).
            assert_eq!(
                run(&format!(
                    "let val base = 1000 in hom((fn(x) => x + base), +, 0, {big}) end"
                )),
                Value::Int((0..500).sum::<i64>() + 500 * 1000)
            );
            let stats = tuning::par_stats();
            assert_eq!(stats.par_homs, 5, "{stats:?}");
            assert_eq!(stats.par_hom_fallbacks, 0, "{stats:?}");
        });
    }

    #[test]
    fn improper_hom_shapes_stay_sequential() {
        use machiavelli_value::tuning;
        let big: String = format!(
            "{{{}}}",
            (0..100)
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        with_forced_parallel(|| {
            tuning::reset_par_stats();
            // Non-identity seed: chunking would fold `5` in once per
            // chunk, so the shape is not proper — sequential, uncounted.
            assert_eq!(
                run(&format!("hom((fn(x) => x), +, 5, {big})")),
                Value::Int((0..100).sum::<i64>() + 5)
            );
            // Effectful f (allocates identities): not classified proper.
            assert_eq!(
                run(&format!(
                    "hom((fn(x) => 1), +, 0, \
                              hom((fn(x) => {{ref(x)}}), union, {{}}, {big}))"
                )),
                Value::Int(100)
            );
            assert_eq!(tuning::par_stats().par_homs, 0);
        });
    }

    #[test]
    fn unextractable_hom_data_falls_back_with_counter() {
        use machiavelli_value::tuning;
        // A set of refs is proper in shape (count via +/0, safe body)
        // but the elements are identity-bearing: extraction declines
        // and the sequential fold answers.
        let refs: String = format!(
            "{{{}}}",
            (0..50)
                .map(|i| format!("ref({i})"))
                .collect::<Vec<_>>()
                .join(", ")
        );
        with_forced_parallel(|| {
            tuning::reset_par_stats();
            assert_eq!(
                run(&format!("hom((fn(x) => 1), +, 0, {refs})")),
                Value::Int(50)
            );
            let stats = tuning::par_stats();
            assert_eq!(
                (stats.par_homs, stats.par_hom_fallbacks),
                (0, 1),
                "{stats:?}"
            );
        });
    }
}
