//! **Machiavelli** — a polymorphic database programming language with
//! static type inference.
//!
//! This crate is the top of a from-scratch Rust reproduction of
//! *Database Programming in Machiavelli* (Ohori, Buneman &
//! Breazu-Tannen, SIGMOD 1989): an ML-style language whose type system
//! makes records, variants, **sets**, and references first-class
//! database values, with complete type inference discovering record
//! polymorphism, and generalized `join` / `project` / `con` / `unionc`
//! governed by the information ordering on description types.
//!
//! # Quickstart
//!
//! ```
//! use machiavelli::Session;
//!
//! let mut session = Session::new();
//! let out = session.eval_one(r#"
//!     fun Wealthy(S) = select x.Name
//!                      where x <- S
//!                      with x.Salary > 100000;
//! "#).unwrap();
//! assert_eq!(out.show(), r#"val Wealthy = fn : {[("a) Name:"b,Salary:int]} -> {"b}"#);
//!
//! let out = session.eval_one(r#"
//!     Wealthy({[Name = "Joe",   Salary = 22340],
//!              [Name = "Fred",  Salary = 123456],
//!              [Name = "Helen", Salary = 132000]});
//! "#).unwrap();
//! assert_eq!(out.show(), r#"val it = {"Fred", "Helen"} : {string}"#);
//! ```
//!
//! The pipeline crates are re-exported: [`syntax`], [`types`], [`value`],
//! [`plan`], [`eval`].

pub mod error;
pub mod persist;
pub mod repl;
pub mod session;

pub use error::SessionError;
pub use persist::{
    decode_value, decode_with_registry, encode_value, encode_with_registry, write_atomic,
    PersistError, RefRegistry,
};
pub use repl::run_repl;
pub use session::{is_read_only_source, Outcome, Session, SessionStats};

pub use machiavelli_eval as eval;
pub use machiavelli_plan as plan;
pub use machiavelli_store as store;
pub use machiavelli_syntax as syntax;
pub use machiavelli_trace as trace;
pub use machiavelli_types as types;
pub use machiavelli_value as value;
