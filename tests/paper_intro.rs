//! E0 — the introduction's `Wealthy` example: inferred type, evaluation,
//! and the record-polymorphic applications the paper promises.

use machiavelli::Session;

const WEALTHY: &str = "fun Wealthy(S) = select x.Name where x <- S with x.Salary > 100000;";

#[test]
fn wealthy_inferred_type_matches_paper() {
    let mut s = Session::new();
    let out = s.eval_one(WEALTHY).unwrap();
    // Paper: Wealthy: {[("a) Name:"b,Salary:int]} -> {"b}
    assert_eq!(
        out.show(),
        "val Wealthy = fn : {[(\"a) Name:\"b,Salary:int]} -> {\"b}"
    );
}

#[test]
fn wealthy_on_the_papers_relation() {
    let mut s = Session::new();
    s.run(WEALTHY).unwrap();
    let out = s
        .eval_one(
            r#"Wealthy({[Name = "Joe", Salary = 22340],
                        [Name = "Fred", Salary = 123456],
                        [Name = "Helen", Salary = 132000]});"#,
        )
        .unwrap();
    assert_eq!(out.show(), r#"val it = {"Fred", "Helen"} : {string}"#);
}

#[test]
fn wealthy_applies_to_wider_records() {
    // "Machiavelli will allow Wealthy to be applied, for example, to
    // relations of type {[Name: string, Age: int, Salary: int]}".
    let mut s = Session::new();
    s.run(WEALTHY).unwrap();
    let out = s
        .eval_one(
            r#"Wealthy({[Name = "A", Age = 30, Salary = 200000],
                        [Name = "B", Age = 40, Salary = 50]});"#,
        )
        .unwrap();
    assert_eq!(out.show(), r#"val it = {"A"} : {string}"#);
}

#[test]
fn wealthy_applies_to_nested_name_records() {
    // "... and also to relations of type
    //  {[Name: [First: string, Last: string], Weight: int, Salary: int]}".
    let mut s = Session::new();
    s.run(WEALTHY).unwrap();
    let out = s
        .eval_one(
            r#"Wealthy({[Name = [First = "Joe", Last = "Doe"], Weight = 70, Salary = 150000]});"#,
        )
        .unwrap();
    assert_eq!(
        out.show(),
        r#"val it = {[First="Joe", Last="Doe"]} : {[First:string,Last:string]}"#
    );
}

#[test]
fn wealthy_rejects_relations_without_salary() {
    let mut s = Session::new();
    s.run(WEALTHY).unwrap();
    let err = s.run(r#"Wealthy({[Name = "A"]});"#).unwrap_err();
    assert!(err.to_string().contains("Salary"), "{err}");
}

#[test]
fn wealthy_rejects_non_int_salary() {
    let mut s = Session::new();
    s.run(WEALTHY).unwrap();
    assert!(s
        .run(r#"Wealthy({[Name = "A", Salary = "big"]});"#)
        .is_err());
}

#[test]
fn select_sugar_equals_map_filter_composition() {
    // §2: select is sugar over map/filter/prod.
    let mut s = Session::new();
    let via_select = s
        .eval_one("select x.Name where x <- {[Name=1, Salary=200000]} with x.Salary > 100000;")
        .unwrap();
    let via_prelude = s
        .eval_one(
            "map((fn(x) => x.Name),
                 filter((fn(x) => x.Salary > 100000), {[Name=1, Salary=200000]}));",
        )
        .unwrap();
    assert_eq!(via_select.value, via_prelude.value);
}
