//! The type representation.
//!
//! Machiavelli types (§3.1 of the paper) are regular trees built from base
//! types and the constructors `→`, record, variant, set, `ref` and the
//! recursion binder `rec v. τ`. Inference additionally uses *kinded*
//! unification variables ([`TvState`]) in the style of Ohori–Buneman
//! \[OB88\]: a variable of record kind `[('a) l:τ, …]` stands for any record
//! type containing at least the listed fields.

use crate::kind::Kind;
use machiavelli_syntax::symbol::Symbol;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Field labels — interned symbols shared with the syntax crate, so the
/// canonical (string-sorted) label order costs integer compares on the
/// equal path.
pub type Label = Symbol;

/// A shared, immutable type node.
pub type Ty = Rc<Type>;

/// Type constructors.
#[derive(Debug)]
pub enum Type {
    Unit,
    Int,
    Bool,
    Str,
    Real,
    /// The `dynamic` type of §5: a value packaged with its own description
    /// type, compared by identity.
    Dynamic,
    /// `τ → τ`. Not a description type.
    Arrow(Ty, Ty),
    /// `[l:τ, …]` with labels sorted (BTreeMap ordering is canonical).
    Record(BTreeMap<Label, Ty>),
    /// `<l:τ, …>`.
    Variant(BTreeMap<Label, Ty>),
    /// `{τ}` — sets over description types.
    Set(Ty),
    /// `ref(τ)` — mutable references with object identity.
    Ref(Ty),
    /// `rec v. τ` — an equi-recursive binder; `v` is the binder id.
    Rec(u32, Ty),
    /// A bound occurrence of an enclosing `Rec` binder.
    RecVar(u32),
    /// A unification variable.
    Var(TvRef),
}

/// State of a unification variable: either unbound (with a kind and a
/// binding level for generalization) or a link to another type.
#[derive(Debug)]
pub enum TvState {
    Unbound {
        /// Stable identity used for display and scheme bookkeeping.
        id: u64,
        kind: Kind,
        /// Rémy-style binding level; variables with a level deeper than the
        /// enclosing `let` are generalizable.
        level: u32,
    },
    Link(Ty),
}

/// A shared, mutable unification-variable cell. Equality and hashing are
/// by cell identity.
#[derive(Debug, Clone)]
pub struct TvRef(pub Rc<RefCell<TvState>>);

impl PartialEq for TvRef {
    fn eq(&self, other: &Self) -> bool {
        Rc::ptr_eq(&self.0, &other.0)
    }
}
impl Eq for TvRef {}

impl std::hash::Hash for TvRef {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (Rc::as_ptr(&self.0) as usize).hash(state);
    }
}

impl TvRef {
    /// The stable id of the variable (following links to an unbound cell
    /// returns that cell's id; calling this on a linked cell is a logic
    /// error guarded by a panic in debug builds).
    pub fn id(&self) -> u64 {
        match &*self.0.borrow() {
            TvState::Unbound { id, .. } => *id,
            TvState::Link(_) => panic!("TvRef::id on a linked variable"),
        }
    }

    /// Current kind of an unbound variable (clones the kind).
    pub fn kind(&self) -> Kind {
        match &*self.0.borrow() {
            TvState::Unbound { kind, .. } => kind.clone(),
            TvState::Link(_) => panic!("TvRef::kind on a linked variable"),
        }
    }

    /// Current level of an unbound variable.
    pub fn level(&self) -> u32 {
        match &*self.0.borrow() {
            TvState::Unbound { level, .. } => *level,
            TvState::Link(_) => panic!("TvRef::level on a linked variable"),
        }
    }

    /// True when this cell is a link.
    pub fn is_link(&self) -> bool {
        matches!(&*self.0.borrow(), TvState::Link(_))
    }

    /// Bind this (unbound) variable to `ty`.
    pub fn link(&self, ty: Ty) {
        *self.0.borrow_mut() = TvState::Link(ty);
    }

    /// Replace the kind of an unbound variable.
    pub fn set_kind(&self, kind: Kind) {
        match &mut *self.0.borrow_mut() {
            TvState::Unbound { kind: k, .. } => *k = kind,
            TvState::Link(_) => panic!("TvRef::set_kind on a linked variable"),
        }
    }

    /// Lower the level of an unbound variable to `level` if it is deeper.
    pub fn min_level(&self, level: u32) {
        if let TvState::Unbound { level: l, .. } = &mut *self.0.borrow_mut() {
            if *l > level {
                *l = level;
            }
        }
    }
}

/// A fresh-variable factory. Levels are supplied by the inference context.
#[derive(Debug, Default)]
pub struct VarGen {
    next: std::cell::Cell<u64>,
}

impl VarGen {
    pub fn new() -> Self {
        Self::default()
    }

    /// A generator whose ids start at `start` — used when mixing fresh
    /// variables with variables minted by another generator (display
    /// names key on ids, so ids must not collide).
    pub fn starting_at(start: u64) -> Self {
        let gen = Self::default();
        gen.next.set(start);
        gen
    }

    /// The next id this generator would hand out.
    pub fn next_id(&self) -> u64 {
        self.next.get()
    }

    /// Allocate a fresh unbound variable with the given kind and level.
    pub fn fresh(&self, kind: Kind, level: u32) -> TvRef {
        let id = self.next.get();
        self.next.set(id + 1);
        TvRef(Rc::new(RefCell::new(TvState::Unbound { id, kind, level })))
    }

    /// Allocate a fresh variable wrapped as a type.
    pub fn fresh_ty(&self, kind: Kind, level: u32) -> Ty {
        Rc::new(Type::Var(self.fresh(kind, level)))
    }
}

// --- convenience constructors ------------------------------------------

pub fn t_unit() -> Ty {
    Rc::new(Type::Unit)
}
pub fn t_int() -> Ty {
    Rc::new(Type::Int)
}
pub fn t_bool() -> Ty {
    Rc::new(Type::Bool)
}
pub fn t_str() -> Ty {
    Rc::new(Type::Str)
}
pub fn t_real() -> Ty {
    Rc::new(Type::Real)
}
pub fn t_dynamic() -> Ty {
    Rc::new(Type::Dynamic)
}
pub fn t_arrow(a: Ty, b: Ty) -> Ty {
    Rc::new(Type::Arrow(a, b))
}
pub fn t_record(fields: impl IntoIterator<Item = (Label, Ty)>) -> Ty {
    Rc::new(Type::Record(fields.into_iter().collect()))
}
pub fn t_variant(fields: impl IntoIterator<Item = (Label, Ty)>) -> Ty {
    Rc::new(Type::Variant(fields.into_iter().collect()))
}
pub fn t_set(elem: Ty) -> Ty {
    Rc::new(Type::Set(elem))
}
pub fn t_ref(inner: Ty) -> Ty {
    Rc::new(Type::Ref(inner))
}
/// An n-ary tuple is a record labelled `#1 … #n`.
pub fn t_tuple(items: impl IntoIterator<Item = Ty>) -> Ty {
    t_record(
        items
            .into_iter()
            .enumerate()
            .map(|(i, t)| (machiavelli_syntax::symbol::tuple_label(i + 1), t)),
    )
}

/// Resolve one level of variable links, with path compression: returns
/// the representative type node for `t`.
pub fn resolve(t: &Ty) -> Ty {
    if let Type::Var(v) = &**t {
        let linked = match &*v.0.borrow() {
            TvState::Link(inner) => Some(inner.clone()),
            TvState::Unbound { .. } => None,
        };
        if let Some(inner) = linked {
            let rep = resolve(&inner);
            // Path compression: point directly at the representative.
            if !Rc::ptr_eq(&rep, &inner) {
                v.link(rep.clone());
            }
            return rep;
        }
    }
    t.clone()
}

/// Collect the free unbound variables of `t` (in depth-first order,
/// deduplicated), including variables inside the kinds of kinded variables.
pub fn free_vars(t: &Ty, out: &mut Vec<TvRef>) {
    let mut seen_recs: Vec<u32> = Vec::new();
    free_vars_inner(t, out, &mut seen_recs);
}

fn free_vars_inner(t: &Ty, out: &mut Vec<TvRef>, recs: &mut Vec<u32>) {
    let t = resolve(t);
    match &*t {
        Type::Unit | Type::Int | Type::Bool | Type::Str | Type::Real | Type::Dynamic => {}
        Type::Arrow(a, b) => {
            free_vars_inner(a, out, recs);
            free_vars_inner(b, out, recs);
        }
        Type::Record(fs) | Type::Variant(fs) => {
            for ty in fs.values() {
                free_vars_inner(ty, out, recs);
            }
        }
        Type::Set(e) | Type::Ref(e) => free_vars_inner(e, out, recs),
        Type::Rec(v, body) => {
            recs.push(*v);
            free_vars_inner(body, out, recs);
            recs.pop();
        }
        Type::RecVar(_) => {}
        Type::Var(v) => {
            if !out.contains(v) {
                out.push(v.clone());
                // Kinds contain types; their variables are free too.
                let kind = v.kind();
                for ty in kind.field_types() {
                    free_vars_inner(&ty, out, recs);
                }
            }
        }
    }
}

/// True when `t` contains no unbound unification variables.
pub fn is_ground(t: &Ty) -> bool {
    let mut vars = Vec::new();
    free_vars(t, &mut vars);
    vars.is_empty()
}

/// Substitute `RecVar(v)` by `replacement` throughout `t` (used to unfold
/// one layer of a `rec` binder). Inner binders shadowing `v` stop the
/// substitution.
pub fn subst_recvar(t: &Ty, v: u32, replacement: &Ty) -> Ty {
    match &**t {
        Type::RecVar(w) if *w == v => replacement.clone(),
        Type::RecVar(_)
        | Type::Unit
        | Type::Int
        | Type::Bool
        | Type::Str
        | Type::Real
        | Type::Dynamic
        | Type::Var(_) => t.clone(),
        Type::Arrow(a, b) => t_arrow(
            subst_recvar(a, v, replacement),
            subst_recvar(b, v, replacement),
        ),
        Type::Record(fs) => Rc::new(Type::Record(
            fs.iter()
                .map(|(l, ty)| (*l, subst_recvar(ty, v, replacement)))
                .collect(),
        )),
        Type::Variant(fs) => Rc::new(Type::Variant(
            fs.iter()
                .map(|(l, ty)| (*l, subst_recvar(ty, v, replacement)))
                .collect(),
        )),
        Type::Set(e) => t_set(subst_recvar(e, v, replacement)),
        Type::Ref(e) => t_ref(subst_recvar(e, v, replacement)),
        Type::Rec(w, _) if *w == v => t.clone(),
        Type::Rec(w, body) => Rc::new(Type::Rec(*w, subst_recvar(body, v, replacement))),
    }
}

/// Unfold a `rec v. τ` one step: `τ[v := rec v. τ]`.
pub fn unfold_rec(t: &Ty) -> Ty {
    match &**t {
        Type::Rec(v, body) => subst_recvar(body, *v, t),
        _ => t.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_follows_links() {
        let gen = VarGen::new();
        let v = gen.fresh(Kind::Any, 0);
        let tv: Ty = Rc::new(Type::Var(v.clone()));
        assert!(matches!(&*resolve(&tv), Type::Var(_)));
        v.link(t_int());
        assert!(matches!(&*resolve(&tv), Type::Int));
    }

    #[test]
    fn resolve_path_compresses() {
        let gen = VarGen::new();
        let a = gen.fresh(Kind::Any, 0);
        let b = gen.fresh(Kind::Any, 0);
        let ta: Ty = Rc::new(Type::Var(a.clone()));
        let tb: Ty = Rc::new(Type::Var(b.clone()));
        a.link(tb);
        b.link(t_bool());
        assert!(matches!(&*resolve(&ta), Type::Bool));
        // After compression, `a` links directly to bool.
        match &*a.0.borrow() {
            TvState::Link(t) => assert!(matches!(&**t, Type::Bool)),
            _ => panic!("expected link"),
        };
    }

    #[test]
    fn free_vars_dedup_and_kind_vars() {
        let gen = VarGen::new();
        let inner = gen.fresh_ty(Kind::Any, 0);
        let kinded = gen.fresh(
            Kind::Record {
                fields: [("Name".into(), inner.clone())].into_iter().collect(),
                desc: false,
            },
            0,
        );
        let t = t_arrow(
            Rc::new(Type::Var(kinded.clone())),
            Rc::new(Type::Var(kinded)),
        );
        let mut vars = Vec::new();
        free_vars(&t, &mut vars);
        assert_eq!(vars.len(), 2, "kinded var + its field var");
    }

    #[test]
    fn unfold_recursive_type() {
        // rec v. <Nil: unit, Cons: int * v>
        let body = t_variant([
            ("Nil".into(), t_unit()),
            ("Cons".into(), t_tuple([t_int(), Rc::new(Type::RecVar(0))])),
        ]);
        let rec: Ty = Rc::new(Type::Rec(0, body));
        let unfolded = unfold_rec(&rec);
        match &*unfolded {
            Type::Variant(fs) => match &**fs.get("Cons").unwrap() {
                Type::Record(pair) => {
                    assert!(matches!(&**pair.get("#2").unwrap(), Type::Rec(0, _)));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ground_check() {
        let gen = VarGen::new();
        assert!(is_ground(&t_record([("A".into(), t_int())])));
        assert!(!is_ground(&t_set(gen.fresh_ty(Kind::Desc, 0))));
    }

    #[test]
    fn tuple_labels() {
        let t = t_tuple([t_int(), t_bool()]);
        match &*t {
            Type::Record(fs) => {
                assert_eq!(fs.keys().cloned().collect::<Vec<_>>(), vec!["#1", "#2"]);
            }
            other => panic!("{other:?}"),
        }
    }
}
