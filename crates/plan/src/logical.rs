//! Logical planning: generator-dependency analysis and predicate
//! decomposition, producing one [`Step`] per generator.
//!
//! The plan borrows the comprehension's AST — compiling performs no
//! expression clones, so re-planning a `select` on every evaluation (the
//! evaluator has no per-expression cache) costs one linear analysis pass.

use crate::analysis::{is_safe_expr, mentions_any, split_conjuncts, Conjunct};
use machiavelli_syntax::ast::{BinOp, Expr, ExprKind, Generator};
use machiavelli_syntax::pretty::expr_to_string;
use machiavelli_syntax::symbol::Symbol;
use std::fmt;

/// Why a comprehension was left to the nested-loop fallback.
///
/// Borrows the offending expression and renders lazily: the evaluator
/// calls `compile` on every `select` evaluation and discards the reason
/// on the (hot) fallback path — only `plan_of`/`:plan` ever format it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Unplannable<'a> {
    NoGenerators,
    DuplicateBinder(Symbol),
    UnsafeDependentSource { var: Symbol, source: &'a Expr },
    UnsafeConjunct(&'a Expr),
}

impl Unplannable<'_> {
    /// The typed code this planner fallback reports into the engine-wide
    /// decline taxonomy (the evaluator emits it via
    /// `machiavelli_trace::note_decline` when it takes the `select_loop`
    /// fallback).
    pub fn decline_reason(&self) -> machiavelli_trace::DeclineReason {
        match self {
            Unplannable::NoGenerators => machiavelli_trace::DeclineReason::PlannerNoGenerators,
            Unplannable::DuplicateBinder(_) => {
                machiavelli_trace::DeclineReason::PlannerDuplicateBinder
            }
            Unplannable::UnsafeDependentSource { .. } => {
                machiavelli_trace::DeclineReason::PlannerUnsafeDependentSource
            }
            Unplannable::UnsafeConjunct(_) => {
                machiavelli_trace::DeclineReason::PlannerUnsafeConjunct
            }
        }
    }
}

impl fmt::Display for Unplannable<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Unplannable::NoGenerators => write!(f, "comprehension has no generators"),
            Unplannable::DuplicateBinder(b) => {
                write!(f, "generator binder `{b}` shadows an earlier generator")
            }
            Unplannable::UnsafeDependentSource { var, source } => write!(
                f,
                "dependent source of `{var}` is not planner-safe: {}",
                expr_to_string(source)
            ),
            Unplannable::UnsafeConjunct(e) => write!(
                f,
                "predicate conjunct is not planner-safe: {}",
                expr_to_string(e)
            ),
        }
    }
}

/// An equi-join conjunct `probe = build` usable for hash build/probe:
/// `probe` mentions only earlier generator binders (at least one), and
/// `build` mentions only the binder of the step it is attached to.
#[derive(Debug, Clone, Copy)]
pub struct EquiKey<'a> {
    pub probe: &'a Expr,
    pub build: &'a Expr,
}

/// The plan for one generator, in original generator order.
#[derive(Debug)]
pub struct Step<'a> {
    /// The generator's binder.
    pub var: Symbol,
    /// The generator's source expression.
    pub source: &'a Expr,
    /// True when the source mentions an earlier binder and must be
    /// re-evaluated per outer binding (a strict extension of the paper's
    /// product semantics, matching `select_loop`).
    pub dependent: bool,
    /// Pushed-down conjuncts mentioning only this step's binder.
    pub filters: Vec<Conjunct<'a>>,
    /// Equi-join conjuncts linking this step to earlier binders
    /// (non-empty ⇒ the physical plan uses a hash build/probe join;
    /// only ever non-empty on independent, non-first steps).
    pub keys: Vec<EquiKey<'a>>,
    /// Conjuncts that need this step's binder *and* earlier ones but do
    /// not fit the equi-join pattern: evaluated once this binder is
    /// bound (the earliest point the nested loop could decide them).
    pub residual: Vec<Conjunct<'a>>,
}

/// A compiled comprehension: steps in generator order plus the result.
#[derive(Debug)]
pub struct LogicalPlan<'a> {
    pub steps: Vec<Step<'a>>,
    pub result: &'a Expr,
}

/// Compile a comprehension into a [`LogicalPlan`], or decline with the
/// reason (the caller falls back to the nested-loop semantics; see the
/// crate docs for the exact contract).
pub fn compile<'a>(
    generators: &'a [Generator],
    pred: &'a Expr,
    result: &'a Expr,
) -> Result<LogicalPlan<'a>, Unplannable<'a>> {
    if generators.is_empty() {
        return Err(Unplannable::NoGenerators);
    }
    let binders: Vec<Symbol> = generators.iter().map(|g| g.var).collect();
    for (i, b) in binders.iter().enumerate() {
        if binders[..i].contains(b) {
            return Err(Unplannable::DuplicateBinder(*b));
        }
    }

    let mut steps: Vec<Step<'a>> = Vec::with_capacity(generators.len());
    for (i, g) in generators.iter().enumerate() {
        let dependent = mentions_any(&g.source, &binders[..i]);
        if dependent && !is_safe_expr(&g.source) {
            return Err(Unplannable::UnsafeDependentSource {
                var: g.var,
                source: &g.source,
            });
        }
        steps.push(Step {
            var: g.var,
            source: &g.source,
            dependent,
            filters: Vec::new(),
            keys: Vec::new(),
            residual: Vec::new(),
        });
    }

    for c in split_conjuncts(pred) {
        if !is_safe_expr(c.expr) {
            return Err(Unplannable::UnsafeConjunct(c.expr));
        }
        // The level of a conjunct is the last generator it mentions: the
        // earliest point the nested loop could have decided it.
        let level = (0..binders.len())
            .rev()
            .find(|&i| mentions_any(c.expr, &binders[i..i + 1]))
            .unwrap_or(0);
        let step_independent = !steps[level].dependent;
        let step = &mut steps[level];
        if !mentions_any(c.expr, &binders[..level]) {
            // Mentions at most this step's binder: a pushdown filter.
            step.filters.push(c);
        } else if let Some(key) = equi_key(c.expr, &binders, level) {
            if step_independent {
                step.keys.push(key);
            } else {
                // A dependent source is re-evaluated per outer binding —
                // there is no single build side to hash.
                step.residual.push(c);
            }
        } else {
            step.residual.push(c);
        }
    }

    Ok(LogicalPlan { steps, result })
}

/// Recognize `a = b` where one side mentions only earlier binders (at
/// least one) and the other only the level's binder — the hash-joinable
/// shape. Both orientations are accepted.
fn equi_key<'a>(e: &'a Expr, binders: &[Symbol], level: usize) -> Option<EquiKey<'a>> {
    let ExprKind::Binop {
        op: BinOp::Eq,
        left,
        right,
    } = &e.kind
    else {
        return None;
    };
    let this = &binders[level..level + 1];
    let earlier = &binders[..level];
    let later = &binders[level + 1..];
    let side = |e: &'a Expr| -> Option<bool> {
        // `true` = pure build side (this binder only), `false` = pure
        // probe side (earlier binders only, at least one).
        if mentions_any(e, later) {
            return None;
        }
        match (mentions_any(e, this), mentions_any(e, earlier)) {
            (true, false) => Some(true),
            (false, true) => Some(false),
            _ => None,
        }
    };
    match (side(left), side(right)) {
        (Some(false), Some(true)) => Some(EquiKey {
            probe: left,
            build: right,
        }),
        (Some(true), Some(false)) => Some(EquiKey {
            probe: right,
            build: left,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machiavelli_syntax::parse_expr;

    fn parts(src: &str) -> (Vec<Generator>, Expr, Expr) {
        let e = parse_expr(src).unwrap();
        let ExprKind::Select {
            result,
            generators,
            pred,
        } = e.kind
        else {
            panic!("not a select: {src}")
        };
        (generators, *pred, *result)
    }

    #[test]
    fn two_generator_equi_join_plans_hash() {
        let (g, p, r) =
            parts("select (x.A, y.B) where x <- r, y <- s with x.K = y.K andalso y.B > 1");
        let plan = compile(&g, &p, &r).unwrap();
        assert_eq!(plan.steps.len(), 2);
        assert!(!plan.steps[1].dependent);
        assert_eq!(plan.steps[1].keys.len(), 1);
        assert_eq!(plan.steps[1].filters.len(), 1, "y.B > 1 pushes down");
        assert!(plan.steps[0].filters.is_empty());
        assert!(plan.steps.iter().all(|s| s.residual.is_empty()));
    }

    #[test]
    fn swapped_orientation_detected() {
        let (g, p, r) = parts("select x where x <- r, y <- s with y.K = x.K");
        let plan = compile(&g, &p, &r).unwrap();
        assert_eq!(plan.steps[1].keys.len(), 1);
        assert_eq!(expr_to_string(plan.steps[1].keys[0].probe), "x.K");
        assert_eq!(expr_to_string(plan.steps[1].keys[0].build), "y.K");
    }

    #[test]
    fn dependent_source_classified() {
        let (g, p, r) = parts("select s where p <- db, s <- p.Suppliers with true");
        let plan = compile(&g, &p, &r).unwrap();
        assert!(!plan.steps[0].dependent);
        assert!(plan.steps[1].dependent);
    }

    #[test]
    fn non_equi_goes_residual() {
        let (g, p, r) = parts("select x where x <- r, y <- s with x.K < y.K");
        let plan = compile(&g, &p, &r).unwrap();
        assert!(plan.steps[1].keys.is_empty());
        assert_eq!(plan.steps[1].residual.len(), 1);
    }

    #[test]
    fn unsafe_pred_declines() {
        let (g, p, r) = parts("select x where x <- r with 1 div x.A = 0");
        let err = compile(&g, &p, &r).unwrap_err();
        assert!(err.to_string().contains("not planner-safe"), "{err}");
    }

    #[test]
    fn unsafe_dependent_source_declines() {
        let (g, p, r) = parts("select y where x <- r, y <- f(x) with true");
        assert!(compile(&g, &p, &r).is_err());
        // …but an unsafe *independent* source is fine (evaluated once).
        let (g, p, r) = parts("select y where x <- r, y <- f(r) with true");
        assert!(compile(&g, &p, &r).is_ok());
    }

    #[test]
    fn duplicate_binder_declines() {
        let (g, p, r) = parts("select x where x <- r, x <- s with true");
        assert!(compile(&g, &p, &r).is_err());
    }

    #[test]
    fn env_constant_equality_is_a_filter_not_a_join() {
        let (g, p, r) = parts("select y where x <- r, y <- s with y.K = limit");
        let plan = compile(&g, &p, &r).unwrap();
        assert!(plan.steps[1].keys.is_empty());
        assert_eq!(plan.steps[1].filters.len(), 1);
    }
}
