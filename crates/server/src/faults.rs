//! Fault-injection knobs, re-exported at the server boundary.
//!
//! The fail points live in `machiavelli_value::faults` (the one crate
//! every layer already depends on), but the *server* is the component
//! that turns them on — via [`ServerConfig::faults`] or the
//! `MACHIAVELLI_FAULT_*` environment variables — so the surface is
//! re-exported here as `machiavelli_server::faults` for chaos suites
//! and operators.
//!
//! Knobs (all probabilities in parts-per-million, seeded per thread):
//!
//! | field / env var                          | fail point                          |
//! |------------------------------------------|-------------------------------------|
//! | `eval_panic_ppm` / `…_FAULT_EVAL_PANIC_PPM`   | panic at an evaluator tick     |
//! | `worker_panic_ppm` / `…_FAULT_WORKER_PANIC_PPM` | panic on a parallel worker   |
//! | `spawn_fail_ppm` / `…_FAULT_SPAWN_FAIL_PPM`  | decline a thread spawn          |
//! | `delay_ppm` + `delay_ms` / `…_FAULT_DELAY_PPM`, `…_FAULT_DELAY_MS` | sleep at a tick |
//! | `store_poison_ppm` / `…_FAULT_STORE_POISON_PPM` | panic holding the shared-tier lock |
//! | `seed` / `…_FAULT_SEED`                  | deterministic per-thread streams    |
//!
//! [`ServerConfig::faults`]: crate::ServerConfig
//!
//! Injected panics carry [`INJECTED_PANIC_PREFIX`] in their payload so
//! chaos harnesses can tell injected failures from real bugs.

pub use machiavelli_value::faults::{
    fault_config, faults_active, injected_faults, reset_injected_faults, set_fault_config,
    FaultConfig, InjectedFaults, INJECTED_PANIC_PREFIX,
};
