//! E4 bench — transitive closure: the paper's naive fixpoint vs the
//! semi-naive ablation, on chains (worst-case diameter) and random
//! graphs, plus the interpreted Figure 4 `Closure` for calibration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// Short measurement windows so the full figure suite runs in minutes;
/// rerun individual benches with Criterion CLI flags for precision.
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}
use machiavelli::Session;
use machiavelli_relational::{
    chain_edges, edges_to_relation, gen_edges, naive_closure, seminaive_closure,
};

fn bench_native_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_closure_native");
    group.sample_size(10);
    for n in [32usize, 128, 512] {
        let chain = chain_edges(n);
        group.bench_with_input(BenchmarkId::new("naive/chain", n), &chain, |b, e| {
            b.iter(|| naive_closure(e))
        });
        group.bench_with_input(BenchmarkId::new("seminaive/chain", n), &chain, |b, e| {
            b.iter(|| seminaive_closure(e))
        });
        let random = gen_edges(n, 2 * n, 11);
        group.bench_with_input(BenchmarkId::new("naive/random", n), &random, |b, e| {
            b.iter(|| naive_closure(e))
        });
        group.bench_with_input(BenchmarkId::new("seminaive/random", n), &random, |b, e| {
            b.iter(|| seminaive_closure(e))
        });
    }
    group.finish();
}

fn bench_interpreted_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_closure_interpreted");
    group.sample_size(10);
    for n in [4usize, 8, 16] {
        let mut session = Session::new();
        session
            .bind_external(
                "g",
                edges_to_relation(&chain_edges(n)).into_value(),
                "{[A: int, B: int]}",
            )
            .unwrap();
        group.bench_with_input(BenchmarkId::new("machiavelli/chain", n), &n, |b, _| {
            b.iter(|| session.eval_one("Closure(g);").unwrap().value)
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_native_closure, bench_interpreted_closure
}
criterion_main!(benches);
