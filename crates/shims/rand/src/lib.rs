//! Offline shim for the `rand` crate.
//!
//! Provides the slice of the `rand 0.8` API this workspace uses —
//! `StdRng::seed_from_u64`, `Rng::gen_range` over integer ranges, and
//! `Rng::gen_bool` — backed by the SplitMix64/xoshiro256++ generators.
//! Deterministic for a given seed (the workspace's generators promise
//! seed-determinism, not bit-compatibility with upstream `rand`).

/// Seedable generators.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampled-type-over-a-range machinery, mirroring `rand`'s
/// `SampleRange` just enough for `gen_range(a..b)` / `gen_range(a..=b)`.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Object-safe random core.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing random methods (blanket-implemented over [`RngCore`]).
pub trait Rng: RngCore {
    /// Uniform sample from a (half-open or inclusive) integer range.
    /// Panics when the range is empty, as upstream does.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Uniform u64 below `bound` via Lemire's rejection-free-most-of-the-time
/// multiply-shift method.
fn below(rng: &mut dyn RngCore, bound: u64) -> u64 {
    assert!(bound > 0, "empty range");
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                (start as i128 + below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Generators re-exported the way `rand` lays them out.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64 — the shim's stand-in for
    /// rand's `StdRng` (same trait surface, different stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [a, b, c, d] = self.s;
            let result = a.wrapping_add(d).rotate_left(23).wrapping_add(a);
            let t = b << 17;
            let mut s = [a, b, c, d];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: i64 = r.gen_range(-5..5);
            assert!((-5..5).contains(&x));
            let y: usize = r.gen_range(0..=3);
            assert!(y <= 3);
            let z: i64 = r.gen_range(10_000..200_000);
            assert!((10_000..200_000).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "{hits}");
    }
}
