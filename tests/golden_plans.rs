//! Golden-plan tests: pin the operator trees the comprehension planner
//! chooses for the paper's query shapes (`Session::plan_of` renders the
//! physical pipeline; the `Fallback` line names shapes left to the
//! interpreter's nested loop). If planner behavior changes on purpose,
//! update these strings deliberately.

use machiavelli::Session;

fn plan(src: &str) -> String {
    Session::new().plan_of(src).unwrap()
}

#[test]
fn fig9_shape_two_generator_equi_join_is_hash_join() {
    // The advisor/salary join shape of Figure 9: two independent
    // generators linked by a key equality, with a per-side filter.
    assert_eq!(
        plan(
            "select [Name = s.Name, Salary = e.Salary]
             where s <- StudentView(persons), e <- EmployeeView(persons)
             with s.Name = e.Name andalso e.Salary > 1000;"
        ),
        "Project [Name=s.Name, Salary=e.Salary]\n  \
         HashJoin probe(s.Name) build(e.Name)\n    \
         Scan s <- StudentView(persons)\n    \
         Build e <- EmployeeView(persons) filter (e.Salary > 1000)"
    );
}

#[test]
fn fig5_subpart_join_is_hash_join() {
    // The inner comprehension of Figure 5's `cost`: subparts joined to
    // the part database on part number. (`w` ranges over a field of an
    // enclosing binder — independent *within* this comprehension.)
    assert_eq!(
        plan(
            "select [SubpartCost = cost(z), Qty = w.Qty]
             where w <- x.SubParts, z <- parts
             with z.P# = w.P#;"
        ),
        "Project [SubpartCost=cost(z), Qty=w.Qty]\n  \
         HashJoin probe(w.P#) build(z.P#)\n    \
         Scan w <- x.SubParts\n    \
         Build z <- parts"
    );
}

#[test]
fn single_generator_filter_is_scan_with_pushdown() {
    // The introduction's Wealthy query.
    assert_eq!(
        plan("select x.Name where x <- S with x.Salary > 100000;"),
        "Project x.Name\n  Scan x <- S filter (x.Salary > 100000)"
    );
}

#[test]
fn dependent_generator_is_dependent_nested_loop() {
    // Figure 3 shape: supplier sets nested inside rows.
    assert_eq!(
        plan("select s.S# where p <- supplied_by, s <- p.Suppliers with true;"),
        "Project s.S#\n  \
         NestedLoop s <- p.Suppliers (dependent)\n    \
         Scan p <- supplied_by"
    );
}

#[test]
fn non_equi_join_is_nested_loop_with_residual() {
    assert_eq!(
        plan("select (x, y) where x <- r, y <- s with x.K < y.K;"),
        "Project (x, y)\n  \
         Filter (x.K < y.K)\n    \
         NestedLoop y <- s\n      \
         Scan x <- r"
    );
}

#[test]
fn three_generator_mixed_plan() {
    // Two hash joins stack left-deep; the non-key conjunct lands in a
    // residual filter at the level it becomes decidable.
    assert_eq!(
        plan(
            "select (x.A, y.B, z.C)
             where x <- r, y <- s, z <- t
             with x.K = y.K andalso y.J = z.J andalso x.A < z.C;"
        ),
        "Project (x.A, y.B, z.C)\n  \
         Filter (x.A < z.C)\n    \
         HashJoin probe(y.J) build(z.J)\n      \
         HashJoin probe(x.K) build(y.K)\n        \
         Scan x <- r\n        \
         Build y <- s\n      \
         Build z <- t"
    );
}

#[test]
fn unsafe_shapes_name_their_fallback() {
    // Function application in the predicate (may raise / not terminate).
    assert_eq!(
        plan("select x where x <- R with not(member(x, R));"),
        "Fallback (select_loop): predicate conjunct is not planner-safe: \
         not member(x, R)"
    );
    // `div` can raise on zero, so reordering it is observable.
    assert_eq!(
        plan("select x where x <- r, y <- s with x.K = y.K andalso 10 div x.A > 1;"),
        "Fallback (select_loop): predicate conjunct is not planner-safe: 10 div x.A > 1"
    );
    // A dependent source that applies a function.
    assert_eq!(
        plan("select y where x <- r, y <- f(x) with true;"),
        "Fallback (select_loop): dependent source of `y` is not planner-safe: f(x)"
    );
}

#[test]
fn equality_to_environment_constant_is_a_pushed_filter() {
    // `y.K = limit` mentions no earlier binder: a scan filter, not a
    // join key (the hash join needs a probe side).
    assert_eq!(
        plan("select y where x <- r, y <- s with y.K = limit;"),
        "Project y\n  \
         NestedLoop y <- s filter (y.K = limit)\n    \
         Scan x <- r"
    );
}
