//! Runtime value errors.

use std::fmt;

/// Errors from value-level database operations and evaluation plumbing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValueError {
    /// `join` of two inconsistent descriptions at a non-set position.
    Inconsistent { left: String, right: String },
    /// `project` onto a type the value does not match.
    ProjectionMismatch { value: String, ty: String },
    /// A set operation applied to a non-set value (defensive; the type
    /// system prevents this for typed programs).
    NotASet(String),
    /// A set containing structurally incompatible elements (defensive).
    HeterogeneousSet { first: String, second: String },
    /// `e as l` applied to a different variant.
    AsMismatch { expected: String, found: String },
    /// A field selection on a record missing the label (defensive).
    NoSuchField { value: String, label: String },
    /// A dynamic coercion whose payload does not conform to the target.
    CoercionFailed { value: String, ty: String },
    /// `hom*` applied to the empty set.
    EmptyHomStar,
    /// Functions are not description values (defensive).
    NotADescription(String),
    /// A user-raised error (`raise`, or the `as` desugaring's `Error`).
    Raised(String),
}

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use ValueError::*;
        match self {
            Inconsistent { left, right } => {
                write!(
                    f,
                    "inconsistent descriptions: cannot join `{left}` with `{right}`"
                )
            }
            ProjectionMismatch { value, ty } => {
                write!(f, "cannot project `{value}` onto `{ty}`")
            }
            NotASet(v) => write!(f, "expected a set, found `{v}`"),
            HeterogeneousSet { first, second } => {
                write!(f, "heterogeneous set: `{first}` and `{second}`")
            }
            AsMismatch { expected, found } => {
                write!(f, "`as {expected}` applied to variant `{found}`")
            }
            NoSuchField { value, label } => {
                write!(f, "value `{value}` has no field `{label}`")
            }
            CoercionFailed { value, ty } => {
                write!(f, "dynamic value `{value}` does not conform to `{ty}`")
            }
            EmptyHomStar => write!(f, "hom* applied to the empty set"),
            NotADescription(v) => write!(f, "`{v}` is not a description value"),
            Raised(msg) => write!(f, "uncaught exception: {msg}"),
        }
    }
}

impl std::error::Error for ValueError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let e = ValueError::EmptyHomStar;
        assert_eq!(e.to_string(), "hom* applied to the empty set");
        let e = ValueError::Raised("Error".into());
        assert!(e.to_string().contains("Error"));
    }
}
