//! Comprehension query planner: compiles `select … where gens with pred`
//! into a physical operator pipeline.
//!
//! The paper's central database construct is the comprehension over
//! labeled-record sets. Its reference semantics (the evaluator's
//! `select_loop`) is a nested re-evaluation loop, so a two-generator
//! equi-join comprehension is O(n·m) even when the predicate is a plain
//! key equality. This crate is the classic comprehension-calculus route
//! out: analyse the comprehension *statically*, once, and run it as a
//! database-style operator pipeline.
//!
//! # The logical / physical split
//!
//! * [`logical`] — [`compile`](logical::compile) performs
//!   **generator-dependency analysis** (is each generator source
//!   independent of earlier binders, or must it be re-evaluated per
//!   binding?) and **predicate decomposition** (split the `with` clause
//!   into conjuncts, push single-generator filters down to their
//!   generator, detect `x.l = y.k`-style equi-join conjuncts). The
//!   result is a [`LogicalPlan`](logical::LogicalPlan): one
//!   [`Step`](logical::Step) per generator plus the residual conjuncts,
//!   all borrowing the AST (compiling allocates no expression clones).
//! * [`physical`] — [`PhysicalPlan`](physical::PhysicalPlan) is the
//!   executable operator tree (`Scan` / `IndexScan` / `Filter` /
//!   `HashJoin` / `NestedLoop` / `Project`), and
//!   [`execute`](physical::execute) is a
//!   **pull-based** executor over [`machiavelli_value::Value`] /
//!   [`machiavelli_value::MSet`]: operators yield extended environments
//!   one at a time, hash-join build/probe keys reuse the structural
//!   hashing of `machiavelli_value::hash` (no rendering, no per-row key
//!   allocation beyond the key values themselves), and every residual
//!   predicate, source and result expression is evaluated through an
//!   [`EvalHook`](physical::EvalHook) callback into the real evaluator
//!   — the planner never re-implements expression semantics. Operators
//!   that group a relation by key (`HashJoin` build tables, `IndexScan`
//!   groupings) are memoized through the session's **index store**
//!   (`machiavelli-store`) when their key/filter expressions are closed
//!   under the row binder — repeated plans build once and probe
//!   thereafter, and the store's pointer-identity + mutation-epoch
//!   keying guarantees a mutated or rebuilt relation can never serve a
//!   stale index.
//! * [`explain`] — renders the operator tree for `Session::plan_of` and
//!   the REPL's `:plan` command (golden-plan tests pin the output).
//!
//! # The fallback contract
//!
//! The evaluator keeps `select_loop` and uses it whenever
//! [`compile`](logical::compile) declines ([`Unplannable`]), so planning
//! is *transparent*: every comprehension either runs through a plan that
//! is observationally equivalent to the nested loop, or through the
//! nested loop itself. The planner only commits when reordering is
//! unobservable:
//!
//! * every `with` conjunct must be **planner-safe** (see
//!   [`analysis::is_safe_expr`]): a pure, total expression — variables,
//!   literals, field projection, record/set construction, comparisons,
//!   overflow-free arithmetic (`div`/`mod` can raise and are excluded),
//!   `andalso`/`orelse`/`not`, `if`, `union`, `con`. Safe conjuncts
//!   cannot raise or allocate identities, so evaluating them earlier,
//!   later, or not at all (for rows a hash join prunes) is unobservable;
//! * every generator source that *depends on earlier binders* must be
//!   planner-safe too (it is re-evaluated per binding either way, but a
//!   join above it may prune whole outer rows);
//! * independent sources and the result expression are unrestricted:
//!   the pipeline evaluates independent sources exactly once, in
//!   generator order (as `select_loop` does), and evaluates the result
//!   for exactly the bindings that satisfy the predicate, in the same
//!   nested-iteration order — so effects, fresh `ref` identities and
//!   raised errors in them are preserved, including which error
//!   surfaces first;
//! * a comprehension over any empty independent source yields `{}`
//!   without evaluating the predicate (both paths pre-evaluate
//!   independent sources in generator order and never reach the
//!   predicate), and duplicate elimination happens once, at the end,
//!   exactly as in `select_loop`.
//!
//! Shapes the analysis declines — unsafe conjuncts, unsafe dependent
//! sources, duplicate binders — fall back with **zero** behavior change.
//! (As everywhere in the evaluator, the contract assumes the program was
//! type-checked; the `Session` front door always does.)
//!
//! # The parallel execution contract
//!
//! The paper singles out *proper* `hom` applications — associative,
//! commutative `op`; effect-free `f` — as "computable in parallel".
//! Machiavelli values are `Rc`-based and thread-confined, so the
//! parallel lane runs on **extracted plain data**
//! ([`machiavelli_value::plain`]) and only where the static analysis
//! proves the extraction step itself is unobservable. What
//! parallelizes, and what falls back:
//!
//! * **Uncached hash joins** whose build keys and pushed filters are
//!   [`parallel::par_evaluable`] under the build binder and whose probe
//!   keys are `par_evaluable` under the earlier binders (binder-closed
//!   planner-safe expressions minus `con`) are statically eligible for
//!   the inline partition lane (`PhysOp::HashJoin { par }` with
//!   `build_ok`, rendered `HashJoin[par n=…]`). At open time the join
//!   actually fans out only when the plain lane is enabled with more
//!   than one worker thread ([`machiavelli_value::tuning`]), the build
//!   table is **not** served by the index store, the build side clears
//!   [`machiavelli_value::tuning::par_join_min_build_rows`], and every
//!   key value extracts via [`machiavelli_value::to_plain`]
//!   (identity-bearing keys — refs, dynamics — cannot cross the lane).
//!   Both sides are keyed sequentially by [`parallel::safe_eval`] (a
//!   direct-dispatch safe-class evaluator, no interpreter overhead);
//!   only the extracted key tuples cross into the scoped worker
//!   threads, which partition, group and probe them, returning match
//!   *indices*; the original `Rc` rows are re-bound by index on the
//!   session thread, so the yielded binding sequence — probe-major,
//!   build groups in canonical source order — is identical to the
//!   sequential probe, and the result expression still evaluates
//!   sequentially for exactly the same bindings in the same order.
//!   Materializing the probe side is memory-capped at
//!   [`machiavelli_value::tuning::par_join_max_probe_rows`]; past the
//!   cap the join reverts to the streaming sequential probe over the
//!   drained prefix plus the live remainder.
//! * **Store-served hash joins compose with the lane** instead of
//!   excluding it: when the index store answers a fingerprinted build
//!   with a **plain** entry (`machiavelli_value::PlainIndex` — the
//!   store re-represents every fully-extractable relation this way, so
//!   a cached index is `Send + Sync`), and the probe keys are
//!   `par_evaluable`, the executor drains the probe side (same memory
//!   cap), extracts the keys sequentially, and fans only the extracted
//!   tuples out over scoped workers that probe the *shared* cached
//!   index ([`parallel::par_probe_cached`]) — no build work at all,
//!   matches return as indices, binding order identical to the
//!   sequential cached probe. Gated by
//!   [`machiavelli_value::tuning::par_probe_min_rows`] (its own cutoff:
//!   there is no build to amortize). Relations with no plain form stay
//!   on the `Rc`-lane entry, probed sequentially. Rendered
//!   `HashJoin[idx cached, par n=…]`.
//! * **Index-aware build-side selection**: a two-generator equi-join
//!   over a bare first `Scan` may *swap* its build side at open time —
//!   preferring the side that already holds a live cached index, or the
//!   smaller relation when neither side is cached (`PhysOp::HashJoin {
//!   swap }`, decided from store metadata via a stats-neutral `peek`,
//!   rendered `HashJoin[idx cached, swapped]`). The flip is admitted
//!   only where it is unobservable: both sources independent and
//!   evaluated in generator order regardless of orientation, the
//!   swapped build's keys/filters closed under the first binder (so it
//!   is cacheable under its own fingerprint), and the comprehension's
//!   **result expression planner-safe** — a swap enumerates the same
//!   binding multiset probe-major over the other side, which only an
//!   effectful result could distinguish.
//! * **The columnar morsel lane** (`machiavelli-exec`): a `Scan` or
//!   hash-join build side whose pushed filters are all
//!   [`parallel::par_evaluable`] under its own binder offloads the
//!   filter loop onto worker threads. The relation snapshots once into
//!   a [`machiavelli_value::plain::ColumnarRelation`] — column-major
//!   when every row is a uniform record, row-major otherwise; cached in
//!   the index store under the relation's storage identity and adopted
//!   from the shared tier by content hash — and the rows split into
//!   fixed-size **morsels** drained by work-stealing workers
//!   ([`machiavelli_exec::run_tasks`]). `_.field op constant`
//!   conjuncts compile to per-column comparator loops; everything else
//!   runs [`parallel::plain_eval`] per row. Only the surviving row
//!   *indices* return; the session thread rebuilds a canonical
//!   filterless scan from them (an ascending subset of a canonical
//!   slice), which is exactly the shape the cached parallel probe fast
//!   path keys from — so a Scan→Filter→HashJoin pipeline runs
//!   end-to-end on worker threads, with only binding and the result
//!   expression sequential. **Independent generators** — a
//!   two-generator join where both sides' filters are eligible and the
//!   build is not already cached — filter both relations as *one*
//!   morsel batch over the shared pool, no barrier between the scans.
//!   Gated by [`machiavelli_value::tuning::columnar_min_rows`] rows and
//!   the usual lane switches; any decline (a row with no plain form, a
//!   strict conjunct evaluating non-boolean, env-dependent predicates)
//!   falls back to the sequential filter with zero behavior change —
//!   pushed filters are planner-safe, so the sequential re-run raises
//!   the identical first error. Rendered `Scan[columnar par n=…]` /
//!   `Build[columnar par n=…]`; outcomes counted in
//!   [`machiavelli_value::tuning::exec_stats`].
//! * **Proper `hom` applications** (the evaluator's side of the lane):
//!   `op` one of `+`, `*`, `andalso`, `orelse` with `z` its identity,
//!   and `f` a one-parameter closure whose body is planner-safe. The
//!   set and `f`'s captured bindings are extracted to plain data and
//!   folded chunk-wise through `machiavelli_relational::par_hom`.
//! * **Everything else falls back sequentially with zero behavior
//!   change**: any value that fails `to_plain` (references, dynamics,
//!   closures — identity- or code-bearing data), any expression the
//!   plain mini-evaluator declines, sub-threshold inputs, a disabled or
//!   single-threaded lane. The fallback is exact because everything the
//!   parallel attempt may have evaluated early (probe-side pipeline
//!   rows, pushed filters, keys) is planner-safe — pure, total,
//!   terminating — so re-running it sequentially reproduces the same
//!   bindings and the same first error. Hits and fallbacks are counted
//!   per session ([`machiavelli_value::tuning::par_stats`], REPL
//!   `:stats`), cached-probe outcomes separately from inline-lane ones.

pub mod analysis;
pub mod explain;
pub mod logical;
pub mod parallel;
pub mod physical;

pub use analysis::{closed_under, find_select, is_safe_expr, mentions_any, split_conjuncts};
pub use explain::explain;
pub use logical::{compile, LogicalPlan, Step, Unplannable};
pub use parallel::{expr_vars, par_evaluable, par_probe_cached, plain_eval, PlainBindings};
pub use physical::{
    columnar_eligible, execute, EvalHook, ExecError, IndexKey, ParInfo, PhysOp, PhysicalPlan,
    SwapInfo,
};

use machiavelli_syntax::ast::{Expr, Generator};

/// One-stop compilation: logical plan → physical pipeline. An error
/// means the shape is not covered and the caller must use its fallback
/// path (the reason renders lazily; the hot path never formats it).
pub fn plan_select<'a>(
    generators: &'a [Generator],
    pred: &'a Expr,
    result: &'a Expr,
) -> Result<PhysicalPlan<'a>, Unplannable<'a>> {
    compile(generators, pred, result).map(|l| l.physical())
}
