//! End-to-end resilience: governor trips and injected faults surface
//! through a plain [`Session`] as **structured errors** — the
//! session-level half of the contract the server's chaos suite proves
//! at the process level.

use machiavelli::eval::set_planner_enabled;
use machiavelli::value::faults::{self, FaultConfig, INJECTED_PANIC_PREFIX};
use machiavelli::value::governor::{self, QueryGuard};
use machiavelli::value::tuning;
use machiavelli::Session;
use std::sync::Arc;
use std::time::Duration;

/// Evaluate with the parallel lane forced on (2 threads, 1-row
/// cutoffs, store off) so eligible joins fan out to worker threads.
fn eval_par(session: &mut Session, src: &str) -> Result<String, String> {
    let prev_planner = set_planner_enabled(true);
    let prev_store = machiavelli::store::set_store_enabled(false);
    let prev_enabled = tuning::set_parallel_enabled(true);
    let prev_threads = tuning::set_par_threads(Some(2));
    let prev_rows = tuning::set_par_join_min_build_rows(Some(1));
    let out = session
        .eval_one(src)
        .map(|o| machiavelli::value::show_value(&o.value))
        .map_err(|e| e.to_string());
    tuning::set_par_join_min_build_rows(prev_rows);
    tuning::set_par_threads(prev_threads);
    tuning::set_parallel_enabled(prev_enabled);
    machiavelli::store::set_store_enabled(prev_store);
    set_planner_enabled(prev_planner);
    out
}

const SETUP: &str = "val r = {[K=1, A=10], [K=2, A=20], [K=3, A=30]};
                     val probe = {[K=2], [K=3]};";
const JOIN: &str = "select x.A where y <- probe, x <- r with x.K = y.K;";

#[test]
fn a_panicking_parallel_worker_surfaces_as_err_not_an_abort() {
    let mut s = Session::new();
    s.run(SETUP).unwrap();

    // Inject a certain panic on every fan-out worker thread.
    let prev = faults::set_fault_config(Some(FaultConfig {
        worker_panic_ppm: 1_000_000,
        seed: 21,
        ..FaultConfig::off()
    }));
    let out = eval_par(&mut s, JOIN);
    faults::set_fault_config(prev);

    let msg = out.expect_err("worker panic must become a structured error");
    assert!(
        msg.contains("parallel worker panicked") && msg.contains(INJECTED_PANIC_PREFIX),
        "got: {msg}"
    );
    // The panic was confined to the fan-out: the session keeps working
    // and the same query now answers correctly.
    assert_eq!(eval_par(&mut s, JOIN).unwrap(), "{20, 30}");
}

/// Run `f` with a guard installed on this thread, restoring after.
fn with_guard<T>(guard: Arc<QueryGuard>, f: impl FnOnce() -> T) -> (T, Arc<QueryGuard>) {
    let prev = governor::install(Some(guard.clone()));
    let out = f();
    governor::install(prev);
    (out, guard)
}

/// >256 evaluator steps, so the governance tick is guaranteed to fire.
fn ticking_query() -> String {
    let elems: Vec<String> = (0..200).map(|i| format!("{i} + 0")).collect();
    format!("{{{}}};", elems.join(", "))
}

#[test]
fn cancellation_interrupts_the_evaluator_tick() {
    let mut s = Session::new();
    let guard = Arc::new(QueryGuard::unlimited());
    guard.cancel();
    let (out, _) = with_guard(guard, || s.eval_one(&ticking_query()));
    let msg = out.expect_err("cancelled mid-evaluation").to_string();
    assert_eq!(msg, "runtime error: query cancelled");
    // The guard is uninstalled: the session evaluates normally again.
    assert!(s.eval_one("1 + 1;").is_ok());
}

#[test]
fn an_expired_deadline_interrupts_the_evaluator_tick() {
    let mut s = Session::new();
    let guard = Arc::new(QueryGuard::with_timeout(Duration::ZERO, None));
    let (out, guard) = with_guard(guard, || s.eval_one(&ticking_query()));
    let msg = out.expect_err("deadline hit mid-evaluation").to_string();
    assert_eq!(msg, "runtime error: query deadline exceeded");
    assert!(
        guard.tripped().is_some(),
        "the trip is latched on the guard"
    );
}

#[test]
fn row_budget_latches_even_when_charged_after_the_last_tick() {
    let mut s = Session::new();
    // Tiny query, tiny budget: the 5-row set charges at materialization
    // — after any possible tick — so evaluation itself may succeed...
    let guard = Arc::new(QueryGuard::new(None, Some(2)));
    let (out, guard) = with_guard(guard, || s.eval_one("{1, 2, 3, 4, 5};"));
    // ...but the latch records the violation for the host to honor
    // (the server turns this into `ServerError::RowBudgetExceeded`).
    let _ = out;
    assert_eq!(
        guard.tripped(),
        Some(machiavelli::value::governor::Trip::RowBudgetExceeded)
    );
    assert!(guard.rows_used() >= 5);
}
