//! `machid` — the Machiavelli session server over TCP.
//!
//! ```text
//! machid [ADDR]          # default 127.0.0.1:7878
//! ```
//!
//! One thread per connection, speaking the line protocol from
//! `machiavelli_server::wire`. Tuning via environment:
//!
//! * `MACHID_WORKERS`      — worker threads (default 4)
//! * `MACHID_QUEUE_CAP`    — per-worker queue bound (default 64)
//! * `MACHID_DEADLINE_MS`  — default per-query deadline (default none)
//! * `MACHID_DURABLE_ROOT` — directory for durable sessions (default
//!   none = in-memory). With it set, every session write-ahead-logs its
//!   commits and a restarted `machid` serves the same bindings.
//! * `MACHID_ROLE`         — `primary` (default) or `follower`. A
//!   follower serves read-only queries and pulls the primary's WAL.
//! * `MACHID_PRIMARY_ADDR` — the primary's wire address (required for
//!   a follower).
//! * `MACHID_REPL_POLL_MS` — follower catch-up poll interval
//!   (default 50).
//! * `MACHID_MAX_LINE_BYTES` — request line cap (default 1 MiB).
//! * `MACHIAVELLI_QUERY_MAX_ROWS` — per-query row budget
//! * `MACHIAVELLI_FAULT_*` — fault injection (chaos drills)
//!
//! On `SIGTERM`/`SIGINT` the server shuts down gracefully: it stops
//! accepting, lets in-flight requests drain through the worker queues,
//! stops the replicator (which flushes a final round of acks),
//! checkpoints every durable session, and exits 0. Acked commits are
//! already fsynced when the client sees `OK`/`VAL`, so a graceful —
//! or even an abrupt — stop never loses one.

use machiavelli_repl::{Replicator, ReplicatorConfig};
use machiavelli_server::{serve_connection, Server, ServerConfig, ServerRole};
use std::io::BufReader;
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

static TERM: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_term_handler() {
    extern "C" fn on_term(_sig: i32) {
        TERM.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_term as extern "C" fn(i32) as *const () as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

#[cfg(not(unix))]
fn install_term_handler() {}

fn env_usize(var: &str) -> Option<usize> {
    std::env::var(var).ok()?.trim().parse().ok()
}

fn main() -> ExitCode {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let role = match std::env::var("MACHID_ROLE").as_deref() {
        Ok("follower") => ServerRole::Follower,
        Ok("primary") | Err(_) => ServerRole::Primary,
        Ok(other) => {
            eprintln!("machid: MACHID_ROLE must be primary or follower, got {other:?}");
            return ExitCode::FAILURE;
        }
    };
    let config = ServerConfig {
        workers: env_usize("MACHID_WORKERS").unwrap_or(4),
        queue_cap: env_usize("MACHID_QUEUE_CAP").unwrap_or(64),
        default_deadline: env_usize("MACHID_DEADLINE_MS")
            .map(|ms| Duration::from_millis(ms as u64)),
        durable_root: std::env::var("MACHID_DURABLE_ROOT")
            .ok()
            .filter(|s| !s.trim().is_empty())
            .map(std::path::PathBuf::from),
        role,
        ..ServerConfig::default()
    };
    if role == ServerRole::Follower && config.durable_root.is_none() {
        eprintln!("machid: a follower needs MACHID_DURABLE_ROOT for its replicated log");
        return ExitCode::FAILURE;
    }
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("machid: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Non-blocking accepts let the loop notice SIGTERM promptly.
    if let Err(e) = listener.set_nonblocking(true) {
        eprintln!("machid: cannot set nonblocking accept: {e}");
        return ExitCode::FAILURE;
    }
    install_term_handler();
    let server = Arc::new(Server::start(config));
    let replicator = if role == ServerRole::Follower {
        let primary_addr = match std::env::var("MACHID_PRIMARY_ADDR") {
            Ok(a) if !a.trim().is_empty() => a,
            _ => {
                eprintln!("machid: a follower needs MACHID_PRIMARY_ADDR");
                return ExitCode::FAILURE;
            }
        };
        let mut rc = ReplicatorConfig::new(primary_addr);
        if let Some(ms) = env_usize("MACHID_REPL_POLL_MS") {
            rc.poll = Duration::from_millis(ms as u64);
        }
        Some(Replicator::start(Arc::clone(&server), rc))
    } else {
        None
    };
    eprintln!(
        "machid: {} listening on {addr} ({} workers)",
        server.role(),
        server.live_workers()
    );
    while !TERM.load(Ordering::SeqCst) {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
                continue;
            }
            Err(e) => {
                eprintln!("machid: accept failed: {e}");
                continue;
            }
        };
        if let Err(e) = stream.set_nonblocking(false) {
            eprintln!("machid: cannot set blocking stream: {e}");
            continue;
        }
        let server = Arc::clone(&server);
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".to_string());
        let spawned = std::thread::Builder::new()
            .name(format!("machid-conn-{peer}"))
            .spawn(move || {
                let reader = match stream.try_clone() {
                    Ok(r) => BufReader::new(r),
                    Err(e) => {
                        eprintln!("machid: cannot clone stream for {peer}: {e}");
                        return;
                    }
                };
                if let Err(e) = serve_connection(&server, reader, stream) {
                    eprintln!("machid: connection {peer} ended with error: {e}");
                }
            });
        if let Err(e) = spawned {
            eprintln!("machid: cannot spawn connection thread: {e}");
        }
    }
    // Graceful shutdown. Accepts have stopped; anything already
    // admitted drains through the worker FIFOs because the final
    // checkpoint rides the same queues behind it.
    eprintln!("machid: shutting down (draining, then checkpointing)");
    if let Some(r) = replicator {
        r.stop();
    }
    match server.checkpoint_all() {
        Ok(n) => eprintln!("machid: checkpointed {n} durable session(s); bye"),
        Err(e) => {
            eprintln!("machid: final checkpoint failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
