//! Evaluation errors.

use machiavelli_value::governor::Trip;
use machiavelli_value::ValueError;
use std::fmt;

/// Errors raised during evaluation. Programs that pass the type checker
/// only raise the [`EvalError::Value`] variants that are dynamic by
/// design (`hom*` on the empty set, `as` mismatch, failed coercions,
/// user `raise`); the rest are defensive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A value-level operation failed.
    Value(ValueError),
    /// Unbound variable (unreachable for type-checked programs).
    Unbound(String),
    /// Applied a function to the wrong number of arguments.
    Arity { expected: usize, got: usize },
    /// Applied a non-function.
    NotAFunction(String),
    /// Evaluation exceeded the configured recursion depth.
    StackOverflow,
    /// The governing [`machiavelli_value::QueryGuard`] stopped the
    /// query (cancellation, deadline, or row budget) at a cooperative
    /// tick. Sticky: re-polling the guard reports the same cause.
    Interrupted(Trip),
    /// A parallel worker panicked; the panic was caught at the lane
    /// boundary and reported instead of unwinding through the session.
    WorkerPanicked(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Value(e) => e.fmt(f),
            EvalError::Unbound(x) => write!(f, "unbound variable `{x}` at runtime"),
            EvalError::Arity { expected, got } => {
                write!(f, "function expects {expected} argument(s), got {got}")
            }
            EvalError::NotAFunction(v) => write!(f, "cannot apply non-function `{v}`"),
            EvalError::StackOverflow => write!(f, "evaluation recursion limit exceeded"),
            EvalError::Interrupted(trip) => trip.fmt(f),
            EvalError::WorkerPanicked(msg) => write!(f, "parallel worker panicked: {msg}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<ValueError> for EvalError {
    fn from(e: ValueError) -> Self {
        EvalError::Value(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(EvalError::Unbound("x".into()).to_string().contains("`x`"));
        assert_eq!(
            EvalError::Arity {
                expected: 2,
                got: 1
            }
            .to_string(),
            "function expects 2 argument(s), got 1"
        );
    }
}
