//! Persistence bench — the WAL's headline claim, asserted structurally:
//! **delta commits are flat in session size; full re-encode is linear.**
//!
//! Two sessions, 256 and 4096 bindings (16× apart). For each we time
//!
//! * `delta_commit/N`   — one ref write evaluated and committed through
//!   the write-ahead log (what every server eval pays), and
//! * `full_reencode/N`  — `Session::save_bindings` over every binding
//!   (what each save cost before the WAL, and what a checkpoint still
//!   costs — which is exactly why checkpoints are occasional and
//!   commits are not).
//!
//! Beyond the timings, the bench *asserts* the scaling shape on its own
//! median measurements: full re-encode must grow at least 4× across the
//! 16× size gap, delta commit at most 3× (generous bounds so a noisy
//! CI box cannot flake the claim, while still ruling out any
//! accidentally-linear commit path).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use machiavelli_wal::DurableSession;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const SMALL: usize = 256;
const BIG: usize = 4096;

fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mach-persist-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A durable session holding `n` integer bindings plus one ref the
/// delta benchmark writes through.
fn primed(n: usize) -> (DurableSession, Vec<String>, PathBuf) {
    let dir = tempdir(&format!("n{n}"));
    let (mut ds, _) = DurableSession::open_bare(&dir).expect("open");
    let mut names = Vec::with_capacity(n + 1);
    // Batched binds: 256 phrases per eval keeps setup fast without one
    // giant commit group.
    for chunk in (0..n).collect::<Vec<_>>().chunks(256) {
        let src: String = chunk.iter().map(|i| format!("val k{i} = {i};")).collect();
        ds.eval(&src).expect("prime");
    }
    names.extend((0..n).map(|i| format!("k{i}")));
    ds.eval("val cursor = ref(0);").expect("bind cursor");
    names.push("cursor".to_string());
    (ds, names, dir)
}

/// Median wall time of `routine` over `iters` runs.
fn median_ns(iters: usize, mut routine: impl FnMut(usize)) -> u64 {
    let mut samples = Vec::with_capacity(iters);
    for i in 0..iters {
        let t0 = Instant::now();
        routine(i);
        samples.push(t0.elapsed().as_nanos() as u64);
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn bench_persist(c: &mut Criterion) {
    let mut group = c.benchmark_group("persist");
    group.sample_size(10);

    let mut medians = Vec::new();
    for &n in &[SMALL, BIG] {
        let (mut ds, names, dir) = primed(n);
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();

        // The timed claim, measured directly so it can be asserted.
        let delta_ns = median_ns(200, |i| {
            ds.eval(&format!("cursor := {i};")).expect("delta commit");
        });
        let full_ns = median_ns(20, |_| {
            black_box(ds.session().save_bindings(&name_refs).expect("re-encode"));
        });
        medians.push((n, delta_ns, full_ns));

        // The same operations under criterion for the report.
        let mut i = 0u64;
        group.bench_function(format!("delta_commit/{n}"), |b| {
            b.iter(|| {
                i += 1;
                ds.eval(&format!("cursor := {i};")).expect("delta commit")
            })
        });
        group.bench_function(format!("full_reencode/{n}"), |b| {
            b.iter(|| black_box(ds.session().save_bindings(&name_refs).expect("re-encode")))
        });
        drop(ds);
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();

    let (_, delta_small, full_small) = medians[0];
    let (_, delta_big, full_big) = medians[1];
    let delta_ratio = delta_big as f64 / delta_small.max(1) as f64;
    let full_ratio = full_big as f64 / full_small.max(1) as f64;
    eprintln!(
        "persist_bench: sessions {SMALL} -> {BIG} bindings (16x): \
         delta commit {delta_small}ns -> {delta_big}ns ({delta_ratio:.2}x), \
         full re-encode {full_small}ns -> {full_big}ns ({full_ratio:.2}x)"
    );
    assert!(
        full_ratio >= 4.0,
        "full re-encode must scale with session size (16x bindings, \
         only {full_ratio:.2}x slower)"
    );
    assert!(
        delta_ratio <= 3.0,
        "delta commit must stay flat in session size (16x bindings made \
         commits {delta_ratio:.2}x slower)"
    );
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_persist
}
criterion_main!(benches);
