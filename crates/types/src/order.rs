//! The information ordering `≤` on description types (§3.3), with least
//! upper bounds (`⊔`, backing `join`/`con`) and greatest lower bounds
//! (`⊓`, backing `unionc`).
//!
//! Per the paper: *δ₁ ≤ δ₂ iff δ₁ can be obtained from δ₂ by deleting zero
//! or more record labels that appear outside of scopes of ref type
//! constructors.* Consequently:
//!
//! * base types are ordered only by equality;
//! * records are covariant in fields and ordered by label-set inclusion;
//! * variants are covariant in fields but keep their label set — variant
//!   labels are never deleted, so `project` is statically safe on
//!   variants;
//! * `ref(τ) ≤ ref(τ)` only (references are atomic for the ordering);
//! * sets are covariant.
//!
//! All functions here are *pure*: they never link unification variables.
//! When a decision is blocked by an unbound variable they return
//! [`Partial::Unknown`]; the constraint solver decides what to do.

use crate::display::show_type;
use crate::error::TypeError;
use crate::ty::{resolve, t_record, t_ref, t_set, t_variant, unfold_rec, Ty, Type};
use std::collections::BTreeMap;
use std::collections::HashSet;
use std::rc::Rc;

/// A three-valued answer: decided, or blocked on a type variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Partial<T> {
    Known(T),
    Unknown,
}

impl<T> Partial<T> {
    pub fn known(self) -> Option<T> {
        match self {
            Partial::Known(t) => Some(t),
            Partial::Unknown => None,
        }
    }
}

/// Structural (equi-recursive) type equality. Variables are equal only to
/// themselves; a variable against anything else is `Unknown`.
pub fn type_eq(a: &Ty, b: &Ty) -> Partial<bool> {
    let mut assume = HashSet::new();
    eq_inner(a, b, &mut assume)
}

fn eq_inner(a: &Ty, b: &Ty, assume: &mut HashSet<(usize, usize)>) -> Partial<bool> {
    use Partial::*;
    let a = resolve(a);
    let b = resolve(b);
    if Rc::ptr_eq(&a, &b) {
        return Known(true);
    }
    match (&*a, &*b) {
        (Type::Var(x), Type::Var(y)) => {
            if x == y {
                Known(true)
            } else {
                Unknown
            }
        }
        (Type::Var(_), _) | (_, Type::Var(_)) => Unknown,
        (Type::Rec(..), _) | (_, Type::Rec(..)) => {
            let key = (Rc::as_ptr(&a) as usize, Rc::as_ptr(&b) as usize);
            if !assume.insert(key) {
                return Known(true);
            }
            eq_inner(&unfold_rec(&a), &unfold_rec(&b), assume)
        }
        (Type::Unit, Type::Unit)
        | (Type::Int, Type::Int)
        | (Type::Bool, Type::Bool)
        | (Type::Str, Type::Str)
        | (Type::Real, Type::Real)
        | (Type::Dynamic, Type::Dynamic) => Known(true),
        (Type::RecVar(x), Type::RecVar(y)) => Known(x == y),
        (Type::Arrow(a1, a2), Type::Arrow(b1, b2)) => and(
            eq_inner(a1, b1, assume),
            |assume| eq_inner(a2, b2, assume),
            assume,
        ),
        (Type::Set(x), Type::Set(y)) | (Type::Ref(x), Type::Ref(y)) => eq_inner(x, y, assume),
        (Type::Record(fa), Type::Record(fb)) | (Type::Variant(fa), Type::Variant(fb)) => {
            if fa.len() != fb.len() || !fa.keys().eq(fb.keys()) {
                return Known(false);
            }
            let mut unknown = false;
            for (l, ta) in fa {
                match eq_inner(ta, &fb[l], assume) {
                    Known(false) => return Known(false),
                    Known(true) => {}
                    Unknown => unknown = true,
                }
            }
            if unknown {
                Unknown
            } else {
                Known(true)
            }
        }
        _ => Known(false),
    }
}

fn and<F>(first: Partial<bool>, second: F, assume: &mut HashSet<(usize, usize)>) -> Partial<bool>
where
    F: FnOnce(&mut HashSet<(usize, usize)>) -> Partial<bool>,
{
    match first {
        Partial::Known(false) => Partial::Known(false),
        Partial::Known(true) => second(assume),
        Partial::Unknown => match second(assume) {
            Partial::Known(false) => Partial::Known(false),
            _ => Partial::Unknown,
        },
    }
}

/// Decide `a ≤ b` (the information ordering).
pub fn le(a: &Ty, b: &Ty) -> Partial<bool> {
    let mut assume = HashSet::new();
    le_inner(a, b, &mut assume)
}

fn le_inner(a: &Ty, b: &Ty, assume: &mut HashSet<(usize, usize)>) -> Partial<bool> {
    use Partial::*;
    let a = resolve(a);
    let b = resolve(b);
    if Rc::ptr_eq(&a, &b) {
        return Known(true);
    }
    match (&*a, &*b) {
        (Type::Var(x), Type::Var(y)) if x == y => Known(true),
        (Type::Var(_), _) | (_, Type::Var(_)) => Unknown,
        (Type::Rec(..), _) | (_, Type::Rec(..)) => {
            let key = (Rc::as_ptr(&a) as usize, Rc::as_ptr(&b) as usize);
            if !assume.insert(key) {
                return Known(true);
            }
            le_inner(&unfold_rec(&a), &unfold_rec(&b), assume)
        }
        (Type::Unit, Type::Unit)
        | (Type::Int, Type::Int)
        | (Type::Bool, Type::Bool)
        | (Type::Str, Type::Str)
        | (Type::Real, Type::Real)
        | (Type::Dynamic, Type::Dynamic) => Known(true),
        (Type::Set(x), Type::Set(y)) => le_inner(x, y, assume),
        // ref(τ) ≤ ref(τ) — invariant.
        (Type::Ref(x), Type::Ref(y)) => eq_inner(x, y, assume),
        (Type::Record(fa), Type::Record(fb)) => {
            // Every label of `a` must appear in `b`, componentwise ≤.
            let mut unknown = false;
            for (l, ta) in fa {
                let Some(tb) = fb.get(l) else {
                    return Known(false);
                };
                match le_inner(ta, tb, assume) {
                    Known(false) => return Known(false),
                    Known(true) => {}
                    Unknown => unknown = true,
                }
            }
            if unknown {
                Unknown
            } else {
                Known(true)
            }
        }
        (Type::Variant(fa), Type::Variant(fb)) => {
            // Variant labels are never deleted: identical label sets.
            if !fa.keys().eq(fb.keys()) {
                return Known(false);
            }
            let mut unknown = false;
            for (l, ta) in fa {
                match le_inner(ta, &fb[l], assume) {
                    Known(false) => return Known(false),
                    Known(true) => {}
                    Unknown => unknown = true,
                }
            }
            if unknown {
                Unknown
            } else {
                Known(true)
            }
        }
        _ => Known(false),
    }
}

/// Compute the least upper bound `a ⊔ b` of two *ground* description
/// types; `Unknown` if a variable blocks the decision, `Err` if no upper
/// bound exists.
pub fn lub(a: &Ty, b: &Ty) -> Result<Partial<Ty>, TypeError> {
    bound(a, b, true)
}

/// Compute the greatest lower bound `a ⊓ b`; `Unknown` if blocked on a
/// variable, `Err` if no lower bound exists.
pub fn glb(a: &Ty, b: &Ty) -> Result<Partial<Ty>, TypeError> {
    bound(a, b, false)
}

fn bound(a: &Ty, b: &Ty, upper: bool) -> Result<Partial<Ty>, TypeError> {
    use Partial::*;
    let a = resolve(a);
    let b = resolve(b);
    // Fast path: equal types are their own bound (also covers `rec`).
    if let Known(true) = type_eq(&a, &b) {
        return Ok(Known(a));
    }
    let fail = || {
        if upper {
            Err(TypeError::LubUndefined {
                left: show_type(&a),
                right: show_type(&b),
            })
        } else {
            Err(TypeError::GlbUndefined {
                left: show_type(&a),
                right: show_type(&b),
            })
        }
    };
    match (&*a, &*b) {
        (Type::Var(_), _) | (_, Type::Var(_)) => Ok(Unknown),
        // Distinct recursive types: only the equal case (handled above) is
        // supported; computing a non-trivial bound of regular trees is not
        // needed by any construction in the paper.
        (Type::Rec(..), _) | (_, Type::Rec(..)) => fail(),
        (Type::Unit, Type::Unit)
        | (Type::Int, Type::Int)
        | (Type::Bool, Type::Bool)
        | (Type::Str, Type::Str)
        | (Type::Real, Type::Real)
        | (Type::Dynamic, Type::Dynamic) => Ok(Known(a)),
        (Type::Set(x), Type::Set(y)) => Ok(match bound(x, y, upper)? {
            Known(e) => Known(t_set(e)),
            Unknown => Unknown,
        }),
        (Type::Ref(x), Type::Ref(y)) => match type_eq(x, y) {
            Known(true) => Ok(Known(t_ref(x.clone()))),
            Known(false) => fail(),
            Unknown => Ok(Unknown),
        },
        (Type::Record(fa), Type::Record(fb)) => {
            if upper {
                // Union of labels; common labels get the lub.
                let mut out: BTreeMap<crate::ty::Label, Ty> = BTreeMap::new();
                for (l, ta) in fa {
                    match fb.get(l) {
                        None => {
                            out.insert(*l, ta.clone());
                        }
                        Some(tb) => match bound(ta, tb, true)? {
                            Known(t) => {
                                out.insert(*l, t);
                            }
                            Unknown => return Ok(Unknown),
                        },
                    }
                }
                for (l, tb) in fb {
                    if !fa.contains_key(l) {
                        out.insert(*l, tb.clone());
                    }
                }
                Ok(Known(t_record(out)))
            } else {
                // Intersection of labels; a common label whose glb fails
                // is simply deleted (records may drop labels).
                let mut out: BTreeMap<crate::ty::Label, Ty> = BTreeMap::new();
                for (l, ta) in fa {
                    if let Some(tb) = fb.get(l) {
                        match bound(ta, tb, false) {
                            Ok(Known(t)) => {
                                out.insert(*l, t);
                            }
                            Ok(Unknown) => return Ok(Unknown),
                            Err(_) => {} // drop the incompatible label
                        }
                    }
                }
                Ok(Known(t_record(out)))
            }
        }
        (Type::Variant(fa), Type::Variant(fb)) => {
            // Variant labels are never deleted: bounds exist only for
            // identical label sets, componentwise.
            if !fa.keys().eq(fb.keys()) {
                return fail();
            }
            let mut out: BTreeMap<crate::ty::Label, Ty> = BTreeMap::new();
            for (l, ta) in fa {
                match bound(ta, &fb[l], upper)? {
                    Known(t) => {
                        out.insert(*l, t);
                    }
                    Unknown => return Ok(Unknown),
                }
            }
            Ok(Known(t_variant(out)))
        }
        _ => fail(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::Kind;
    use crate::ty::*;

    fn rec2(a: (&str, Ty), b: (&str, Ty)) -> Ty {
        t_record([(a.0.into(), a.1), (b.0.into(), b.1)])
    }

    #[test]
    fn le_base() {
        assert_eq!(le(&t_int(), &t_int()), Partial::Known(true));
        assert_eq!(le(&t_int(), &t_bool()), Partial::Known(false));
    }

    #[test]
    fn le_records_by_label_deletion() {
        let small = t_record([("Name".into(), t_str())]);
        let big = rec2(("Name", t_str()), ("Age", t_int()));
        assert_eq!(le(&small, &big), Partial::Known(true));
        assert_eq!(le(&big, &small), Partial::Known(false));
        // Nested deletion: [Name:[Last:string]] ≤ [Name:[First,Last], Salary]
        let nested_small = t_record([("Name".into(), t_record([("Last".into(), t_str())]))]);
        let nested_big = rec2(
            ("Name", rec2(("First", t_str()), ("Last", t_str()))),
            ("Salary", t_int()),
        );
        assert_eq!(le(&nested_small, &nested_big), Partial::Known(true));
    }

    #[test]
    fn le_variants_keep_labels() {
        let v1 = t_variant([("A".into(), t_record([]))]);
        let v2 = t_variant([("A".into(), t_record([("X".into(), t_int())]))]);
        assert_eq!(le(&v1, &v2), Partial::Known(true));
        let v3 = t_variant([("A".into(), t_record([])), ("B".into(), t_int())]);
        // Different label sets are unordered.
        assert_eq!(le(&v1, &v3), Partial::Known(false));
    }

    #[test]
    fn le_refs_invariant() {
        let r1 = t_ref(rec2(("Name", t_str()), ("Age", t_int())));
        let r2 = t_ref(rec2(("Name", t_str()), ("Age", t_int())));
        let r3 = t_ref(t_record([("Name".into(), t_str())]));
        assert_eq!(le(&r1, &r2), Partial::Known(true));
        assert_eq!(le(&r3, &r1), Partial::Known(false));
    }

    #[test]
    fn le_sets_covariant() {
        let s1 = t_set(t_record([("Name".into(), t_str())]));
        let s2 = t_set(rec2(("Name", t_str()), ("Age", t_int())));
        assert_eq!(le(&s1, &s2), Partial::Known(true));
    }

    #[test]
    fn le_blocked_on_var() {
        let gen = VarGen::new();
        let v = gen.fresh_ty(Kind::Desc, 0);
        assert_eq!(le(&t_int(), &v), Partial::Unknown);
    }

    #[test]
    fn lub_records_union() {
        let a = rec2(
            ("Name", t_record([("First".into(), t_str())])),
            ("Age", t_int()),
        );
        let b = t_record([("Name".into(), t_record([("Last".into(), t_str())]))]);
        let l = lub(&a, &b).unwrap().known().unwrap();
        let expected = rec2(
            ("Name", rec2(("First", t_str()), ("Last", t_str()))),
            ("Age", t_int()),
        );
        assert_eq!(type_eq(&l, &expected), Partial::Known(true));
    }

    #[test]
    fn lub_base_conflict() {
        // [Name:[First:string]] vs [Name:string] — the paper's static error.
        let a = t_record([("Name".into(), t_record([("First".into(), t_str())]))]);
        let b = t_record([("Name".into(), t_str())]);
        assert!(matches!(lub(&a, &b), Err(TypeError::LubUndefined { .. })));
    }

    #[test]
    fn lub_variants_same_labels() {
        let small = t_variant([
            ("BasePart".into(), t_record([])),
            ("CompositePart".into(), t_int()),
        ]);
        let big = t_variant([
            ("BasePart".into(), t_record([("Cost".into(), t_int())])),
            ("CompositePart".into(), t_int()),
        ]);
        let l = lub(&small, &big).unwrap().known().unwrap();
        assert_eq!(type_eq(&l, &big), Partial::Known(true));
        // Different label sets: no bound.
        let other = t_variant([("BasePart".into(), t_record([]))]);
        assert!(lub(&other, &big).is_err());
    }

    #[test]
    fn glb_records_intersect() {
        let student = rec2(("Name", t_str()), ("Advisor", t_int()));
        let employee = rec2(("Name", t_str()), ("Salary", t_int()));
        let g = glb(&student, &employee).unwrap().known().unwrap();
        assert_eq!(
            type_eq(&g, &t_record([("Name".into(), t_str())])),
            Partial::Known(true)
        );
    }

    #[test]
    fn glb_drops_incompatible_labels() {
        let a = rec2(("A", t_int()), ("B", t_str()));
        let b = rec2(("A", t_str()), ("B", t_str()));
        let g = glb(&a, &b).unwrap().known().unwrap();
        assert_eq!(
            type_eq(&g, &t_record([("B".into(), t_str())])),
            Partial::Known(true)
        );
    }

    #[test]
    fn glb_base_mismatch_fails_at_top() {
        assert!(glb(&t_int(), &t_str()).is_err());
        // … but inside a set it also fails (sets cannot drop structure).
        assert!(glb(&t_set(t_int()), &t_set(t_str())).is_err());
    }

    #[test]
    fn lub_equal_recursive_types() {
        let mk = |id: u32| {
            std::rc::Rc::new(Type::Rec(
                id,
                t_variant([
                    ("Nil".into(), t_unit()),
                    (
                        "Cons".into(),
                        t_tuple([t_int(), std::rc::Rc::new(Type::RecVar(id))]),
                    ),
                ]),
            ))
        };
        let l = lub(&mk(0), &mk(1)).unwrap().known().unwrap();
        assert_eq!(type_eq(&l, &mk(2)), Partial::Known(true));
    }

    #[test]
    fn eq_equirecursive_unfolding() {
        let mk = |id: u32| {
            std::rc::Rc::new(Type::Rec(
                id,
                t_variant([
                    ("Nil".into(), t_unit()),
                    (
                        "Cons".into(),
                        t_tuple([t_int(), std::rc::Rc::new(Type::RecVar(id))]),
                    ),
                ]),
            ))
        };
        let r = mk(0);
        assert_eq!(type_eq(&r, &unfold_rec(&r)), Partial::Known(true));
    }
}
