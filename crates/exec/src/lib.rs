//! **The morsel-driven execution scheduler**: the columnar lane's
//! worker pool, shared by whole-pipeline offloads (`plan::physical`)
//! and the partition join/probe (`plan::parallel`).
//!
//! PR 4's parallel shapes carved their input into one fixed chunk per
//! worker, so a skewed filter — one chunk where every row matches, the
//! rest empty — serialized the whole pipeline on the slowest chunk.
//! Here work is cut into **morsels** (fixed-size row ranges,
//! [`machiavelli_value::tuning::morsel_rows`] rows each) seeded
//! round-robin onto per-worker deques; a worker that drains its own
//! deque **steals** from the others (`crossbeam::deque`), so the
//! pipeline finishes when the *total* work is done, not when the
//! unluckiest worker does.
//!
//! The scheduler is deliberately generic: it runs closures over
//! `Send` tasks and returns results **in task order** (so callers that
//! concatenate per-morsel row indices recover ascending — canonical —
//! row order no matter which worker ran what). Everything
//! value-semantic stays with the caller: `plan` compiles filters and
//! keys down to per-row closures over a
//! [`machiavelli_value::plain::ColumnarRelation`] snapshot, and only
//! surviving row indices travel back.
//!
//! Worker discipline matches the rest of the workspace:
//!
//! * spawns are **fallible** ([`crossbeam::thread::Scope::try_spawn`],
//!   plus the seeded [`machiavelli_value::faults::spawn_denied`] fail
//!   point) — a denied worker's deque is simply drained by the
//!   surviving workers through the same stealing path, degrading
//!   smoothly down to the coordinator running everything;
//! * worker panics propagate to the coordinator when the scope joins
//!   (callers wrap scheduler runs in `catch_unwind`, as
//!   `plan::physical::run_par` does);
//! * per-run morsel totals are aggregated on the coordinating thread
//!   and recorded once via [`machiavelli_value::tuning::note_morsels`]
//!   — worker threads never touch session thread-locals.

use crossbeam::deque::{Steal, Stealer, Worker};
use machiavelli_value::plain::ColumnarRelation;
use machiavelli_value::{faults, tuning};

/// A fixed-size range of rows — the scheduler's unit of work (and of
/// stealing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Morsel {
    /// First row index (inclusive).
    pub start: usize,
    /// Past-the-end row index.
    pub end: usize,
}

impl Morsel {
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Cut `rows` rows into morsels of the configured size
/// ([`tuning::morsel_rows`]), in range order.
pub fn morsels(rows: usize) -> Vec<Morsel> {
    morsels_of(rows, tuning::morsel_rows())
}

/// Cut `rows` rows into morsels of `size` rows each (the last may be
/// shorter).
pub fn morsels_of(rows: usize, size: usize) -> Vec<Morsel> {
    let size = size.max(1);
    (0..rows.div_ceil(size))
        .map(|i| Morsel {
            start: i * size,
            end: ((i + 1) * size).min(rows),
        })
        .collect()
}

/// What one scheduler run did: how many tasks ran, and how many of
/// them ran on a worker other than the one they were seeded to.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Tasks executed (across all workers).
    pub executed: u64,
    /// Tasks a worker stole from another worker's deque.
    pub stolen: u64,
}

/// Run `tasks` across up to `threads` work-stealing workers, returning
/// the results **in task order** plus the run's morsel totals (also
/// recorded in this thread's [`tuning::ExecStats`]).
///
/// `init` runs once per worker thread before its task loop (the
/// coordinator included) and its value is threaded mutably through
/// every task that worker executes — the hook callers use to install
/// guard/fault context on workers (`WorkerCx::enter`-style; the value
/// drops, restoring, when the worker's loop ends).
///
/// `threads == 1` (or a single task) runs inline on the caller's
/// thread with no scope at all.
pub fn run_tasks<T, R, S, I, F>(threads: usize, tasks: Vec<T>, init: I, f: F) -> (Vec<R>, RunStats)
where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    let n_tasks = tasks.len();
    if n_tasks == 0 {
        return (Vec::new(), RunStats::default());
    }
    let threads = threads.clamp(1, n_tasks);
    if threads == 1 {
        let mut state = init();
        let results: Vec<R> = tasks.into_iter().map(|t| f(&mut state, t)).collect();
        drop(state);
        let stats = RunStats {
            executed: n_tasks as u64,
            stolen: 0,
        };
        tuning::note_morsels(stats.executed, stats.stolen);
        return (results, stats);
    }

    // Seed the deques round-robin: task i belongs to worker i % threads
    // until someone steals it.
    let queues: Vec<Worker<(usize, T)>> = (0..threads).map(|_| Worker::new_fifo()).collect();
    for (i, t) in tasks.into_iter().enumerate() {
        queues[i % threads].push((i, t));
    }
    let stealers: Vec<Stealer<(usize, T)>> = queues.iter().map(Worker::stealer).collect();
    let stealers = &stealers;
    let init = &init;
    let f = &f;

    let mut queues = queues.into_iter();
    let own = queues.next().expect("threads >= 1");
    let (mut merged, mut stats) = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads - 1);
        for (wid, queue) in queues.enumerate() {
            let wid = wid + 1;
            // A denied spawn just drops this Worker handle: its seeded
            // tasks stay alive behind the stealer Arcs and the
            // surviving workers drain them — the same work, fewer
            // hands.
            if faults::spawn_denied() {
                continue;
            }
            let h = scope.try_spawn(move |_| worker_loop(wid, queue, stealers, init, f));
            if h.is_err() {
                continue;
            }
            handles.push(h.expect("checked"));
        }
        // The coordinator is worker 0.
        let (mut merged, mut executed, mut stolen) = worker_loop(0, own, stealers, init, f);
        for h in handles {
            match h.join() {
                Ok((part, ex, st)) => {
                    merged.extend(part);
                    executed += ex;
                    stolen += st;
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        (merged, RunStats { executed, stolen })
    })
    .expect("shim scope never errors");

    debug_assert_eq!(merged.len(), n_tasks, "every task ran exactly once");
    stats.executed = merged.len() as u64;
    merged.sort_unstable_by_key(|(i, _)| *i);
    let results = merged.into_iter().map(|(_, r)| r).collect();
    tuning::note_morsels(stats.executed, stats.stolen);
    (results, stats)
}

/// One worker's task loop: drain the own deque first, then steal from
/// the others (scanning from the next worker around) until every deque
/// answers `Empty` in a full pass.
fn worker_loop<T, R, S, I, F>(
    wid: usize,
    own: Worker<(usize, T)>,
    stealers: &[Stealer<(usize, T)>],
    init: &I,
    f: &F,
) -> (Vec<(usize, R)>, u64, u64)
where
    I: Fn() -> S,
    F: Fn(&mut S, T) -> R,
{
    let mut state = init();
    let mut out = Vec::new();
    let (mut executed, mut stolen) = (0u64, 0u64);
    loop {
        if let Some((i, t)) = own.pop() {
            out.push((i, f(&mut state, t)));
            executed += 1;
            continue;
        }
        let mut found = None;
        let mut contended = false;
        for off in 1..stealers.len() {
            let victim = (wid + off) % stealers.len();
            match stealers[victim].steal() {
                Steal::Success(task) => {
                    found = Some(task);
                    break;
                }
                Steal::Retry => contended = true,
                Steal::Empty => {}
            }
        }
        match found {
            Some((i, t)) => {
                out.push((i, f(&mut state, t)));
                executed += 1;
                stolen += 1;
            }
            None if contended => std::thread::yield_now(),
            None => break,
        }
    }
    (out, executed, stolen)
}

/// Morsel-parallel filter over a [`ColumnarRelation`]: run `pred` for
/// every row index, returning the **ascending** indices of surviving
/// rows (per-morsel survivor lists concatenate in morsel order). The
/// per-worker `init` hook is threaded through as in [`run_tasks`];
/// `pred` returning `None` poisons the whole run (a runtime decline —
/// live data the plain evaluator cannot handle), reported as `None` so
/// the caller can fall back sequentially.
pub fn filter_indices<S, I, P>(
    threads: usize,
    snapshot: &ColumnarRelation,
    init: I,
    pred: P,
) -> (Option<Vec<u32>>, RunStats)
where
    I: Fn() -> S + Sync,
    P: Fn(&mut S, usize) -> Option<bool> + Sync,
{
    let tasks = morsels(snapshot.len());
    let (parts, stats) = run_tasks(threads, tasks, init, |state, m: Morsel| {
        let mut keep = Vec::new();
        for i in m.start..m.end {
            match pred(state, i) {
                Some(true) => keep.push(i as u32),
                Some(false) => {}
                None => return None,
            }
        }
        Some(keep)
    });
    let mut all = Vec::new();
    for part in parts {
        match part {
            Some(mut keep) => all.append(&mut keep),
            None => {
                // A poisoned morsel is the lane's runtime decline;
                // reported on the coordinator (= session) thread so the
                // typed code lands in the session's decline counts.
                machiavelli_trace::note_decline(
                    machiavelli_trace::DeclineReason::ColumnarRuntimeDecline,
                );
                return (None, stats);
            }
        }
    }
    (Some(all), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use machiavelli_value::{MSet, Value};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn morsels_cover_the_range_exactly_once() {
        let ms = morsels_of(10, 3);
        assert_eq!(
            ms,
            vec![
                Morsel { start: 0, end: 3 },
                Morsel { start: 3, end: 6 },
                Morsel { start: 6, end: 9 },
                Morsel { start: 9, end: 10 },
            ]
        );
        assert_eq!(ms.iter().map(Morsel::len).sum::<usize>(), 10);
        assert!(morsels_of(0, 4).is_empty());
        // A zero size clamps rather than looping forever.
        assert_eq!(morsels_of(2, 0).len(), 2);
    }

    #[test]
    fn results_come_back_in_task_order_at_any_thread_count() {
        for threads in [1, 2, 4, 8] {
            let tasks: Vec<usize> = (0..37).collect();
            let (results, stats) = run_tasks(threads, tasks, || (), |_, t| t * 2);
            assert_eq!(results, (0..37).map(|t| t * 2).collect::<Vec<_>>());
            assert_eq!(stats.executed, 37);
        }
    }

    #[test]
    fn skewed_tasks_get_stolen() {
        // Worker 0's seeded tasks (even indices) are slow; the other
        // worker finishes its own and must steal to let the run end.
        // (Even time-sliced on one core, worker 1 drains its fast deque
        // while worker 0 sits inside a sleep.)
        let tasks: Vec<usize> = (0..16).collect();
        let (results, stats) = run_tasks(
            2,
            tasks,
            || (),
            |_, t| {
                if t % 2 == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(3));
                }
                t
            },
        );
        assert_eq!(results, (0..16).collect::<Vec<_>>());
        assert_eq!(stats.executed, 16);
        assert!(stats.stolen > 0, "{stats:?}");
    }

    #[test]
    fn init_runs_once_per_worker_and_threads_state() {
        let inits = AtomicUsize::new(0);
        let (results, _) = run_tasks(
            3,
            (0..30).collect::<Vec<usize>>(),
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                0usize
            },
            |seen, t| {
                *seen += 1;
                t
            },
        );
        assert_eq!(results.len(), 30);
        let n = inits.load(Ordering::SeqCst);
        assert!((1..=3).contains(&n), "one init per live worker, got {n}");
    }

    #[test]
    fn empty_task_list_is_a_no_op() {
        let (results, stats) = run_tasks::<usize, usize, _, _, _>(4, Vec::new(), || (), |_, t| t);
        assert!(results.is_empty());
        assert_eq!(stats, RunStats::default());
    }

    #[test]
    fn worker_panics_propagate_to_the_coordinator() {
        let caught = std::panic::catch_unwind(|| {
            run_tasks(
                2,
                (0..64).collect::<Vec<usize>>(),
                || (),
                |_, t| {
                    if t == 13 {
                        panic!("boom at {t}");
                    }
                    t
                },
            )
        });
        assert!(caught.is_err());
    }

    #[test]
    fn filter_indices_returns_ascending_survivors() {
        let set = MSet::from_iter((0..100).map(Value::Int));
        let snap = ColumnarRelation::from_set(&set).unwrap();
        let prev = tuning::set_morsel_rows(Some(7));
        for threads in [1, 2, 4] {
            let (keep, stats) = filter_indices(threads, &snap, || (), |_, i| Some(i % 3 == 0));
            let keep = keep.expect("no decline");
            assert_eq!(keep, (0..100u32).filter(|i| i % 3 == 0).collect::<Vec<_>>());
            assert_eq!(stats.executed, 100u64.div_ceil(7));
        }
        tuning::set_morsel_rows(prev);
    }

    #[test]
    fn filter_decline_poisons_the_run() {
        let set = MSet::from_iter((0..50).map(Value::Int));
        let snap = ColumnarRelation::from_set(&set).unwrap();
        let (keep, _) = filter_indices(2, &snap, || (), |_, i| (i != 31).then_some(true));
        assert!(keep.is_none());
    }

    #[test]
    fn denied_spawns_degrade_to_fewer_workers() {
        let prev = faults::set_fault_config(Some(faults::FaultConfig {
            // Deny every spawn: the coordinator drains all deques
            // through the stealing path.
            spawn_fail_ppm: 1_000_000,
            ..faults::FaultConfig::off()
        }));
        let (results, stats) = run_tasks(4, (0..20).collect::<Vec<usize>>(), || (), |_, t| t + 1);
        faults::set_fault_config(prev);
        assert_eq!(results, (1..=20).collect::<Vec<_>>());
        assert_eq!(stats.executed, 20);
    }

    #[test]
    fn run_records_morsel_totals_in_exec_stats() {
        tuning::reset_exec_stats();
        let (_, stats) = run_tasks(2, (0..9).collect::<Vec<usize>>(), || (), |_, t| t);
        let s = tuning::exec_stats();
        assert_eq!(s.morsels_executed, 9);
        assert_eq!(s.morsels_stolen, stats.stolen);
        tuning::reset_exec_stats();
    }
}
