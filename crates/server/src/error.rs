//! Structured server errors.
//!
//! Every failure a hosted query can experience maps onto exactly one of
//! these variants, so clients can distinguish "your query was wrong"
//! ([`ServerError::Query`]) from "the server protected itself"
//! (admission, deadlines, budgets) from "your session is gone"
//! (panic poisoning). None of them abort the process.

use machiavelli_value::governor::Trip;
use std::fmt;

/// A structured error from the session server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// Admission control shed the request: the target worker's queue
    /// was full. The request was never enqueued; retry later.
    Busy,
    /// The session id is not open on this server.
    NoSuchSession(u64),
    /// A previous query panicked inside this session; the session is
    /// poisoned and only `close` is accepted for it.
    SessionPoisoned(u64),
    /// This query panicked inside the evaluator. The panic was caught
    /// on the worker; the session is now poisoned, the server and all
    /// other sessions are unaffected.
    SessionPanicked(String),
    /// The query exceeded its deadline and was stopped cooperatively.
    DeadlineExceeded,
    /// The query was cancelled by the client.
    Cancelled,
    /// The query exceeded the per-query row budget.
    RowBudgetExceeded,
    /// An ordinary query failure (parse, type, or runtime error),
    /// pre-rendered by the session.
    Query(String),
    /// The worker could not construct the session (prelude failure).
    SessionInit(String),
    /// The session's write-ahead log rejected a commit, checkpoint, or
    /// recovery (torn write, failed sync, corrupt file). Fail-hard:
    /// the session is poisoned rather than allowed to drift from its
    /// durable state, and `RESTORE` re-materializes it from disk.
    Durability(String),
    /// The server is shutting down (or the worker backing this session
    /// failed to start and requests to it cannot be served).
    Shutdown,
    /// This server is a read-only follower: the request would write
    /// (a `val`/`fun` declaration, a `:=` assignment, or a `SAVE`) and
    /// writes belong on the primary.
    ReadOnly,
    /// A shipped commit group carried a stale generation — a fenced old
    /// primary replaying after a promotion. Rejected whole.
    StaleGeneration { got: u64, have: u64 },
    /// A replication transfer failed (diverged follower, bad transfer
    /// payload, or a replication request against a non-durable server).
    Replication(String),
    /// A request line exceeded the server's line cap
    /// (`MACHID_MAX_LINE_BYTES`); the oversized line was discarded and
    /// the connection stays usable.
    LineTooLong(usize),
}

impl ServerError {
    /// A stable machine-readable tag for the wire protocol.
    pub fn kind(&self) -> &'static str {
        match self {
            ServerError::Busy => "busy",
            ServerError::NoSuchSession(_) => "no-such-session",
            ServerError::SessionPoisoned(_) => "session-poisoned",
            ServerError::SessionPanicked(_) => "session-panicked",
            ServerError::DeadlineExceeded => "deadline",
            ServerError::Cancelled => "cancelled",
            ServerError::RowBudgetExceeded => "row-budget",
            ServerError::Query(_) => "query",
            ServerError::SessionInit(_) => "session-init",
            ServerError::Durability(_) => "durability",
            ServerError::Shutdown => "shutdown",
            ServerError::ReadOnly => "read-only",
            ServerError::StaleGeneration { .. } => "stale-generation",
            ServerError::Replication(_) => "replication",
            ServerError::LineTooLong(_) => "protocol",
        }
    }

    /// Maps a governor trip onto its server-level error.
    pub fn from_trip(trip: Trip) -> ServerError {
        match trip {
            Trip::Cancelled => ServerError::Cancelled,
            Trip::DeadlineExceeded => ServerError::DeadlineExceeded,
            Trip::RowBudgetExceeded => ServerError::RowBudgetExceeded,
        }
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Busy => write!(f, "server busy: admission queue full"),
            ServerError::NoSuchSession(sid) => write!(f, "no such session: {sid}"),
            ServerError::SessionPoisoned(sid) => {
                write!(f, "session {sid} is poisoned by an earlier panic")
            }
            ServerError::SessionPanicked(msg) => write!(f, "session panicked: {msg}"),
            ServerError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            ServerError::Cancelled => write!(f, "query cancelled"),
            ServerError::RowBudgetExceeded => write!(f, "query row budget exceeded"),
            ServerError::Query(msg) => write!(f, "{msg}"),
            ServerError::SessionInit(msg) => write!(f, "session init failed: {msg}"),
            ServerError::Durability(msg) => write!(f, "durability failure: {msg}"),
            ServerError::Shutdown => write!(f, "server is shut down"),
            ServerError::ReadOnly => {
                write!(
                    f,
                    "this server is a read-only follower; write on the primary"
                )
            }
            ServerError::StaleGeneration { got, have } => write!(
                f,
                "stale generation: shipped group stamped gen {got}, log is at gen {have}"
            ),
            ServerError::Replication(msg) => write!(f, "replication failure: {msg}"),
            ServerError::LineTooLong(cap) => {
                write!(
                    f,
                    "line-too-long: request exceeded {cap} bytes and was discarded"
                )
            }
        }
    }
}

impl std::error::Error for ServerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct_and_stable() {
        let all = [
            ServerError::Busy,
            ServerError::NoSuchSession(1),
            ServerError::SessionPoisoned(1),
            ServerError::SessionPanicked("x".into()),
            ServerError::DeadlineExceeded,
            ServerError::Cancelled,
            ServerError::RowBudgetExceeded,
            ServerError::Query("x".into()),
            ServerError::SessionInit("x".into()),
            ServerError::Durability("x".into()),
            ServerError::Shutdown,
            ServerError::ReadOnly,
            ServerError::StaleGeneration { got: 0, have: 1 },
            ServerError::Replication("x".into()),
            ServerError::LineTooLong(1024),
        ];
        let mut kinds: Vec<_> = all.iter().map(|e| e.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), all.len(), "every variant has a unique kind");
    }

    #[test]
    fn trips_map_onto_their_errors() {
        assert_eq!(
            ServerError::from_trip(Trip::DeadlineExceeded),
            ServerError::DeadlineExceeded
        );
        assert_eq!(
            ServerError::from_trip(Trip::Cancelled),
            ServerError::Cancelled
        );
        assert_eq!(
            ServerError::from_trip(Trip::RowBudgetExceeded),
            ServerError::RowBudgetExceeded
        );
    }
}
