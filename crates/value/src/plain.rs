//! The **plain-value lane**: a `Send + Sync` mirror of the *data* subset
//! of [`Value`], so proper `hom` applications and partition-parallel
//! joins can cross thread boundaries.
//!
//! [`Value`] is deliberately `Rc`-based and thread-confined; the paper's
//! claim that proper `hom` applications are "computable in parallel"
//! therefore needs an extraction step. [`PlainValue`] covers exactly the
//! constructors whose meaning is *structural* — Unit/Int/Real/Str/Bool,
//! records, variants, sets — with `Arc`/owned storage (interned
//! [`Symbol`] labels carry over unchanged: they wrap `&'static str`).
//! The identity-bearing and code-bearing constructors (`Ref`, `Dynamic`,
//! `Closure`, `Op`, `Builtin`) have **no** plain form: [`to_plain`]
//! returns `None` for them and every caller falls back to the
//! sequential `Rc` path — the same classify-then-parallelize strategy
//! the planner uses for predicates.
//!
//! # Consistency contract
//!
//! On the extractable subset the plain operations agree *exactly* with
//! their `Value` counterparts (property-tested in `tests/properties.rs`):
//!
//! * [`from_plain`]`(`[`to_plain`]`(v)) == v` (structural round trip);
//! * [`plain_cmp`] agrees with [`value_cmp`] (so plain sets stay in the
//!   canonical order and [`from_plain`] can rebuild them unchecked);
//! * [`plain_hash`] produces the same digest as
//!   [`hash_value`](crate::hash_value) (same discriminant bytes, same
//!   payload encoding), so keys computed in either lane group rows
//!   identically.

use crate::set::MSet;
use crate::value::{Fields, Symbol, Value};
use std::cmp::Ordering;
use std::hash::Hasher;
use std::sync::Arc;

/// A thread-shareable description value: the data subset of [`Value`]
/// with `Arc`/owned storage. Clones are O(1) for containers.
#[derive(Debug, Clone)]
pub enum PlainValue {
    Unit,
    Int(i64),
    Real(f64),
    Str(Arc<str>),
    Bool(bool),
    /// Label-sorted entries, exactly like [`Fields`].
    Record(Arc<[(Symbol, PlainValue)]>),
    Variant(Symbol, Arc<PlainValue>),
    /// Canonical (sorted, deduplicated) elements, exactly like
    /// [`MSet`].
    Set(Arc<[PlainValue]>),
}

// The compiler derives these, but the claim is load-bearing enough to
// state: a PlainValue can cross threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PlainValue>();
};

/// Extract the plain mirror of `v`, or `None` when `v` (or anything
/// inside it) is identity- or code-bearing (`Ref`, `Dynamic`,
/// `Closure`, `Op`, `Builtin`) — the caller's cue to take its
/// sequential path.
pub fn to_plain(v: &Value) -> Option<PlainValue> {
    Some(match v {
        Value::Unit => PlainValue::Unit,
        Value::Int(n) => PlainValue::Int(*n),
        Value::Real(r) => PlainValue::Real(*r),
        Value::Str(s) => PlainValue::Str(Arc::from(&**s)),
        Value::Bool(b) => PlainValue::Bool(*b),
        Value::Record(fs) => {
            // `Fields` entries are label-sorted; the order carries over.
            let entries: Option<Vec<(Symbol, PlainValue)>> = fs
                .entries()
                .iter()
                .map(|(l, fv)| Some((*l, to_plain(fv)?)))
                .collect();
            PlainValue::Record(entries?.into())
        }
        Value::Variant(l, p) => PlainValue::Variant(*l, Arc::new(to_plain(p)?)),
        Value::Set(items) => {
            // Canonical order carries over (plain_cmp agrees with
            // value_cmp on the extractable subset).
            let items: Option<Vec<PlainValue>> = items.iter().map(to_plain).collect();
            PlainValue::Set(items?.into())
        }
        Value::Ref(_)
        | Value::Dynamic(_)
        | Value::Closure(_)
        | Value::Op(_)
        | Value::Builtin(_) => return None,
    })
}

/// Rebuild the `Rc`-lane value. Total: every plain value has a `Value`
/// form, and `from_plain(to_plain(v)) == v` structurally.
pub fn from_plain(p: &PlainValue) -> Value {
    match p {
        PlainValue::Unit => Value::Unit,
        PlainValue::Int(n) => Value::Int(*n),
        PlainValue::Real(r) => Value::Real(*r),
        PlainValue::Str(s) => Value::str(&**s),
        PlainValue::Bool(b) => Value::Bool(*b),
        PlainValue::Record(entries) => Value::Record(Fields::from_sorted_vec(
            entries.iter().map(|(l, fv)| (*l, from_plain(fv))).collect(),
        )),
        PlainValue::Variant(l, p) => Value::variant(*l, from_plain(p)),
        PlainValue::Set(items) => Value::Set(MSet::from_sorted_unchecked(
            items.iter().map(from_plain).collect(),
        )),
    }
}

fn rank(p: &PlainValue) -> u8 {
    // The same constructor ranks as `Value::rank` (the missing
    // constructors — refs, dynamics, functions — have no plain form).
    match p {
        PlainValue::Unit => 0,
        PlainValue::Bool(_) => 1,
        PlainValue::Int(_) => 2,
        PlainValue::Real(_) => 3,
        PlainValue::Str(_) => 4,
        PlainValue::Record(_) => 5,
        PlainValue::Variant(..) => 6,
        PlainValue::Set(_) => 7,
    }
}

/// Total order on plain values, agreeing with [`value_cmp`] on the
/// extractable subset (reals via IEEE `total_cmp`).
pub fn plain_cmp(a: &PlainValue, b: &PlainValue) -> Ordering {
    use PlainValue::*;
    let rank_cmp = rank(a).cmp(&rank(b));
    if rank_cmp != Ordering::Equal {
        return rank_cmp;
    }
    match (a, b) {
        (Unit, Unit) => Ordering::Equal,
        (Bool(x), Bool(y)) => x.cmp(y),
        (Int(x), Int(y)) => x.cmp(y),
        (Real(x), Real(y)) => x.total_cmp(y),
        (Str(x), Str(y)) => x.cmp(y),
        (Record(xs), Record(ys)) => {
            for ((lx, vx), (ly, vy)) in xs.iter().zip(ys.iter()) {
                let lc = lx.cmp(ly);
                if lc != Ordering::Equal {
                    return lc;
                }
                let vc = plain_cmp(vx, vy);
                if vc != Ordering::Equal {
                    return vc;
                }
            }
            xs.len().cmp(&ys.len())
        }
        (Variant(lx, px), Variant(ly, py)) => {
            let lc = lx.cmp(ly);
            if lc != Ordering::Equal {
                return lc;
            }
            plain_cmp(px, py)
        }
        (Set(xs), Set(ys)) => {
            for (x, y) in xs.iter().zip(ys.iter()) {
                let c = plain_cmp(x, y);
                if c != Ordering::Equal {
                    return c;
                }
            }
            xs.len().cmp(&ys.len())
        }
        _ => unreachable!("rank() already discriminated"),
    }
}

/// Structural equality, agreeing with `value_eq` on the extractable
/// subset.
pub fn plain_eq(a: &PlainValue, b: &PlainValue) -> bool {
    plain_cmp(a, b) == Ordering::Equal
}

impl PartialEq for PlainValue {
    fn eq(&self, other: &Self) -> bool {
        plain_eq(self, other)
    }
}
impl Eq for PlainValue {}

impl PartialOrd for PlainValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PlainValue {
    fn cmp(&self, other: &Self) -> Ordering {
        plain_cmp(self, other)
    }
}

/// Feed the structural hash of `p` into `state` — byte-for-byte the
/// encoding of [`hash_value`](crate::hash_value) on the extractable
/// subset, so keys computed in either lane land in the same hash
/// partition/group.
pub fn plain_hash<H: Hasher>(p: &PlainValue, state: &mut H) {
    match p {
        PlainValue::Unit => state.write_u8(0),
        PlainValue::Bool(b) => {
            state.write_u8(1);
            state.write_u8(u8::from(*b));
        }
        PlainValue::Int(n) => {
            state.write_u8(2);
            state.write_i64(*n);
        }
        PlainValue::Real(r) => {
            state.write_u8(3);
            state.write_u64(r.to_bits());
        }
        PlainValue::Str(s) => {
            state.write_u8(4);
            state.write(s.as_bytes());
            state.write_u8(0xff);
        }
        PlainValue::Record(entries) => {
            state.write_u8(5);
            state.write_usize(entries.len());
            for (l, fv) in entries.iter() {
                state.write_usize(l.id());
                plain_hash(fv, state);
            }
        }
        PlainValue::Variant(l, p) => {
            state.write_u8(6);
            state.write_usize(l.id());
            plain_hash(p, state);
        }
        PlainValue::Set(items) => {
            state.write_u8(7);
            state.write_usize(items.len());
            for item in items.iter() {
                plain_hash(item, state);
            }
        }
    }
}

/// Structural equality between a plain value and an `Rc`-lane value
/// **without extracting** — no allocation, agreeing with
/// `value_eq(from_plain(p), v)`: identity- or code-bearing values
/// (which have no plain form) compare unequal to everything plain.
/// This is what lets a sequential probe look up a plain index with its
/// borrowed `Rc`-lane key values directly.
pub fn plain_matches_value(p: &PlainValue, v: &Value) -> bool {
    match (p, v) {
        (PlainValue::Unit, Value::Unit) => true,
        (PlainValue::Bool(a), Value::Bool(b)) => a == b,
        (PlainValue::Int(a), Value::Int(b)) => a == b,
        // Bit equality = `total_cmp` equality, the value order's rule.
        (PlainValue::Real(a), Value::Real(b)) => a.to_bits() == b.to_bits(),
        (PlainValue::Str(a), Value::Str(b)) => **a == **b,
        (PlainValue::Record(ps), Value::Record(fs)) => {
            // Both sides are label-sorted.
            let fs = fs.entries();
            ps.len() == fs.len()
                && ps
                    .iter()
                    .zip(fs.iter())
                    .all(|((pl, pv), (fl, fv))| pl.id() == fl.id() && plain_matches_value(pv, fv))
        }
        (PlainValue::Variant(pl, pp), Value::Variant(vl, vp)) => {
            pl.id() == vl.id() && plain_matches_value(pp, vp)
        }
        (PlainValue::Set(ps), Value::Set(vs)) => {
            // Both sides are canonical (sorted, deduplicated).
            ps.len() == vs.len()
                && ps
                    .iter()
                    .zip(vs.iter())
                    .all(|(pv, vv)| plain_matches_value(pv, vv))
        }
        _ => false,
    }
}

// --- plain-keyed indexes ---------------------------------------------------

/// A composite join/index key in the plain lane: the extracted values
/// of a grouping's key expressions, in key order. Single keys — the
/// dominant equi-join shape — skip the vector, so extracting a probe
/// key allocates nothing beyond the plain value itself. Hashes via
/// [`plain_hash`] and compares via [`plain_eq`] (`One(v)` and
/// `Tuple([v])` are the same key), so a key computed on the `Rc` lane
/// and extracted with [`to_plain`] lands in exactly the group an
/// `Rc`-lane `KeyTuple` probe would find.
#[derive(Debug, Clone)]
pub enum PlainKey {
    One(PlainValue),
    Tuple(Vec<PlainValue>),
}

impl std::hash::Hash for PlainKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            PlainKey::One(v) => plain_hash(v, state),
            PlainKey::Tuple(vs) => {
                for v in vs {
                    plain_hash(v, state);
                }
            }
        }
    }
}

impl PartialEq for PlainKey {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (PlainKey::One(a), PlainKey::One(b)) => plain_eq(a, b),
            (PlainKey::Tuple(a), PlainKey::Tuple(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| plain_eq(x, y))
            }
            // Builders and probes agree on arity; kept total anyway
            // (and consistent with the arity-blind hash above).
            (PlainKey::One(a), PlainKey::Tuple(b)) | (PlainKey::Tuple(b), PlainKey::One(a)) => {
                b.len() == 1 && plain_eq(a, &b[0])
            }
        }
    }
}

impl Eq for PlainKey {}

/// The digest function of [`PlainIndex`]: an FxHash-style
/// multiply-rotate mix.
/// Index probes hash one key per probe row, squarely on the join hot
/// path — a keyed cryptographic hash (SipHash, the `HashMap` default)
/// costs more than the lookup itself for small keys. Keys reach the
/// table only through [`plain_hash`], whose word-sized writes this
/// hasher mixes one multiply each.
#[derive(Debug, Default, Clone)]
pub struct PlainKeyHasher(u64);

impl PlainKeyHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        // The Firefox/rustc "Fx" mix: rotate, xor, multiply by a
        // golden-ratio-derived odd constant.
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
}

impl Hasher for PlainKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(word));
        }
    }
    fn write_u8(&mut self, n: u8) {
        self.mix(n as u64);
    }
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }
    fn write_i64(&mut self, n: i64) {
        self.mix(n as u64);
    }
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// Pass-through hasher for digest-keyed maps: the key *is* a
/// high-quality digest already.
#[derive(Debug, Default, Clone)]
pub struct DigestHasher(u64);

impl Hasher for DigestHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("digest maps hash via write_u64 only");
    }
    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

/// The digest of a plain key under [`PlainKeyHasher`].
pub fn plain_key_digest(key: &PlainKey) -> u64 {
    let mut h = PlainKeyHasher::default();
    std::hash::Hash::hash(key, &mut h);
    h.finish()
}

/// The digest of an `Rc`-lane key tuple under the same hasher —
/// [`crate::hash_value`] feeds the hasher byte-for-byte what
/// [`plain_hash`] feeds it (the cross-lane consistency contract above),
/// so a value-side probe lands in exactly the plain key's bucket. Like
/// [`PlainKey`]'s arity-blind hash, a 1-tuple digests as its single
/// component.
pub fn value_key_digest(key: &[Value]) -> u64 {
    let mut h = PlainKeyHasher::default();
    for v in key {
        crate::hash::hash_value(v, &mut h);
    }
    h.finish()
}

/// A **plain-keyed structural index**: a relation's rows grouped by key
/// value, in plain (`Send + Sync`) form, so a *cached* index can be
/// probed by parallel workers directly — the composition PR 3's store
/// and PR 4's parallel lane previously excluded.
///
/// `rows` is the plain snapshot of the indexed relation in canonical
/// (sorted-set) order — the index is self-contained on the plain lane:
/// a worker holding an `Arc<PlainIndex>` can inspect both groups and
/// row payloads without touching `Rc` data. Groups map each key to the
/// **indices** of its rows, ascending (= canonical source order, the
/// same order an inline `Rc`-lane build yields groups in); the executor
/// re-binds matches by index into the *original* `Rc`-lane relation on
/// the session thread, so no value ever needs converting back.
///
/// Internally groups are bucketed by **digest** with the (rare)
/// collisions chained, which gives the index two equally cheap probe
/// forms: [`PlainIndex::get`] for extracted plain keys (the parallel
/// workers) and [`PlainIndex::get_by_values`] for borrowed `Rc`-lane
/// key values (the sequential probe) — the latter compares via
/// [`plain_matches_value`] and never converts or allocates.
///
/// A `PlainIndex` exists only for relations whose every row extracts
/// via [`to_plain`]; relations carrying identity- or code-bearing data
/// stay on the `Rc`-lane index representation (sequential probes only).
/// Digest → the key groups sharing it (nearly always exactly one).
type DigestBuckets = std::collections::HashMap<
    u64,
    Vec<(PlainKey, Vec<u32>)>,
    std::hash::BuildHasherDefault<DigestHasher>,
>;

#[derive(Debug)]
pub struct PlainIndex {
    /// Plain snapshot of the relation, canonical set order.
    pub rows: Arc<[PlainValue]>,
    buckets: DigestBuckets,
    groups: usize,
}

impl PlainIndex {
    /// Assemble from a row snapshot and (key, ascending row indices)
    /// groups. Keys are expected distinct (they come from a `HashMap`
    /// keyed by structural equality).
    pub fn from_groups(
        rows: Arc<[PlainValue]>,
        groups: impl IntoIterator<Item = (PlainKey, Vec<u32>)>,
    ) -> PlainIndex {
        let groups = groups.into_iter();
        let mut buckets =
            DigestBuckets::with_capacity_and_hasher(groups.size_hint().0, Default::default());
        let mut n = 0usize;
        for (key, idxs) in groups {
            n += 1;
            buckets
                .entry(plain_key_digest(&key))
                .or_insert_with(|| Vec::with_capacity(1))
                .push((key, idxs));
        }
        PlainIndex {
            rows,
            buckets,
            groups: n,
        }
    }

    /// The matching row indices for an extracted plain key (empty when
    /// absent).
    pub fn get(&self, key: &PlainKey) -> &[u32] {
        match self.buckets.get(&plain_key_digest(key)) {
            Some(bucket) => bucket
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, idxs)| idxs.as_slice())
                .unwrap_or(&[]),
            None => &[],
        }
    }

    /// The matching row indices for a borrowed `Rc`-lane key tuple,
    /// compared structurally without extraction (a key with no plain
    /// form — an identity-bearing `ref`/`dynamic` — can equal no plain
    /// key, so it simply finds nothing).
    pub fn get_by_values(&self, key: &[Value]) -> &[u32] {
        let matches = |k: &PlainKey| match (k, key) {
            (PlainKey::One(p), [v]) => plain_matches_value(p, v),
            (PlainKey::Tuple(ps), vs) => {
                ps.len() == vs.len()
                    && ps
                        .iter()
                        .zip(vs.iter())
                        .all(|(p, v)| plain_matches_value(p, v))
            }
            _ => false,
        };
        match self.buckets.get(&value_key_digest(key)) {
            Some(bucket) => bucket
                .iter()
                .find(|(k, _)| matches(k))
                .map(|(_, idxs)| idxs.as_slice())
                .unwrap_or(&[]),
            None => &[],
        }
    }

    /// Distinct key groups.
    pub fn group_count(&self) -> usize {
        self.groups
    }

    /// Total rows held across all groups.
    pub fn indexed_rows(&self) -> usize {
        self.buckets
            .values()
            .flat_map(|b| b.iter())
            .map(|(_, idxs)| idxs.len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.groups == 0
    }
}

// The whole point of the plain representation: a cached index can be
// shared with worker threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PlainIndex>();
};

// --- columnar snapshots ----------------------------------------------------

/// One column of a record relation: the field's plain value for every
/// row, in the relation's canonical (sorted-set) order. Cloning a
/// `PlainValue` is O(1) for containers, so decomposing rows into
/// columns shares payloads rather than copying them.
#[derive(Debug)]
pub struct PlainColumn {
    /// The field label every row carries.
    pub name: Symbol,
    /// `values[i]` is row `i`'s value for this field.
    pub values: Arc<[PlainValue]>,
}

/// A whole-relation plain snapshot re-shaped for the columnar lane
/// (`machiavelli-exec`): workers scanning a filter like `x.K = 7` touch
/// only column `K`'s contiguous values instead of chasing every row's
/// field table.
///
/// `rows` — the row-major snapshot in canonical set order — is always
/// present: it is what the session thread re-binds surviving indices
/// from, and the only form for relations whose rows are not uniform
/// records. `columns` is the column-major decomposition, available
/// exactly when every row is a `Record` with the same label sequence
/// (the regular relational case: fig3/fig5/fig9 data). Like
/// [`PlainIndex`], a snapshot exists only for relations whose every row
/// extracts via [`to_plain`] — identity- or code-bearing rows decline
/// the whole lane.
#[derive(Debug)]
pub struct ColumnarRelation {
    /// Plain snapshot of the relation, canonical set order.
    pub rows: Arc<[PlainValue]>,
    /// Column-major decomposition (uniform record relations), or `None`
    /// — the row-major fallback.
    pub columns: Option<Arc<[PlainColumn]>>,
}

impl ColumnarRelation {
    /// Extract a snapshot of `set`, or `None` when any row has no plain
    /// form (the caller's cue to stay on the sequential lane).
    pub fn from_set(set: &MSet) -> Option<ColumnarRelation> {
        let rows: Option<Vec<PlainValue>> = set.iter().map(to_plain).collect();
        Some(ColumnarRelation::from_rows(rows?.into()))
    }

    /// Re-shape an already-extracted row snapshot.
    pub fn from_rows(rows: Arc<[PlainValue]>) -> ColumnarRelation {
        let columns = columnarize(&rows);
        ColumnarRelation { rows, columns }
    }

    /// Rows in the snapshot.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The column for `name`, when the relation decomposed (labels are
    /// sorted, as in [`Fields`]).
    pub fn column(&self, name: Symbol) -> Option<&PlainColumn> {
        let cols = self.columns.as_deref()?;
        cols.binary_search_by(|c| c.name.cmp(&name))
            .ok()
            .map(|i| &cols[i])
    }

    /// Does this snapshot mirror `set` row for row? Compared borrowed
    /// (no extraction) — the shared tier's adoption check.
    pub fn matches_set(&self, set: &MSet) -> bool {
        self.rows.len() == set.len()
            && self
                .rows
                .iter()
                .zip(set.iter())
                .all(|(p, v)| plain_matches_value(p, v))
    }
}

/// Decompose uniform record rows into columns: every row must be a
/// `Record` with the same label sequence (labels are sorted within each
/// row already, so equality of sequences is equality of field sets).
fn columnarize(rows: &[PlainValue]) -> Option<Arc<[PlainColumn]>> {
    let first = match rows.first()? {
        PlainValue::Record(entries) => entries,
        _ => return None,
    };
    let labels: Vec<Symbol> = first.iter().map(|(l, _)| *l).collect();
    let mut cols: Vec<Vec<PlainValue>> = labels
        .iter()
        .map(|_| Vec::with_capacity(rows.len()))
        .collect();
    for row in rows {
        let PlainValue::Record(entries) = row else {
            return None;
        };
        if entries.len() != labels.len()
            || entries.iter().zip(&labels).any(|((l, _), want)| l != want)
        {
            return None;
        }
        for (col, (_, v)) in cols.iter_mut().zip(entries.iter()) {
            col.push(v.clone());
        }
    }
    Some(
        labels
            .into_iter()
            .zip(cols)
            .map(|(name, values)| PlainColumn {
                name,
                values: values.into(),
            })
            .collect(),
    )
}

// Snapshots cross into scheduler workers by construction.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ColumnarRelation>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{value_cmp, value_eq, RefValue};
    use std::collections::hash_map::DefaultHasher;

    fn digest_value(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        crate::hash::hash_value(v, &mut h);
        h.finish()
    }

    fn digest_plain(p: &PlainValue) -> u64 {
        let mut h = DefaultHasher::new();
        plain_hash(p, &mut h);
        h.finish()
    }

    fn sample() -> Value {
        Value::record([
            ("Name".into(), Value::str("Joe")),
            ("Tags".into(), Value::set([Value::Int(2), Value::Int(1)])),
            (
                "Role".into(),
                Value::variant("Employee", Value::record([("Ext".into(), Value::Int(42))])),
            ),
            ("Rate".into(), Value::Real(1.5)),
            ("Active".into(), Value::Bool(true)),
            ("U".into(), Value::Unit),
        ])
    }

    #[test]
    fn round_trip_preserves_structure() {
        let v = sample();
        let p = to_plain(&v).expect("pure data extracts");
        assert!(value_eq(&from_plain(&p), &v));
    }

    #[test]
    fn hash_agrees_across_lanes() {
        let v = sample();
        let p = to_plain(&v).unwrap();
        assert_eq!(digest_value(&v), digest_plain(&p));
    }

    #[test]
    fn cmp_agrees_across_lanes() {
        let vals = [
            Value::Int(1),
            Value::Int(2),
            Value::str("a"),
            Value::Bool(false),
            Value::set([Value::Int(3)]),
            sample(),
        ];
        for a in &vals {
            for b in &vals {
                let (pa, pb) = (to_plain(a).unwrap(), to_plain(b).unwrap());
                assert_eq!(plain_cmp(&pa, &pb), value_cmp(a, b), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn identity_and_code_values_do_not_extract() {
        assert!(to_plain(&Value::Ref(RefValue::new(Value::Int(1)))).is_none());
        assert!(to_plain(&Value::Builtin(crate::value::Builtin::Not)).is_none());
        // A ref buried inside a record poisons the whole extraction.
        let buried = Value::record([("R".into(), Value::Ref(RefValue::new(Value::Unit)))]);
        assert!(to_plain(&buried).is_none());
        assert!(!plain_matches_value(&PlainValue::Unit, &buried));
    }

    #[test]
    fn real_edge_cases_round_trip() {
        for r in [f64::NAN, -0.0, f64::INFINITY] {
            let v = Value::Real(r);
            let p = to_plain(&v).unwrap();
            assert!(value_eq(&from_plain(&p), &v));
            assert_eq!(digest_value(&v), digest_plain(&p));
        }
    }

    #[test]
    fn plain_keys_agree_with_value_keys() {
        // Two keys that are value-equal must be plain-key-equal and
        // hash identically (the cross-lane probe soundness direction) —
        // and a single key must equal its 1-tuple form, since builders
        // use `One` and defensive callers may probe with `Tuple`.
        let a = PlainKey::Tuple(vec![
            to_plain(&Value::Int(3)).unwrap(),
            to_plain(&sample()).unwrap(),
        ]);
        let b = PlainKey::Tuple(vec![
            to_plain(&Value::Int(3)).unwrap(),
            to_plain(&sample()).unwrap(),
        ]);
        assert_eq!(a, b);
        let digest = |k: &PlainKey| {
            let mut h = PlainKeyHasher::default();
            std::hash::Hash::hash(k, &mut h);
            h.finish()
        };
        assert_eq!(digest(&a), digest(&b));
        let one = PlainKey::One(to_plain(&Value::Int(4)).unwrap());
        let tup = PlainKey::Tuple(vec![to_plain(&Value::Int(4)).unwrap()]);
        assert_eq!(one, tup);
        assert_eq!(digest(&one), digest(&tup));
        assert_ne!(a, one);
    }

    #[test]
    fn plain_index_groups_and_rows() {
        let rows: Vec<PlainValue> = (0..4).map(|i| to_plain(&Value::Int(i)).unwrap()).collect();
        let idx = PlainIndex::from_groups(
            rows.into(),
            [
                (PlainKey::One(PlainValue::Int(0)), vec![0u32, 2]),
                (PlainKey::One(PlainValue::Int(1)), vec![1u32, 3]),
            ],
        );
        assert_eq!(idx.indexed_rows(), 4);
        assert_eq!(idx.group_count(), 2);
        assert_eq!(idx.get(&PlainKey::One(PlainValue::Int(0))), &[0, 2]);
        assert_eq!(idx.get(&PlainKey::One(PlainValue::Int(9))), &[] as &[u32]);
        assert!(!idx.is_empty());
        // The borrowed value-side probe agrees with the plain probe —
        // including for keys with no plain form (a ref equals nothing).
        assert_eq!(idx.get_by_values(&[Value::Int(0)]), &[0, 2]);
        assert_eq!(idx.get_by_values(&[Value::Int(9)]), &[] as &[u32]);
        let r = Value::Ref(RefValue::new(Value::Int(0)));
        assert_eq!(idx.get_by_values(&[r]), &[] as &[u32]);
    }

    #[test]
    fn columnar_snapshot_decomposes_uniform_records() {
        let set = MSet::from_iter((0..4).map(|i| {
            Value::record([
                ("A".into(), Value::Int(i * 10)),
                ("K".into(), Value::Int(i)),
            ])
        }));
        let snap = ColumnarRelation::from_set(&set).expect("pure data extracts");
        assert_eq!(snap.len(), 4);
        assert!(!snap.is_empty());
        assert!(snap.matches_set(&set));
        let k = snap.column("K".into()).expect("uniform records decompose");
        // Canonical set order groups rows by (A, K) ascending.
        assert_eq!(k.values.len(), 4);
        for (i, v) in k.values.iter().enumerate() {
            assert!(plain_eq(v, &PlainValue::Int(i as i64)));
        }
        assert!(snap.column("Z".into()).is_none());
    }

    #[test]
    fn columnar_snapshot_falls_back_to_rows_for_irregular_shapes() {
        // Non-record rows: no columns, rows still present.
        let ints = MSet::from_iter((0..3).map(Value::Int));
        let snap = ColumnarRelation::from_set(&ints).unwrap();
        assert!(snap.columns.is_none());
        assert_eq!(snap.len(), 3);
        // Mixed field sets: the decomposition declines too.
        let mixed = MSet::from_iter([
            Value::record([("K".into(), Value::Int(1))]),
            Value::record([("J".into(), Value::Int(2))]),
        ]);
        let snap = ColumnarRelation::from_set(&mixed).unwrap();
        assert!(snap.columns.is_none());
        // An identity-bearing row declines the snapshot outright.
        let with_ref = MSet::from_iter([Value::Ref(RefValue::new(Value::Int(1)))]);
        assert!(ColumnarRelation::from_set(&with_ref).is_none());
    }

    #[test]
    fn columnar_snapshot_mismatch_is_detected() {
        let set = MSet::from_iter((0..3).map(Value::Int));
        let snap = ColumnarRelation::from_set(&set).unwrap();
        let other = MSet::from_iter((1..4).map(Value::Int));
        assert!(!snap.matches_set(&other));
        let shorter = MSet::from_iter((0..2).map(Value::Int));
        assert!(!snap.matches_set(&shorter));
    }

    #[test]
    fn plain_matches_value_agrees_without_extraction() {
        let v = sample();
        let p = to_plain(&v).unwrap();
        assert!(plain_matches_value(&p, &v));
        // Differing nested field: no match.
        let other = Value::record([("Name".into(), Value::str("Sue"))]);
        assert!(!plain_matches_value(&p, &other));
        // Reals compare by bit pattern (total order), NaN included.
        let nan = Value::Real(f64::NAN);
        assert!(plain_matches_value(&to_plain(&nan).unwrap(), &nan));
        assert!(!plain_matches_value(
            &to_plain(&Value::Real(0.0)).unwrap(),
            &Value::Real(-0.0)
        ));
    }
}
