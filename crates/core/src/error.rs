//! Session-level errors: any stage of the pipeline can fail.

use machiavelli_eval::EvalError;
use machiavelli_types::TypeError;
use std::fmt;

/// An error from parsing, type inference, or evaluation.
#[derive(Debug)]
pub enum SessionError {
    /// A syntax error (pre-rendered with line/column information).
    Parse(String),
    Type(TypeError),
    Eval(EvalError),
    /// A filesystem failure while saving or loading persisted bindings
    /// (pre-rendered with the path and operation).
    Io(String),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Parse(msg) => write!(f, "{msg}"),
            SessionError::Type(e) => write!(f, "type error: {e}"),
            SessionError::Eval(e) => write!(f, "runtime error: {e}"),
            SessionError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for SessionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefixes() {
        let e = SessionError::Type(TypeError::UnboundVariable("x".into()));
        assert!(e.to_string().starts_with("type error:"));
        let e = SessionError::Eval(EvalError::StackOverflow);
        assert!(e.to_string().starts_with("runtime error:"));
    }
}
