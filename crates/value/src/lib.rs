//! Runtime values for the Machiavelli database programming language.
//!
//! Provides the value representation ([`value::Value`]), canonical
//! mathematical sets ([`set::MSet`]), the value-level database operations
//! (`project` / `con` / `join` / `unionc`, in [`ops`]), runtime shapes for
//! type-erased `unionc` ([`shape`]), dynamic-coercion conformance checks
//! ([`conform`]), and display in the paper's notation ([`display`]).

pub mod conform;
pub mod display;
pub mod epoch;
pub mod error;
pub mod faults;
pub mod governor;
pub mod hash;
pub mod ops;
pub mod plain;
pub mod repl_counters;
pub mod set;
pub mod shape;
pub mod tuning;
pub mod value;
pub mod wal_counters;

pub use conform::conforms;
pub use display::show_value;
pub use epoch::{
    bump_mutation_epoch, mutation_epoch, note_ref_write, set_wal_tracking, take_dirty_refs,
    take_wal_dirty_refs, wal_tracking, DirtyRefs,
};
pub use error::ValueError;
pub use faults::{FaultConfig, InjectedFaults};
pub use governor::{QueryGuard, ServerCounters, Trip};
pub use hash::{hash_value, ValueKey};
pub use ops::{con_value, join_value, project_value, unionc_value};
pub use plain::{
    from_plain, plain_cmp, plain_eq, plain_hash, plain_matches_value, to_plain, PlainIndex,
    PlainKey, PlainValue,
};
pub use set::MSet;
pub use shape::{element_shape, glb_shape, project_by_shape, shape_of, Shape};
pub use value::{
    scan_refs, value_cmp, value_eq, Builtin, Closure, DynValue, Env, FieldKey, Fields, Label,
    RefScan, RefValue, Symbol, Value,
};
pub use wal_counters::{reset_wal_counters, wal_counters, WalCounters};
