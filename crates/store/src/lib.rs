//! The **indexed relation store**: a session-scoped cache of structural
//! hash indexes over [`MSet`] relations, so repeated plans (the Figure 5
//! `cost` recursion re-joining `parts` per call, re-run REPL queries,
//! the prelude's hom-heavy idioms) pay the O(n) build cost once instead
//! of per evaluation.
//!
//! The planner's hash-join and index-scan operators request their build
//! tables here before constructing them inline; everything else in the
//! pipeline is unchanged. An index is a grouping of a relation's rows by
//! the values of its key expressions — [`Index`] maps an owned
//! [`KeyTuple`] (structural hash, `value_eq` equality, exactly like the
//! executor's probe keys) to the matching rows in canonical set order.
//!
//! # Index store & invalidation contract
//!
//! A cached index is keyed by **source identity plus key-expression
//! fingerprint**, and correctness rests on three mutually reinforcing
//! mechanisms (mirroring the planner's fallback contract in
//! `machiavelli-plan`: each mechanism alone is an optimization, together
//! they make staleness unrepresentable):
//!
//! 1. **Pointer-identity keying.** The cache key includes
//!    [`MSet::storage_id`] — the address of the set's shared `Rc`
//!    storage. `MSet` is copy-on-write, so *any* structural change to a
//!    relation (insert, union, re-binding to a rebuilt set) produces new
//!    storage and therefore a different key: the new relation can only
//!    miss. Every entry holds a clone of the indexed set, which (a)
//!    forces all outside mutation down the copy-on-write path (the
//!    entry's extra `Rc` reference makes in-place `Rc::make_mut`
//!    impossible) and (b) pins the allocation so its address cannot be
//!    recycled for a different set while the entry lives.
//! 2. **Epoch invalidation on reference writes.** Structure is not the
//!    whole story: rows may contain `ref` cells whose *contents* mutate
//!    without changing the set (`x.Dept := …`). Key and filter
//!    expressions admitted by the planner are reference-free (the
//!    planner-safe class), so index *contents* cannot actually go stale
//!    this way — but the store does not rely on that analysis being
//!    airtight. Every reference write (funnelled through
//!    [`machiavelli_value::RefValue::set`]) bumps the thread's
//!    [`mutation_epoch`], and the store drops **all** entries built
//!    under an older epoch before serving anything. Conservative —
//!    a write-heavy workload rebuilds its indexes — and obviously
//!    correct: no query after a mutation can observe a pre-mutation
//!    index.
//! 3. **Closed fingerprints over stable sources.** The fingerprint
//!    (produced by the planner) renders the source, key and
//!    pushed-filter expressions; the planner only marks an index
//!    cacheable when the key/filter expressions mention *no variable
//!    other than the row binder* — so an index's contents are a pure
//!    function of (storage, fingerprint), never of the enclosing
//!    environment — **and** the source is a `Var`/field/deref chain
//!    that can actually share storage across evaluations. Expressions
//!    whose meaning depends on outer bindings (`e.Salary > threshold`)
//!    and fresh-storage sources (`EmployeeView(persons)`, whose index
//!    could never be looked up again) are built inline, uncached.
//!
//! The store itself is **thread-local** (values are `Rc`-based and
//! thread-confined, so this is the natural session scope: a `Session`
//! lives on the thread that drives it, and `Session::store_stats` /
//! `:stats` read the same instance the evaluator fills). Two sessions
//! sharing a thread also share the store harmlessly: pointer-identity
//! keying means their relations can never alias each other's entries.
//!
//! Memory is bounded by a row **budget**: entries are evicted
//! least-recently-used when the total number of cached rows exceeds it,
//! and a relation larger than the whole budget is never cached at all.
//! Counters ([`StoreStats`]) record hits, misses, builds, invalidations
//! and evictions for the REPL's `:stats` and regression tests.

use machiavelli_value::{hash_value, mutation_epoch, value_eq, MSet, Value};
use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::rc::Rc;

/// An owned composite hash key: structural hash, `value_eq` equality —
/// consistent by construction (see `machiavelli_value::hash`), owning
/// its key values so an index can outlive the probe loop that built it.
#[derive(Debug, Clone)]
pub struct KeyTuple(pub Vec<Value>);

impl Hash for KeyTuple {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for v in &self.0 {
            hash_value(v, state);
        }
    }
}

impl PartialEq for KeyTuple {
    fn eq(&self, other: &Self) -> bool {
        self.0.len() == other.0.len() && self.0.iter().zip(&other.0).all(|(a, b)| value_eq(a, b))
    }
}

impl Eq for KeyTuple {}

/// A structural hash index: rows grouped by key value, each group in
/// canonical (sorted-set) order — the same order an inline build
/// produces, so cached and fresh probes yield identical row sequences.
#[allow(clippy::mutable_key_type)] // refs hash/compare by immutable identity
pub type Index = HashMap<KeyTuple, Vec<Value>>;

/// Cumulative statistics, exposed through `Session::store_stats` and
/// the REPL's `:stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups answered from cache.
    pub hits: u64,
    /// Lookups that found no usable entry (the caller then builds).
    pub misses: u64,
    /// Indexes inserted after a miss (== builds that went through the
    /// store; inline uncacheable builds are not counted).
    pub builds: u64,
    /// Entries dropped because a reference write advanced the epoch.
    pub invalidated: u64,
    /// Entries dropped by the LRU row budget.
    pub evicted: u64,
    /// Live entries right now.
    pub entries: usize,
    /// Total *relation* rows pinned by live entries (the budgeted
    /// quantity — an entry keeps a clone of its whole relation alive,
    /// so it is charged the relation's size even when pushed filters
    /// leave the index itself much smaller).
    pub cached_rows: usize,
}

/// Public description of one live entry, for `:indexes`.
#[derive(Debug, Clone)]
pub struct IndexInfo {
    /// The planner's rendering of the indexed key/filter expressions.
    pub fingerprint: String,
    /// Rows held by the index (after pushed filters).
    pub rows: usize,
    /// Distinct key groups.
    pub groups: usize,
    /// Cache hits served by this entry.
    pub hits: u64,
}

struct Entry {
    /// A clone of the indexed relation: pins the storage address and
    /// forces outside mutation down the copy-on-write path.
    set: MSet,
    index: Rc<Index>,
    /// Rows held by the index (≤ `charge`; pushed filters prune).
    rows: usize,
    /// What this entry costs against the budget: the *pinned relation's*
    /// size, not the (possibly heavily filtered) index size — the entry
    /// keeps the whole relation alive, so a selective filter must not
    /// make a large relation look cheap. Deliberately conservative the
    /// other way too: two indexes over the same relation each pay the
    /// full charge even though they pin shared storage, so the budget
    /// over-estimates (never under-estimates) pinned memory.
    charge: usize,
    last_used: u64,
    hits: u64,
}

/// Default row budget — defined with the workspace's other size
/// thresholds in `machiavelli_value::tuning` (fresh stores additionally
/// honor the `MACHIAVELLI_STORE_BUDGET_ROWS` env override resolved by
/// [`machiavelli_value::tuning::store_budget_rows`]).
pub const DEFAULT_BUDGET_ROWS: usize = machiavelli_value::tuning::DEFAULT_STORE_BUDGET_ROWS;

/// The memoizing index store. One per thread (see [`with_store`]); all
/// methods take `&mut self` because even lookups update recency and
/// epoch state.
///
/// Entries are keyed storage-id-first, fingerprint second: the hot-path
/// [`IndexStore::lookup`] (one per hash-join open in a repeated-plan
/// workload — ~2000 per fig5 sweep) is two map probes that borrow the
/// caller's fingerprint as `&str`; the store only materializes its own
/// key `String` on insert. (The *planner* still renders a fingerprint
/// per evaluation to have something to look up with — a few small
/// formatting allocations per `select`, not per row.)
pub struct IndexStore {
    entries: HashMap<usize, HashMap<String, Entry>>,
    budget_rows: usize,
    cached_rows: usize,
    epoch: u64,
    tick: u64,
    stats: StoreStats,
}

impl IndexStore {
    pub fn new(budget_rows: usize) -> IndexStore {
        IndexStore {
            entries: HashMap::new(),
            budget_rows,
            cached_rows: 0,
            epoch: mutation_epoch(),
            tick: 0,
            stats: StoreStats::default(),
        }
    }

    /// Drop every entry built before the current mutation epoch. Called
    /// on the way into every public operation, so no stale entry is
    /// ever *observable* — mechanism 2 of the invalidation contract.
    fn validate_epoch(&mut self) {
        let now = mutation_epoch();
        if self.epoch == now {
            return;
        }
        self.epoch = now;
        let dropped = self.len();
        if dropped > 0 {
            self.entries.clear();
            self.cached_rows = 0;
            self.stats.invalidated += dropped as u64;
        }
    }

    fn len(&self) -> usize {
        self.entries.values().map(HashMap::len).sum()
    }

    /// Fetch the cached index for `set` under `fingerprint`, if one was
    /// built for *this exact storage* in the current epoch. Updates
    /// recency and hit/miss counters.
    pub fn lookup(&mut self, set: &MSet, fingerprint: &str) -> Option<Rc<Index>> {
        self.validate_epoch();
        self.tick += 1;
        match self
            .entries
            .get_mut(&set.storage_id())
            .and_then(|by_fp| by_fp.get_mut(fingerprint))
        {
            Some(entry) => {
                debug_assert!(
                    entry.set.storage_id() == set.storage_id(),
                    "entry pins its storage, ids cannot diverge"
                );
                entry.last_used = self.tick;
                entry.hits += 1;
                self.stats.hits += 1;
                Some(entry.index.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert a freshly built index for `set` under `fingerprint`,
    /// returning the shared handle the caller should probe. Relations
    /// larger than the whole budget are not cached (the handle is still
    /// returned, so the calling query proceeds normally); otherwise the
    /// least-recently-used entries are evicted until the budget holds.
    #[allow(clippy::mutable_key_type)] // refs hash/compare by immutable identity
    pub fn insert(&mut self, set: &MSet, fingerprint: &str, index: Index) -> Rc<Index> {
        self.validate_epoch();
        self.tick += 1;
        let rows: usize = index.values().map(Vec::len).sum();
        // Budget by the relation being pinned, not the filtered index:
        // the entry's set clone keeps every row alive either way.
        let charge = set.len();
        let index = Rc::new(index);
        if charge > self.budget_rows {
            return index;
        }
        self.evict_to(self.budget_rows.saturating_sub(charge));
        let entry = Entry {
            set: set.clone(),
            index: index.clone(),
            rows,
            charge,
            last_used: self.tick,
            hits: 0,
        };
        if let Some(old) = self
            .entries
            .entry(set.storage_id())
            .or_default()
            .insert(fingerprint.to_string(), entry)
        {
            // Same (storage, fingerprint) already present: the build
            // window runs outside the store borrow, so a *nested*
            // evaluation driven by the build's hook (or a `clear`
            // mid-build) can insert the entry first. Replace it and
            // keep the accounting tight.
            self.cached_rows -= old.charge;
        }
        self.cached_rows += charge;
        self.stats.builds += 1;
        index
    }

    /// Evict least-recently-used entries until at most `target` rows
    /// remain cached. One recency sort per call, so an eviction burst
    /// costs O(entries log entries), not O(victims · entries).
    fn evict_to(&mut self, target: usize) {
        if self.cached_rows <= target {
            return;
        }
        let mut victims: Vec<(u64, usize, String)> = self
            .entries
            .iter()
            .flat_map(|(id, by_fp)| {
                by_fp
                    .iter()
                    .map(move |(fp, e)| (e.last_used, *id, fp.clone()))
            })
            .collect();
        victims.sort_unstable_by_key(|(used, ..)| *used);
        for (_, storage, fp) in victims {
            if self.cached_rows <= target {
                break;
            }
            let by_fp = self.entries.get_mut(&storage).expect("key came from map");
            let entry = by_fp.remove(&fp).expect("key came from the map");
            if by_fp.is_empty() {
                self.entries.remove(&storage);
            }
            self.cached_rows -= entry.charge;
            self.stats.evicted += 1;
        }
    }

    /// Is there a live (current-epoch) entry with this fingerprint, for
    /// any relation? Display-level probe used by plan explanation to
    /// render `HashJoin[idx cached]` vs `[idx build]` — the executor
    /// itself always checks the full (storage, fingerprint) key.
    /// (Fingerprints include the rendered source expression, so two
    /// relations alias here only when queried through the same name —
    /// after a rebind, a fresh build corrects the display on first
    /// execution.)
    pub fn has_fingerprint(&mut self, fingerprint: &str) -> bool {
        self.validate_epoch();
        self.entries
            .values()
            .any(|by_fp| by_fp.contains_key(fingerprint))
    }

    /// Drop all entries (statistics are kept; see [`IndexStore::reset`]).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.cached_rows = 0;
    }

    /// Drop all entries and zero the statistics.
    pub fn reset(&mut self) {
        self.clear();
        self.stats = StoreStats::default();
    }

    /// Change the row budget, evicting immediately if the cache is now
    /// over it.
    pub fn set_budget(&mut self, budget_rows: usize) {
        self.budget_rows = budget_rows;
        self.evict_to(budget_rows);
    }

    /// The current row budget. Callers about to build an index can
    /// check it first: a relation that exceeds the whole budget would
    /// be declined by [`IndexStore::insert`], so building a grouping
    /// for it is wasted work (stream instead).
    pub fn budget_rows(&self) -> usize {
        self.budget_rows
    }

    /// Current statistics (entry/row counts reflect live entries only).
    pub fn stats(&mut self) -> StoreStats {
        self.validate_epoch();
        StoreStats {
            entries: self.len(),
            cached_rows: self.cached_rows,
            ..self.stats
        }
    }

    /// Describe the live entries, most-recently-used first.
    pub fn indexes(&mut self) -> Vec<IndexInfo> {
        self.validate_epoch();
        let mut infos: Vec<(u64, IndexInfo)> = self
            .entries
            .values()
            .flat_map(HashMap::iter)
            .map(|(fp, e)| {
                (
                    e.last_used,
                    IndexInfo {
                        fingerprint: fp.clone(),
                        rows: e.rows,
                        groups: e.index.len(),
                        hits: e.hits,
                    },
                )
            })
            .collect();
        infos.sort_by_key(|(used, _)| std::cmp::Reverse(*used));
        infos.into_iter().map(|(_, i)| i).collect()
    }
}

impl Default for IndexStore {
    fn default() -> Self {
        IndexStore::new(machiavelli_value::tuning::store_budget_rows())
    }
}

thread_local! {
    static STORE: RefCell<IndexStore> = RefCell::new(IndexStore::default());
    /// Whether the executor consults the store at all. Benches flip it
    /// off to measure the always-rebuild path; `false` means every
    /// cacheable build happens inline, uncached and uncounted.
    static STORE_ENABLED: std::cell::Cell<bool> = const { std::cell::Cell::new(true) };
}

/// Run `f` on this thread's index store.
pub fn with_store<R>(f: impl FnOnce(&mut IndexStore) -> R) -> R {
    STORE.with(|s| f(&mut s.borrow_mut()))
}

/// Is store consultation enabled on this thread?
pub fn store_enabled() -> bool {
    STORE_ENABLED.with(|c| c.get())
}

/// Enable/disable store consultation on this thread, returning the
/// previous setting (so callers can restore it).
pub fn set_store_enabled(on: bool) -> bool {
    STORE_ENABLED.with(|c| c.replace(on))
}

#[cfg(test)]
mod tests {
    use super::*;
    use machiavelli_value::bump_mutation_epoch;

    fn ints(xs: &[i64]) -> MSet {
        MSet::from_iter(xs.iter().map(|&x| Value::Int(x)))
    }

    /// Group a set of ints by parity — a stand-in for a planner build.
    #[allow(clippy::mutable_key_type)] // refs hash/compare by immutable identity
    fn parity_index(s: &MSet) -> Index {
        let mut idx = Index::new();
        for v in s.iter() {
            let Value::Int(n) = v else { panic!() };
            idx.entry(KeyTuple(vec![Value::Int(n % 2)]))
                .or_default()
                .push(v.clone());
        }
        idx
    }

    #[test]
    fn hit_after_insert_same_storage() {
        let mut st = IndexStore::new(1000);
        let s = ints(&[1, 2, 3]);
        assert!(st.lookup(&s, "parity").is_none());
        st.insert(&s, "parity", parity_index(&s));
        let alias = s.clone();
        let idx = st.lookup(&alias, "parity").expect("clone shares storage");
        assert_eq!(idx.len(), 2);
        let stats = st.stats();
        assert_eq!((stats.hits, stats.misses, stats.builds), (1, 1, 1));
        assert_eq!((stats.entries, stats.cached_rows), (1, 3));
    }

    #[test]
    fn different_fingerprint_or_storage_misses() {
        let mut st = IndexStore::new(1000);
        let s = ints(&[1, 2, 3]);
        st.insert(&s, "parity", parity_index(&s));
        assert!(st.lookup(&s, "identity").is_none(), "fingerprint differs");
        let rebuilt = ints(&[1, 2, 3]);
        assert!(
            st.lookup(&rebuilt, "parity").is_none(),
            "equal contents, different storage: still a miss"
        );
    }

    #[test]
    fn copy_on_write_mutation_cannot_hit() {
        let mut st = IndexStore::new(1000);
        let mut s = ints(&[1, 2, 3]);
        st.insert(&s, "parity", parity_index(&s));
        // The store holds a clone, so this insert copies-on-write into
        // fresh storage even though our handle looked unshared.
        s.insert(Value::Int(4));
        assert!(st.lookup(&s, "parity").is_none());
    }

    #[test]
    fn ref_write_invalidates_everything() {
        let mut st = IndexStore::new(1000);
        let s = ints(&[1, 2]);
        st.insert(&s, "parity", parity_index(&s));
        bump_mutation_epoch();
        assert!(st.lookup(&s, "parity").is_none());
        let stats = st.stats();
        assert_eq!(stats.invalidated, 1);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn lru_eviction_respects_budget() {
        let mut st = IndexStore::new(5);
        let a = ints(&[1, 2, 3]);
        let b = ints(&[4, 5]);
        st.insert(&a, "parity", parity_index(&a));
        st.insert(&b, "parity", parity_index(&b));
        assert_eq!(st.stats().cached_rows, 5);
        // Touch `a` so `b` is the LRU victim.
        assert!(st.lookup(&a, "parity").is_some());
        let c = ints(&[6, 7]);
        st.insert(&c, "parity", parity_index(&c));
        assert!(st.lookup(&a, "parity").is_some());
        assert!(st.lookup(&b, "parity").is_none(), "b was evicted");
        assert_eq!(st.stats().evicted, 1);
        assert!(st.stats().cached_rows <= 5);
    }

    #[test]
    fn oversized_relations_are_not_cached() {
        let mut st = IndexStore::new(2);
        let s = ints(&[1, 2, 3]);
        let idx = st.insert(&s, "parity", parity_index(&s));
        assert_eq!(idx.values().map(Vec::len).sum::<usize>(), 3);
        assert_eq!(st.stats().entries, 0);
        assert_eq!(st.stats().builds, 0);
    }

    #[test]
    #[allow(clippy::mutable_key_type)] // refs hash/compare by immutable identity
    fn budget_charges_the_pinned_relation_not_the_filtered_index() {
        let s = ints(&[1, 2, 3, 4, 5, 6]);
        let selective = || {
            let mut idx = Index::new();
            idx.entry(KeyTuple(vec![Value::Int(0)]))
                .or_default()
                .push(Value::Int(2));
            idx
        };
        // A one-row filtered index still pins all six relation rows.
        let mut st = IndexStore::new(10);
        st.insert(&s, "filtered", selective());
        assert_eq!(st.stats().cached_rows, 6);
        // A relation over the whole budget is declined even when its
        // filtered index is tiny.
        let mut st = IndexStore::new(4);
        st.insert(&s, "filtered", selective());
        assert_eq!(st.stats().entries, 0);
    }

    #[test]
    fn reset_zeroes_stats_and_entries() {
        let mut st = IndexStore::new(1000);
        let s = ints(&[1]);
        st.insert(&s, "parity", parity_index(&s));
        st.lookup(&s, "parity");
        st.reset();
        assert_eq!(st.stats(), StoreStats::default());
        assert!(!st.has_fingerprint("parity"));
    }

    #[test]
    fn indexes_listing_reports_entries() {
        let mut st = IndexStore::new(1000);
        let s = ints(&[1, 2, 3, 4]);
        st.insert(&s, "parity", parity_index(&s));
        st.lookup(&s, "parity");
        let infos = st.indexes();
        assert_eq!(infos.len(), 1);
        assert_eq!(infos[0].fingerprint, "parity");
        assert_eq!((infos[0].rows, infos[0].groups, infos[0].hits), (4, 2, 1));
    }

    #[test]
    fn enable_toggle_round_trips() {
        assert!(store_enabled());
        let prev = set_store_enabled(false);
        assert!(prev);
        assert!(!store_enabled());
        set_store_enabled(prev);
        assert!(store_enabled());
    }
}
