//! Relations over Machiavelli values.
//!
//! A [`Relation`] is a canonical set of record values — the native
//! (non-interpreted) substrate backing the paper's generalized
//! relational model (§4). The interpreter's `select`/`join` and these
//! native operators compute the same results; benches compare the two.

use machiavelli_value::{Fields, MSet, Symbol, Value};

/// A set of record values with utility operations.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Relation {
    rows: MSet,
}

impl Relation {
    pub fn new() -> Relation {
        Relation::default()
    }

    /// Build from row values (normalizing into a set).
    pub fn from_rows(rows: impl IntoIterator<Item = Value>) -> Relation {
        Relation {
            rows: MSet::from_iter(rows),
        }
    }

    /// The underlying canonical set.
    pub fn rows(&self) -> &MSet {
        &self.rows
    }

    /// Into the Machiavelli set value.
    pub fn into_value(self) -> Value {
        Value::Set(self.rows)
    }

    /// From a Machiavelli set value (panics on non-set; callers hold
    /// typed values).
    pub fn from_value(v: &Value) -> Relation {
        match v {
            Value::Set(s) => Relation { rows: s.clone() },
            other => panic!("not a relation: {}", machiavelli_value::show_value(other)),
        }
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &Value> {
        self.rows.iter()
    }

    /// The labels common to this relation and `other` (computed from the
    /// first row of each; homogeneous by typing).
    pub fn common_labels(&self, other: &Relation) -> Vec<Symbol> {
        let labels = |r: &Relation| -> Vec<Symbol> {
            r.iter()
                .next()
                .and_then(|v| match v {
                    Value::Record(fs) => Some(fs.keys().copied().collect()),
                    _ => None,
                })
                .unwrap_or_default()
        };
        let a = labels(self);
        let b = labels(other);
        a.into_iter().filter(|l| b.contains(l)).collect()
    }

    /// Native selection.
    pub fn select(&self, pred: impl Fn(&Value) -> bool) -> Relation {
        Relation::from_rows(self.iter().filter(|v| pred(v)).cloned())
    }

    /// Native projection onto `labels` (drops rows that are not records
    /// with all the labels — typed inputs always qualify).
    pub fn project(&self, labels: &[&str]) -> Relation {
        let labels: Vec<Symbol> = labels.iter().map(|l| Symbol::intern(l)).collect();
        Relation::from_rows(self.iter().filter_map(|v| match v {
            Value::Record(fs) => {
                let mut out = Vec::with_capacity(labels.len());
                for l in &labels {
                    out.push((*l, fs.get(l)?.clone()));
                }
                Some(Value::Record(Fields::from_vec(out)))
            }
            _ => None,
        }))
    }

    /// Rename a column (the paper's "renaming operation" enabling the
    /// polymorphic transitive closure on any binary relation).
    pub fn rename(&self, from: &str, to: &str) -> Relation {
        let to = Symbol::intern(to);
        Relation::from_rows(self.iter().map(|v| match v {
            Value::Record(fs) => {
                let mut out = fs.clone();
                if let Some(val) = out.remove(from) {
                    out.insert(to, val);
                }
                Value::Record(out)
            }
            other => other.clone(),
        }))
    }

    /// Union (set-theoretic).
    pub fn union(&self, other: &Relation) -> Relation {
        Relation {
            rows: self.rows.union(other.rows()),
        }
    }

    /// Difference.
    pub fn difference(&self, other: &Relation) -> Relation {
        Relation {
            rows: self.rows.difference(other.rows()),
        }
    }
}

impl FromIterator<Value> for Relation {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Relation::from_rows(iter)
    }
}

/// Convenience: build a flat row of (label, int) and (label, str) pairs.
pub fn row(fields: &[(&str, Value)]) -> Value {
    Value::record(fields.iter().map(|(l, v)| (Symbol::intern(l), v.clone())))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab(a: i64, b: i64) -> Value {
        row(&[("A", Value::Int(a)), ("B", Value::Int(b))])
    }

    #[test]
    fn relations_are_sets() {
        let r = Relation::from_rows([ab(1, 2), ab(1, 2), ab(3, 4)]);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn select_project_rename() {
        let r = Relation::from_rows([ab(1, 2), ab(3, 4)]);
        assert_eq!(
            r.select(|v| matches!(v, Value::Record(fs) if fs["A"] == Value::Int(1)))
                .len(),
            1
        );
        let p = r.project(&["A"]);
        assert_eq!(p.len(), 2);
        let renamed = r.rename("B", "C");
        assert!(matches!(
            renamed.iter().next().unwrap(),
            Value::Record(fs) if fs.contains_key("C") && !fs.contains_key("B")
        ));
    }

    #[test]
    fn projection_merges() {
        let r = Relation::from_rows([ab(1, 2), ab(1, 9)]);
        assert_eq!(r.project(&["A"]).len(), 1);
    }

    #[test]
    fn common_labels() {
        let r = Relation::from_rows([ab(1, 2)]);
        let s = Relation::from_rows([row(&[("B", Value::Int(2)), ("C", Value::Int(3))])]);
        assert_eq!(r.common_labels(&s), vec!["B"]);
    }

    #[test]
    fn union_difference() {
        let r = Relation::from_rows([ab(1, 2)]);
        let s = Relation::from_rows([ab(1, 2), ab(3, 4)]);
        assert_eq!(r.union(&s).len(), 2);
        assert_eq!(s.difference(&r).len(), 1);
    }

    #[test]
    fn value_roundtrip() {
        let r = Relation::from_rows([ab(1, 2)]);
        let v = r.clone().into_value();
        assert_eq!(Relation::from_value(&v), r);
    }
}
