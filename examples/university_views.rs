//! The §5 object-oriented database scenario: person objects with
//! identity, the Figure 8 views, join-as-intersection (Figure 9), class
//! union, and in-place updates through references.
//!
//! ```sh
//! cargo run --example university_views [n_people]
//! ```

use machiavelli_bench::university_session;
use machiavelli_oodb::UniversityParams;

fn main() {
    let n_people: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100);

    println!("generating a university with {n_people} person objects…");
    let (mut session, uni) = university_session(UniversityParams {
        n_people,
        seed: 2026,
        ..Default::default()
    });
    println!(
        "ground truth: {} employees, {} students, {} teaching fellows",
        uni.count_employees(),
        uni.count_students(),
        uni.count_tfs()
    );

    let queries = [
        ("people", "card(PersonView(persons));"),
        ("employees", "card(EmployeeView(persons));"),
        ("students", "card(StudentView(persons));"),
        ("teaching fellows", "card(TFView(persons));"),
        (
            "students ∩ employees (join of views)",
            "card(join(StudentView(persons), EmployeeView(persons)));",
        ),
        (
            "students ∪ employees (unionc, typed as {Person})",
            "card(unionc(StudentView(persons), EmployeeView(persons)));",
        ),
    ];
    for (what, q) in queries {
        let out = session.eval_one(q).expect(q);
        println!("{what}: {}", machiavelli::value::show_value(&out.value));
    }

    // Figure 9: students who earn more than their advisors.
    session
        .run("val supported_student = join(StudentView(persons), EmployeeView(persons));")
        .expect("supported_student");
    let out = session
        .eval_one(
            "card(select x.Name
             where x <- supported_student, y <- EmployeeView(persons)
             with x.Advisor = y.Id andalso x.Salary > y.Salary);",
        )
        .expect("advisor-salary query");
    println!(
        "students earning more than their advisor: {}",
        machiavelli::value::show_value(&out.value)
    );

    // Method inheritance: a function written for employees applies to
    // teaching fellows unmodified.
    session
        .run("fun Wealthy(S) = select x.Name where x <- S with x.Salary > 150000;")
        .expect("Wealthy");
    let emp = session
        .eval_one("card(Wealthy(EmployeeView(persons)));")
        .unwrap();
    let tfs = session.eval_one("card(Wealthy(TFView(persons)));").unwrap();
    println!(
        "wealthy employees: {}, wealthy teaching fellows: {}",
        machiavelli::value::show_value(&emp.value),
        machiavelli::value::show_value(&tfs.value)
    );

    // Updates through object identity: give everyone teaching CS a raise
    // and observe it through a *different* view.
    session
        .run(
            "val raises = select (x.Id := modify(!(x.Id), Salary, (Value of 1000000)))
             where x <- TFView(persons) with true;",
        )
        .expect("raises");
    let out = session
        .eval_one("card(select x where x <- EmployeeView(persons) with x.Salary = 1000000);")
        .expect("post-raise query");
    println!(
        "employees now at the TF super-salary: {} (= teaching fellows: {})",
        machiavelli::value::show_value(&out.value),
        uni.count_tfs()
    );
}
