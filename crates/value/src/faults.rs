//! **Seeded fault injection** — the chaos harness behind the server's
//! resilience tests and `server_bench`'s degradation runs.
//!
//! Every fail point in the workspace funnels through this module:
//!
//! | site | effect | env (probability, ppm) |
//! |---|---|---|
//! | [`maybe_eval_panic`] | panic inside the evaluator tick | `MACHIAVELLI_FAULT_EVAL_PANIC_PPM` |
//! | [`maybe_worker_panic`] | panic at the start of a parallel chunk | `MACHIAVELLI_FAULT_WORKER_PANIC_PPM` |
//! | [`spawn_denied`] | report a worker-spawn failure | `MACHIAVELLI_FAULT_SPAWN_FAIL_PPM` |
//! | [`maybe_delay`] | sleep at the evaluator tick (forces deadline overruns) | `MACHIAVELLI_FAULT_DELAY_PPM` + `MACHIAVELLI_FAULT_DELAY_MS` |
//! | [`store_poison_due`] | panic while holding the shared store lock | `MACHIAVELLI_FAULT_STORE_POISON_PPM` |
//! | [`wal_torn_due`] | truncate a WAL append mid-record (torn write) | `MACHIAVELLI_FAULT_WAL_TORN_PPM` |
//! | [`wal_sync_fails`] | report a WAL sync (fsync) failure | `MACHIAVELLI_FAULT_WAL_SYNC_FAIL_PPM` |
//! | [`checkpoint_kill_due`] | abort a checkpoint between its steps | `MACHIAVELLI_FAULT_CHECKPOINT_KILL_PPM` |
//! | [`ship_disconnect_due`] | cut a replication chunk mid-stream (torn ship) | `MACHIAVELLI_FAULT_SHIP_DISCONNECT_PPM` |
//! | [`ack_loss_due`] | drop a follower's ack on the floor | `MACHIAVELLI_FAULT_ACK_LOSS_PPM` |
//! | [`follower_kill_due`] | kill a follower between pump rounds | `MACHIAVELLI_FAULT_FOLLOWER_KILL_PPM` |
//! | [`promote_during_catchup_due`] | promote while a catch-up is in flight | `MACHIAVELLI_FAULT_PROMOTE_CATCHUP_PPM` |
//!
//! Probabilities are **parts per million** so low rates stay integral.
//! Randomness is a per-thread xorshift stream derived from the config
//! seed (`MACHIAVELLI_FAULT_SEED`, default 0) plus a process-wide thread
//! ordinal — a fixed seed gives a reproducible *distribution* of faults
//! (CI pins one), while remaining cheap and lock-free at the fail
//! points.
//!
//! Resolution mirrors `tuning`: a thread-local [`FaultConfig`] override
//! (set by tests, or by the server installing its captured config on
//! worker threads — thread locals do not inherit) falls back to an
//! env-derived process config read once. With nothing configured every
//! fail point is a single thread-local load.
//!
//! All *injected* faults panic with messages prefixed
//! `"injected fault:"` and are tallied in [`InjectedFaults`], so the
//! chaos suite can assert that observed structured errors match what
//! the harness actually threw.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// Probabilities (parts per million) and knobs for every fail point.
/// `Copy` so it can live in a `Cell` and be shipped to worker threads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultConfig {
    /// Panic probability at the evaluator tick.
    pub eval_panic_ppm: u32,
    /// Panic probability at the start of each parallel chunk.
    pub worker_panic_ppm: u32,
    /// Probability that a worker spawn is reported as failed.
    pub spawn_fail_ppm: u32,
    /// Probability of an injected sleep at the evaluator tick.
    pub delay_ppm: u32,
    /// Length of the injected sleep, in milliseconds.
    pub delay_ms: u64,
    /// Probability of panicking while holding the shared store lock.
    pub store_poison_ppm: u32,
    /// Probability that a WAL append is torn (only a prefix reaches
    /// the file — a simulated kill mid-`write`).
    pub wal_torn_ppm: u32,
    /// Probability that a WAL sync (fsync) reports failure.
    pub wal_sync_fail_ppm: u32,
    /// Probability that a checkpoint is killed between its steps.
    pub checkpoint_kill_ppm: u32,
    /// Probability that a shipped replication chunk is cut mid-stream
    /// (only a prefix reaches the follower — a simulated disconnect).
    pub ship_disconnect_ppm: u32,
    /// Probability that a follower's ack is lost before the primary
    /// records it.
    pub ack_loss_ppm: u32,
    /// Probability that a follower is killed between pump rounds.
    pub follower_kill_ppm: u32,
    /// Probability that a promotion lands while a catch-up is mid-flight.
    pub promote_catchup_ppm: u32,
    /// Base seed for the per-thread fault streams.
    pub seed: u64,
}

impl FaultConfig {
    /// No faults at all (the default).
    pub const fn off() -> FaultConfig {
        FaultConfig {
            eval_panic_ppm: 0,
            worker_panic_ppm: 0,
            spawn_fail_ppm: 0,
            delay_ppm: 0,
            delay_ms: 0,
            store_poison_ppm: 0,
            wal_torn_ppm: 0,
            wal_sync_fail_ppm: 0,
            checkpoint_kill_ppm: 0,
            ship_disconnect_ppm: 0,
            ack_loss_ppm: 0,
            follower_kill_ppm: 0,
            promote_catchup_ppm: 0,
            seed: 0,
        }
    }

    /// True when no fail point can ever fire.
    pub fn is_inert(&self) -> bool {
        self.eval_panic_ppm == 0
            && self.worker_panic_ppm == 0
            && self.spawn_fail_ppm == 0
            && self.delay_ppm == 0
            && self.store_poison_ppm == 0
            && self.wal_torn_ppm == 0
            && self.wal_sync_fail_ppm == 0
            && self.checkpoint_kill_ppm == 0
            && self.ship_disconnect_ppm == 0
            && self.ack_loss_ppm == 0
            && self.follower_kill_ppm == 0
            && self.promote_catchup_ppm == 0
    }
}

fn env_u32(var: &str) -> u32 {
    std::env::var(var)
        .ok()
        .and_then(|s| s.trim().parse::<u32>().ok())
        .unwrap_or(0)
}

fn env_u64(var: &str) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .unwrap_or(0)
}

/// The process config derived from the environment (`None` when the
/// environment enables nothing — the common case, kept cheap).
fn env_config() -> Option<FaultConfig> {
    static ENV: OnceLock<Option<FaultConfig>> = OnceLock::new();
    *ENV.get_or_init(|| {
        let cfg = FaultConfig {
            eval_panic_ppm: env_u32("MACHIAVELLI_FAULT_EVAL_PANIC_PPM"),
            worker_panic_ppm: env_u32("MACHIAVELLI_FAULT_WORKER_PANIC_PPM"),
            spawn_fail_ppm: env_u32("MACHIAVELLI_FAULT_SPAWN_FAIL_PPM"),
            delay_ppm: env_u32("MACHIAVELLI_FAULT_DELAY_PPM"),
            delay_ms: env_u64("MACHIAVELLI_FAULT_DELAY_MS").max(1),
            store_poison_ppm: env_u32("MACHIAVELLI_FAULT_STORE_POISON_PPM"),
            wal_torn_ppm: env_u32("MACHIAVELLI_FAULT_WAL_TORN_PPM"),
            wal_sync_fail_ppm: env_u32("MACHIAVELLI_FAULT_WAL_SYNC_FAIL_PPM"),
            checkpoint_kill_ppm: env_u32("MACHIAVELLI_FAULT_CHECKPOINT_KILL_PPM"),
            ship_disconnect_ppm: env_u32("MACHIAVELLI_FAULT_SHIP_DISCONNECT_PPM"),
            ack_loss_ppm: env_u32("MACHIAVELLI_FAULT_ACK_LOSS_PPM"),
            follower_kill_ppm: env_u32("MACHIAVELLI_FAULT_FOLLOWER_KILL_PPM"),
            promote_catchup_ppm: env_u32("MACHIAVELLI_FAULT_PROMOTE_CATCHUP_PPM"),
            seed: env_u64("MACHIAVELLI_FAULT_SEED"),
        };
        if cfg.is_inert() {
            None
        } else {
            Some(cfg)
        }
    })
}

thread_local! {
    /// `Some(cfg)` = thread-local override (use `FaultConfig::off()` to
    /// shield a thread from the env config); `None` = fall through to
    /// the env.
    static OVERRIDE: Cell<Option<FaultConfig>> = const { Cell::new(None) };
    static RNG: Cell<u64> = const { Cell::new(0) };
}

/// Process-wide thread ordinal: combined with the seed so every thread
/// draws a distinct but reproducible stream.
static THREAD_ORDINAL: AtomicU64 = AtomicU64::new(0);

/// Set (or clear) this thread's fault config, returning the previous
/// override. `Some(cfg)` forces `cfg`; `None` restores env resolution.
/// To *shield* a thread from an env config, pass
/// `Some(FaultConfig::off())`. Setting a config reseeds this thread's
/// fault stream.
pub fn set_fault_config(cfg: Option<FaultConfig>) -> Option<FaultConfig> {
    let prev = OVERRIDE.with(|c| c.replace(cfg));
    RNG.with(|r| r.set(0)); // lazily reseeded on the next roll
    prev
}

/// The fault config in force on this thread (thread-local override →
/// environment → off).
pub fn fault_config() -> FaultConfig {
    OVERRIDE
        .with(Cell::get)
        .or_else(env_config)
        .unwrap_or(FaultConfig::off())
}

/// True when any fail point could fire on this thread — the cheap gate
/// the tick sites consult before anything else.
pub fn faults_active() -> bool {
    match OVERRIDE.with(Cell::get) {
        Some(cfg) => !cfg.is_inert(),
        None => env_config().is_some(),
    }
}

fn xorshift(state: u64) -> u64 {
    let mut x = state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

/// Roll this thread's stream against a ppm probability.
fn roll(seed: u64, ppm: u32) -> bool {
    if ppm == 0 {
        return false;
    }
    let state = RNG.with(|r| {
        let mut s = r.get();
        if s == 0 {
            // First roll on this thread (or after a reseed): derive a
            // nonzero state from the config seed and the thread ordinal.
            let ordinal = THREAD_ORDINAL.fetch_add(1, Ordering::Relaxed);
            s = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(ordinal.wrapping_mul(0xBF58_476D_1CE4_E5B9))
                | 1;
        }
        s = xorshift(s);
        r.set(s);
        s
    });
    (state % 1_000_000) < u64::from(ppm)
}

// --- injected-fault counters -----------------------------------------------

/// Tallies of faults this harness actually injected, process-wide.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectedFaults {
    pub eval_panics: u64,
    pub worker_panics: u64,
    pub spawn_failures: u64,
    pub delays: u64,
    pub store_poisons: u64,
    pub wal_torn_writes: u64,
    pub wal_sync_failures: u64,
    pub checkpoint_kills: u64,
    pub ship_disconnects: u64,
    pub ack_losses: u64,
    pub follower_kills: u64,
    pub promote_catchups: u64,
}

static INJ_EVAL_PANICS: AtomicU64 = AtomicU64::new(0);
static INJ_WORKER_PANICS: AtomicU64 = AtomicU64::new(0);
static INJ_SPAWN_FAILS: AtomicU64 = AtomicU64::new(0);
static INJ_DELAYS: AtomicU64 = AtomicU64::new(0);
static INJ_STORE_POISONS: AtomicU64 = AtomicU64::new(0);
static INJ_WAL_TORN: AtomicU64 = AtomicU64::new(0);
static INJ_WAL_SYNC_FAILS: AtomicU64 = AtomicU64::new(0);
static INJ_CKPT_KILLS: AtomicU64 = AtomicU64::new(0);
static INJ_SHIP_DISCONNECTS: AtomicU64 = AtomicU64::new(0);
static INJ_ACK_LOSSES: AtomicU64 = AtomicU64::new(0);
static INJ_FOLLOWER_KILLS: AtomicU64 = AtomicU64::new(0);
static INJ_PROMOTE_CATCHUPS: AtomicU64 = AtomicU64::new(0);

/// Snapshot the injected-fault tallies.
pub fn injected_faults() -> InjectedFaults {
    InjectedFaults {
        eval_panics: INJ_EVAL_PANICS.load(Ordering::Relaxed),
        worker_panics: INJ_WORKER_PANICS.load(Ordering::Relaxed),
        spawn_failures: INJ_SPAWN_FAILS.load(Ordering::Relaxed),
        delays: INJ_DELAYS.load(Ordering::Relaxed),
        store_poisons: INJ_STORE_POISONS.load(Ordering::Relaxed),
        wal_torn_writes: INJ_WAL_TORN.load(Ordering::Relaxed),
        wal_sync_failures: INJ_WAL_SYNC_FAILS.load(Ordering::Relaxed),
        checkpoint_kills: INJ_CKPT_KILLS.load(Ordering::Relaxed),
        ship_disconnects: INJ_SHIP_DISCONNECTS.load(Ordering::Relaxed),
        ack_losses: INJ_ACK_LOSSES.load(Ordering::Relaxed),
        follower_kills: INJ_FOLLOWER_KILLS.load(Ordering::Relaxed),
        promote_catchups: INJ_PROMOTE_CATCHUPS.load(Ordering::Relaxed),
    }
}

/// Zero the injected-fault tallies (chaos-test setup).
pub fn reset_injected_faults() {
    for c in [
        &INJ_EVAL_PANICS,
        &INJ_WORKER_PANICS,
        &INJ_SPAWN_FAILS,
        &INJ_DELAYS,
        &INJ_STORE_POISONS,
        &INJ_WAL_TORN,
        &INJ_WAL_SYNC_FAILS,
        &INJ_CKPT_KILLS,
        &INJ_SHIP_DISCONNECTS,
        &INJ_ACK_LOSSES,
        &INJ_FOLLOWER_KILLS,
        &INJ_PROMOTE_CATCHUPS,
    ] {
        c.store(0, Ordering::Relaxed);
    }
}

// --- fail points ------------------------------------------------------------

/// Message prefix on every injected panic; the server's panic-to-error
/// mapping and the chaos assertions both key on it.
pub const INJECTED_PANIC_PREFIX: &str = "injected fault:";

/// Fail point: evaluator tick. Panics (with probability
/// `eval_panic_ppm`) to simulate an evaluator bug.
pub fn maybe_eval_panic() {
    if !faults_active() {
        return;
    }
    let cfg = fault_config();
    if roll(cfg.seed, cfg.eval_panic_ppm) {
        INJ_EVAL_PANICS.fetch_add(1, Ordering::Relaxed);
        panic!("{INJECTED_PANIC_PREFIX} evaluator panic");
    }
}

/// Fail point: parallel worker chunk. Panics (with probability
/// `worker_panic_ppm`) to simulate a worker crashing mid-chunk.
pub fn maybe_worker_panic() {
    if !faults_active() {
        return;
    }
    let cfg = fault_config();
    if roll(cfg.seed, cfg.worker_panic_ppm) {
        INJ_WORKER_PANICS.fetch_add(1, Ordering::Relaxed);
        panic!("{INJECTED_PANIC_PREFIX} worker panic");
    }
}

/// Fail point: worker spawn. Returns `true` (with probability
/// `spawn_fail_ppm`) when the caller should behave as if the spawn
/// failed (the crossbeam shim's `try_spawn` fallback path).
pub fn spawn_denied() -> bool {
    if !faults_active() {
        return false;
    }
    let cfg = fault_config();
    if roll(cfg.seed, cfg.spawn_fail_ppm) {
        INJ_SPAWN_FAILS.fetch_add(1, Ordering::Relaxed);
        return true;
    }
    false
}

/// Fail point: evaluator tick delay. Sleeps `delay_ms` (with
/// probability `delay_ppm`) to force deadline overruns.
pub fn maybe_delay() {
    if !faults_active() {
        return;
    }
    let cfg = fault_config();
    if roll(cfg.seed, cfg.delay_ppm) {
        INJ_DELAYS.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(cfg.delay_ms.max(1)));
    }
}

/// Fail point: shared store write. Returns `true` (with probability
/// `store_poison_ppm`) when the store should panic *while holding its
/// lock* — the caller performs the panic so it happens at the right
/// place. Tallies the injection.
pub fn store_poison_due() -> bool {
    if !faults_active() {
        return false;
    }
    let cfg = fault_config();
    if roll(cfg.seed, cfg.store_poison_ppm) {
        INJ_STORE_POISONS.fetch_add(1, Ordering::Relaxed);
        return true;
    }
    false
}

/// Fail point: WAL append. Returns `true` (with probability
/// `wal_torn_ppm`) when the append should be **torn**: the log writes
/// only a prefix of the batch — drawn with [`torn_cut`] — exactly as if
/// the process had been killed mid-`write(2)`. Tallies the injection.
pub fn wal_torn_due() -> bool {
    if !faults_active() {
        return false;
    }
    let cfg = fault_config();
    if roll(cfg.seed, cfg.wal_torn_ppm) {
        INJ_WAL_TORN.fetch_add(1, Ordering::Relaxed);
        return true;
    }
    false
}

/// How many bytes of a torn `len`-byte write actually land: a seeded
/// draw in `0..len` from this thread's fault stream, so a pinned seed
/// reproduces the same cut points. (`len == 0` → 0.)
pub fn torn_cut(len: usize) -> usize {
    if len == 0 {
        return 0;
    }
    let state = RNG.with(|r| {
        let s = xorshift(r.get() | 1);
        r.set(s);
        s
    });
    (state % len as u64) as usize
}

/// Fail point: WAL sync. Returns `true` (with probability
/// `wal_sync_fail_ppm`) when the log should behave as if `fsync`
/// failed — the write may or may not be on disk, so the log must stop
/// trusting its unsynced tail. Tallies the injection.
pub fn wal_sync_fails() -> bool {
    if !faults_active() {
        return false;
    }
    let cfg = fault_config();
    if roll(cfg.seed, cfg.wal_sync_fail_ppm) {
        INJ_WAL_SYNC_FAILS.fetch_add(1, Ordering::Relaxed);
        return true;
    }
    false
}

/// Fail point: checkpoint step boundary. Returns `true` (with
/// probability `checkpoint_kill_ppm`) when the checkpoint should abort
/// *at this step* as if the process died there — the caller returns an
/// error naming the step so harnesses know which on-disk state to
/// expect. Tallies the injection.
pub fn checkpoint_kill_due() -> bool {
    if !faults_active() {
        return false;
    }
    let cfg = fault_config();
    if roll(cfg.seed, cfg.checkpoint_kill_ppm) {
        INJ_CKPT_KILLS.fetch_add(1, Ordering::Relaxed);
        return true;
    }
    false
}

/// Fail point: replication ship. Returns `true` (with probability
/// `ship_disconnect_ppm`) when a shipped chunk should be cut
/// mid-stream — only a [`torn_cut`] prefix reaches the follower, as if
/// the connection dropped mid-`read`. Tallies the injection.
pub fn ship_disconnect_due() -> bool {
    if !faults_active() {
        return false;
    }
    let cfg = fault_config();
    if roll(cfg.seed, cfg.ship_disconnect_ppm) {
        INJ_SHIP_DISCONNECTS.fetch_add(1, Ordering::Relaxed);
        return true;
    }
    false
}

/// Fail point: replication ack. Returns `true` (with probability
/// `ack_loss_ppm`) when the primary should behave as if the follower's
/// ack never arrived — lag stays visible until the next ack lands.
/// Tallies the injection.
pub fn ack_loss_due() -> bool {
    if !faults_active() {
        return false;
    }
    let cfg = fault_config();
    if roll(cfg.seed, cfg.ack_loss_ppm) {
        INJ_ACK_LOSSES.fetch_add(1, Ordering::Relaxed);
        return true;
    }
    false
}

/// Fail point: follower lifecycle. Returns `true` (with probability
/// `follower_kill_ppm`) when the harness should kill and re-open the
/// follower between pump rounds. Tallies the injection.
pub fn follower_kill_due() -> bool {
    if !faults_active() {
        return false;
    }
    let cfg = fault_config();
    if roll(cfg.seed, cfg.follower_kill_ppm) {
        INJ_FOLLOWER_KILLS.fetch_add(1, Ordering::Relaxed);
        return true;
    }
    false
}

/// Fail point: promotion timing. Returns `true` (with probability
/// `promote_catchup_ppm`) when a promotion should land while a
/// catch-up is still in flight — the nastiest fencing window. Tallies
/// the injection.
pub fn promote_during_catchup_due() -> bool {
    if !faults_active() {
        return false;
    }
    let cfg = fault_config();
    if roll(cfg.seed, cfg.promote_catchup_ppm) {
        INJ_PROMOTE_CATCHUPS.fetch_add(1, Ordering::Relaxed);
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_by_default() {
        // No override and (in the test environment) no env knobs.
        let prev = set_fault_config(Some(FaultConfig::off()));
        assert!(!faults_active());
        assert!(!spawn_denied());
        assert!(!store_poison_due());
        assert!(!wal_torn_due());
        assert!(!wal_sync_fails());
        assert!(!checkpoint_kill_due());
        assert!(!ship_disconnect_due());
        assert!(!ack_loss_due());
        assert!(!follower_kill_due());
        assert!(!promote_during_catchup_due());
        maybe_eval_panic();
        maybe_worker_panic();
        maybe_delay();
        set_fault_config(prev);
    }

    #[test]
    fn certain_probability_always_fires() {
        let prev = set_fault_config(Some(FaultConfig {
            spawn_fail_ppm: 1_000_000,
            seed: 42,
            ..FaultConfig::off()
        }));
        assert!(faults_active());
        assert!(spawn_denied());
        assert!(spawn_denied());
        set_fault_config(prev);
    }

    #[test]
    fn eval_panic_fires_with_prefix_and_counts() {
        let prev = set_fault_config(Some(FaultConfig {
            eval_panic_ppm: 1_000_000,
            seed: 7,
            ..FaultConfig::off()
        }));
        let before = injected_faults().eval_panics;
        let caught = std::panic::catch_unwind(maybe_eval_panic);
        set_fault_config(prev);
        let err = caught.expect_err("must panic at ppm 1_000_000");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.starts_with(INJECTED_PANIC_PREFIX), "got: {msg}");
        assert!(injected_faults().eval_panics > before);
    }

    #[test]
    fn wal_faults_fire_and_tally_at_certainty() {
        let prev = set_fault_config(Some(FaultConfig {
            wal_torn_ppm: 1_000_000,
            wal_sync_fail_ppm: 1_000_000,
            checkpoint_kill_ppm: 1_000_000,
            seed: 11,
            ..FaultConfig::off()
        }));
        let before = injected_faults();
        assert!(wal_torn_due());
        assert!(wal_sync_fails());
        assert!(checkpoint_kill_due());
        let after = injected_faults();
        set_fault_config(prev);
        assert!(after.wal_torn_writes > before.wal_torn_writes);
        assert!(after.wal_sync_failures > before.wal_sync_failures);
        assert!(after.checkpoint_kills > before.checkpoint_kills);
    }

    #[test]
    fn repl_faults_fire_and_tally_at_certainty() {
        let prev = set_fault_config(Some(FaultConfig {
            ship_disconnect_ppm: 1_000_000,
            ack_loss_ppm: 1_000_000,
            follower_kill_ppm: 1_000_000,
            promote_catchup_ppm: 1_000_000,
            seed: 13,
            ..FaultConfig::off()
        }));
        let before = injected_faults();
        assert!(ship_disconnect_due());
        assert!(ack_loss_due());
        assert!(follower_kill_due());
        assert!(promote_during_catchup_due());
        let after = injected_faults();
        set_fault_config(prev);
        assert!(after.ship_disconnects > before.ship_disconnects);
        assert!(after.ack_losses > before.ack_losses);
        assert!(after.follower_kills > before.follower_kills);
        assert!(after.promote_catchups > before.promote_catchups);
    }

    #[test]
    fn torn_cut_stays_in_range() {
        let prev = set_fault_config(Some(FaultConfig {
            seed: 5,
            ..FaultConfig::off()
        }));
        assert_eq!(torn_cut(0), 0);
        for len in [1usize, 2, 7, 64, 4096] {
            for _ in 0..32 {
                let cut = torn_cut(len);
                assert!(cut < len, "cut {cut} out of range for len {len}");
            }
        }
        set_fault_config(prev);
    }

    #[test]
    fn seeded_stream_is_reproducible_per_thread() {
        let draw = |seed: u64| {
            std::thread::spawn(move || {
                let prev = set_fault_config(Some(FaultConfig {
                    worker_panic_ppm: 500_000,
                    seed,
                    ..FaultConfig::off()
                }));
                let mut hits = 0;
                for _ in 0..64 {
                    if std::panic::catch_unwind(maybe_worker_panic).is_err() {
                        hits += 1;
                    }
                }
                set_fault_config(prev);
                hits
            })
            .join()
            .unwrap_or(0)
        };
        let a = draw(99);
        // At 50% over 64 draws some hits and some misses are
        // overwhelmingly likely; the exact count depends on the thread
        // ordinal so we only assert the stream is live.
        assert!(a > 0 && a < 64, "stream looks degenerate: {a}");
    }
}
