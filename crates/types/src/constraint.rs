//! Conditional typing constraints and their solver.
//!
//! `join`, `con` and `unionc` do not have conventional principal type
//! schemes; instead the inference algorithm emits *conditions* —
//! `τ = τ₁ ⊔ τ₂` (lub) and `τ = τ₁ ⊓ τ₂` (glb) — which are maintained
//! alongside the type. The paper (§3.3) calls the result a *principal
//! conditional type-scheme* and prints the unresolved conditions as a
//! `where { "d = "a lub "e, … }` clause.
//!
//! The solver works in two modes:
//!
//! * **gentle** — resolve only constraints whose operands are ground (or
//!   provably equal); anything else is kept symbolic. This is what runs
//!   during inference and at generalization.
//! * **forced** — additionally resolve constraints blocked on *kinded*
//!   variables by committing those variables to their minimal instance
//!   relative to the other operand. This runs for top-level monomorphic
//!   phrases (which the interpreter is about to evaluate), reproducing the
//!   fully resolved types the paper prints for e.g. Figure 3's queries.

use crate::display::{show_type_with, TypeNamer};
use crate::error::TypeError;
use crate::kind::Kind;
use crate::order::{glb, le, lub, type_eq, Partial};
use crate::ty::{is_ground, resolve, t_record, t_variant, Ty, Type, VarGen};
use crate::unify::unify;

/// A pending condition on types.
#[derive(Debug, Clone)]
pub enum Constraint {
    /// `result = left ⊔ right` — from `join` and `con`.
    Lub { result: Ty, left: Ty, right: Ty },
    /// `result = left ⊓ right` — from `unionc`.
    Glb { result: Ty, left: Ty, right: Ty },
    /// `sub ≤ sup` — residual projection constraint (only emitted for
    /// recursive annotation types; structural annotations are discharged
    /// eagerly during inference).
    Sub { sub: Ty, sup: Ty },
}

impl Constraint {
    /// Render in the paper's `where`-clause notation.
    pub fn show(&self, namer: &mut TypeNamer) -> String {
        match self {
            Constraint::Lub {
                result,
                left,
                right,
            } => format!(
                "{} = {} lub {}",
                show_type_with(result, namer),
                show_type_with(left, namer),
                show_type_with(right, namer)
            ),
            Constraint::Glb {
                result,
                left,
                right,
            } => format!(
                "{} = {} glb {}",
                show_type_with(result, namer),
                show_type_with(left, namer),
                show_type_with(right, namer)
            ),
            Constraint::Sub { sub, sup } => format!(
                "{} <= {}",
                show_type_with(sub, namer),
                show_type_with(sup, namer)
            ),
        }
    }

    /// All types mentioned (for free-variable collection).
    pub fn types(&self) -> Vec<Ty> {
        match self {
            Constraint::Lub {
                result,
                left,
                right,
            }
            | Constraint::Glb {
                result,
                left,
                right,
            } => {
                vec![result.clone(), left.clone(), right.clone()]
            }
            Constraint::Sub { sub, sup } => vec![sub.clone(), sup.clone()],
        }
    }
}

/// Outcome of attempting one constraint.
enum Attempt {
    Solved,
    Pending,
}

/// Solve `constraints` in place; discharged constraints are removed.
/// With `force` set, kinded variables blocking a lub/glb are committed to
/// their minimal instances (see module docs).
pub fn solve(
    constraints: &mut Vec<Constraint>,
    gen: &VarGen,
    level: u32,
    force: bool,
) -> Result<(), TypeError> {
    // Iterate to a fixpoint: resolving one constraint can ground another.
    loop {
        let mut progressed = false;
        let mut remaining = Vec::with_capacity(constraints.len());
        for c in constraints.drain(..) {
            match attempt(&c, gen, level, force)? {
                Attempt::Solved => progressed = true,
                Attempt::Pending => remaining.push(c),
            }
        }
        *constraints = remaining;
        if !progressed || constraints.is_empty() {
            return Ok(());
        }
    }
}

fn attempt(c: &Constraint, gen: &VarGen, level: u32, force: bool) -> Result<Attempt, TypeError> {
    match c {
        Constraint::Lub {
            result,
            left,
            right,
        } => {
            // Equal operands: τ ⊔ τ = τ, no grounding needed.
            if let Partial::Known(true) = type_eq(left, right) {
                unify(result, left)?;
                return Ok(Attempt::Solved);
            }
            match lub(left, right)? {
                Partial::Known(t) => {
                    unify(result, &t)?;
                    Ok(Attempt::Solved)
                }
                Partial::Unknown if force => {
                    let t = force_bound(left, right, true, gen, level)?;
                    unify(result, &t)?;
                    Ok(Attempt::Solved)
                }
                Partial::Unknown => Ok(Attempt::Pending),
            }
        }
        Constraint::Glb {
            result,
            left,
            right,
        } => {
            if let Partial::Known(true) = type_eq(left, right) {
                unify(result, left)?;
                return Ok(Attempt::Solved);
            }
            match glb(left, right)? {
                Partial::Known(t) => {
                    unify(result, &t)?;
                    Ok(Attempt::Solved)
                }
                Partial::Unknown if force => {
                    let t = force_bound(left, right, false, gen, level)?;
                    unify(result, &t)?;
                    Ok(Attempt::Solved)
                }
                Partial::Unknown => Ok(Attempt::Pending),
            }
        }
        Constraint::Sub { sub, sup } => match le(sub, sup) {
            Partial::Known(true) => Ok(Attempt::Solved),
            Partial::Known(false) => Err(TypeError::NotSubstructure {
                sub: crate::display::show_type(sub),
                sup: crate::display::show_type(sup),
            }),
            Partial::Unknown => Ok(Attempt::Pending),
        },
    }
}

/// Forced bound computation: commit blocking variables to minimal
/// instances and produce the bound. `upper` selects ⊔ vs ⊓.
///
/// The var-resolution rules (each is the least commitment that lets the
/// bound exist):
///
/// * two variables → unify them; the bound is the shared variable
///   (`τ ⊔ τ = τ`);
/// * `Any`/`Desc` variable vs a type `T` → bind the variable to `T`;
/// * record-kinded variable vs a record → bind it to the record of
///   exactly its kind fields;
/// * variant-kinded variable vs a variant `V` → bind it to a variant with
///   `V`'s label set, taking kind fields where specified and `V`'s fields
///   elsewhere (variant bounds require identical label sets).
fn force_bound(
    left: &Ty,
    right: &Ty,
    upper: bool,
    gen: &VarGen,
    level: u32,
) -> Result<Ty, TypeError> {
    let a = resolve(left);
    let b = resolve(right);
    if let Partial::Known(true) = type_eq(&a, &b) {
        return Ok(a);
    }
    match (&*a, &*b) {
        (Type::Var(x), Type::Var(y)) => force_two_vars(x, y, &a, &b, upper, gen, level),
        (Type::Var(v), _) => force_var_against(v, &a, &b, upper, gen, level),
        (_, Type::Var(v)) => force_var_against(v, &b, &a, upper, gen, level),
        (Type::Set(x), Type::Set(y)) => {
            let e = force_bound(x, y, upper, gen, level)?;
            Ok(crate::ty::t_set(e))
        }
        (Type::Ref(x), Type::Ref(y)) => {
            unify(x, y)?;
            Ok(crate::ty::t_ref(resolve(x)))
        }
        (Type::Record(fa), Type::Record(fb)) => {
            if upper {
                let mut out = std::collections::BTreeMap::new();
                for (l, ta) in fa {
                    match fb.get(l) {
                        None => {
                            out.insert(*l, ta.clone());
                        }
                        Some(tb) => {
                            out.insert(*l, force_bound(ta, tb, true, gen, level)?);
                        }
                    }
                }
                for (l, tb) in fb {
                    if !fa.contains_key(l) {
                        out.insert(*l, tb.clone());
                    }
                }
                Ok(t_record(out))
            } else {
                let mut out = std::collections::BTreeMap::new();
                for (l, ta) in fa {
                    if let Some(tb) = fb.get(l) {
                        // A failed field bound just drops the label.
                        if let Ok(t) = force_bound(ta, tb, false, gen, level) {
                            out.insert(*l, t);
                        }
                    }
                }
                Ok(t_record(out))
            }
        }
        (Type::Variant(fa), Type::Variant(fb)) => {
            if !fa.keys().eq(fb.keys()) {
                return Err(bound_err(&a, &b, upper));
            }
            let mut out = std::collections::BTreeMap::new();
            for (l, ta) in fa {
                out.insert(*l, force_bound(ta, &fb[l], upper, gen, level)?);
            }
            Ok(t_variant(out))
        }
        // Ground incompatible heads (or unsupported rec) — report.
        _ => match if upper { lub(&a, &b) } else { glb(&a, &b) } {
            Ok(Partial::Known(t)) => Ok(t),
            Ok(Partial::Unknown) => Err(bound_err(&a, &b, upper)),
            Err(e) => Err(e),
        },
    }
}

/// Force a bound of two unbound variables. For `Any`/`Desc` kinds the
/// least commitment is to identify them (`τ ⊔ τ = τ`). For two
/// record-kinded or two variant-kinded variables, each is committed to an
/// instance built from its own kind, choosing the label sets so the bound
/// exists, and the bound of the instances is returned — crucially the
/// overlapping kind fields are *bounded*, not unified (e.g.
/// `lub(<BasePart:[Cost:int],…>, <BasePart:[],…>)` keeps `[Cost:int]`).
fn force_two_vars(
    x: &crate::ty::TvRef,
    y: &crate::ty::TvRef,
    a: &Ty,
    b: &Ty,
    upper: bool,
    gen: &VarGen,
    level: u32,
) -> Result<Ty, TypeError> {
    use std::collections::BTreeMap;
    match (x.kind(), y.kind()) {
        (Kind::Record { fields: fx, .. }, Kind::Record { fields: fy, .. }) => {
            let ax = t_record(fx);
            let by = t_record(fy);
            unify(a, &ax)?;
            unify(b, &by)?;
            force_bound(&resolve(a), &resolve(b), upper, gen, level)
        }
        (Kind::Variant { fields: fx, .. }, Kind::Variant { fields: fy, .. }) => {
            // Both instances take the union of the two label sets so the
            // (identical-label-set) variant bound exists.
            let mut ix: BTreeMap<crate::ty::Label, Ty> = BTreeMap::new();
            let mut iy: BTreeMap<crate::ty::Label, Ty> = BTreeMap::new();
            for (l, t) in &fx {
                ix.insert(*l, t.clone());
                iy.insert(*l, fy.get(l).cloned().unwrap_or_else(|| t.clone()));
            }
            for (l, t) in &fy {
                iy.insert(*l, t.clone());
                ix.entry(*l).or_insert_with(|| t.clone());
            }
            let ax = t_variant(ix);
            let by = t_variant(iy);
            unify(a, &ax)?;
            unify(b, &by)?;
            force_bound(&resolve(a), &resolve(b), upper, gen, level)
        }
        // Mixed or unconstrained kinds: identify the variables.
        _ => {
            unify(a, b)?;
            Ok(resolve(a))
        }
    }
}

fn bound_err(a: &Ty, b: &Ty, upper: bool) -> TypeError {
    if upper {
        TypeError::LubUndefined {
            left: crate::display::show_type(a),
            right: crate::display::show_type(b),
        }
    } else {
        TypeError::GlbUndefined {
            left: crate::display::show_type(a),
            right: crate::display::show_type(b),
        }
    }
}

fn force_var_against(
    v: &crate::ty::TvRef,
    var_ty: &Ty,
    other: &Ty,
    upper: bool,
    gen: &VarGen,
    level: u32,
) -> Result<Ty, TypeError> {
    match v.kind() {
        Kind::Any | Kind::Desc => {
            // Least commitment: the variable *is* the other side.
            unify(var_ty, other)?;
            Ok(resolve(other))
        }
        Kind::Record { fields, .. } => {
            // Commit to exactly the kind's fields.
            let minimal = t_record(fields.clone());
            unify(var_ty, &minimal)?;
            force_bound(&resolve(var_ty), other, upper, gen, level)
        }
        Kind::Variant { fields, .. } => {
            // Variant bounds need identical label sets: adopt the other
            // side's labels, keeping kind fields where present.
            let Type::Variant(om) = &*resolve(other) else {
                return Err(bound_err(var_ty, other, upper));
            };
            let mut fs = std::collections::BTreeMap::new();
            for (l, ot) in om {
                match fields.get(l) {
                    Some(ft) => {
                        fs.insert(*l, ft.clone());
                    }
                    None => {
                        fs.insert(*l, ot.clone());
                    }
                }
            }
            // Kind fields not present in the other side make the bound
            // impossible (labels cannot be added to a variant bound).
            for l in fields.keys() {
                if !om.contains_key(l) {
                    return Err(bound_err(var_ty, other, upper));
                }
            }
            let minimal = t_variant(fs);
            unify(var_ty, &minimal)?;
            force_bound(&resolve(var_ty), other, upper, gen, level)
        }
    }
}

/// True when every type mentioned by `c` is ground.
pub fn constraint_ground(c: &Constraint) -> bool {
    c.types().iter().all(is_ground)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::*;

    fn setup() -> VarGen {
        VarGen::new()
    }

    #[test]
    fn ground_lub_resolves() {
        let gen = setup();
        let r = gen.fresh_ty(Kind::Desc, 0);
        let mut cs = vec![Constraint::Lub {
            result: r.clone(),
            left: t_record([("A".into(), t_int())]),
            right: t_record([("B".into(), t_str())]),
        }];
        solve(&mut cs, &gen, 0, false).unwrap();
        assert!(cs.is_empty());
        let resolved = resolve(&r);
        match &*resolved {
            Type::Record(fs) => assert_eq!(fs.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn symbolic_lub_stays_pending_without_force() {
        let gen = setup();
        let a = gen.fresh_ty(Kind::Desc, 0);
        let b = gen.fresh_ty(Kind::Desc, 0);
        let r = gen.fresh_ty(Kind::Desc, 0);
        let mut cs = vec![Constraint::Lub {
            result: r,
            left: a,
            right: b,
        }];
        solve(&mut cs, &gen, 0, false).unwrap();
        assert_eq!(cs.len(), 1);
    }

    #[test]
    fn equal_operands_resolve_without_grounding() {
        let gen = setup();
        let a = gen.fresh_ty(Kind::Desc, 0);
        let r = gen.fresh_ty(Kind::Desc, 0);
        let mut cs = vec![Constraint::Lub {
            result: r.clone(),
            left: a.clone(),
            right: a.clone(),
        }];
        solve(&mut cs, &gen, 0, false).unwrap();
        assert!(cs.is_empty());
        assert_eq!(type_eq(&resolve(&r), &resolve(&a)), Partial::Known(true));
    }

    #[test]
    fn forced_record_var_commits_minimal() {
        // lub([Pname:string, P#:int], α ⊇ {P#:int}) forced:
        // α := [P#:int]; result = [Pname:string, P#:int].
        let gen = setup();
        let alpha = gen.fresh_ty(Kind::record([("P#".into(), t_int())], true), 0);
        let parts = t_record([("Pname".into(), t_str()), ("P#".into(), t_int())]);
        let r = gen.fresh_ty(Kind::Desc, 0);
        let mut cs = vec![Constraint::Lub {
            result: r.clone(),
            left: parts.clone(),
            right: alpha,
        }];
        solve(&mut cs, &gen, 0, true).unwrap();
        assert!(cs.is_empty());
        assert_eq!(type_eq(&resolve(&r), &parts), Partial::Known(true));
    }

    #[test]
    fn forced_variant_var_adopts_labels() {
        // The Figure 3 situation: lub(full variant, α ⊇ {BasePart: []}).
        let gen = setup();
        let full = t_variant([
            ("BasePart".into(), t_record([("Cost".into(), t_int())])),
            ("CompositePart".into(), t_int()),
        ]);
        let alpha = gen.fresh_ty(Kind::variant([("BasePart".into(), t_record([]))], true), 0);
        let r = gen.fresh_ty(Kind::Desc, 0);
        let mut cs = vec![Constraint::Lub {
            result: r.clone(),
            left: full.clone(),
            right: alpha,
        }];
        solve(&mut cs, &gen, 0, true).unwrap();
        assert!(cs.is_empty());
        assert_eq!(type_eq(&resolve(&r), &full), Partial::Known(true));
    }

    #[test]
    fn inconsistent_ground_lub_errors() {
        let gen = setup();
        let r = gen.fresh_ty(Kind::Desc, 0);
        let mut cs = vec![Constraint::Lub {
            result: r,
            left: t_record([("Name".into(), t_str())]),
            right: t_record([("Name".into(), t_record([("First".into(), t_str())]))]),
        }];
        let err = solve(&mut cs, &gen, 0, false).unwrap_err();
        assert!(matches!(err, TypeError::LubUndefined { .. }));
    }

    #[test]
    fn ground_glb_resolves_to_intersection() {
        let gen = setup();
        let r = gen.fresh_ty(Kind::Desc, 0);
        let student = t_record([("Name".into(), t_str()), ("Advisor".into(), t_int())]);
        let employee = t_record([("Name".into(), t_str()), ("Salary".into(), t_int())]);
        let mut cs = vec![Constraint::Glb {
            result: r.clone(),
            left: student,
            right: employee,
        }];
        solve(&mut cs, &gen, 0, false).unwrap();
        assert!(cs.is_empty());
        match &*resolve(&r) {
            Type::Record(fs) => {
                assert_eq!(fs.keys().cloned().collect::<Vec<_>>(), vec!["Name"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn chained_constraints_reach_fixpoint() {
        // e = [A] ⊔ [B]; d = e ⊔ [C] — second becomes solvable only after
        // the first resolves.
        let gen = setup();
        let e = gen.fresh_ty(Kind::Desc, 0);
        let d = gen.fresh_ty(Kind::Desc, 0);
        let mut cs = vec![
            Constraint::Lub {
                result: d.clone(),
                left: e.clone(),
                right: t_record([("C".into(), t_int())]),
            },
            Constraint::Lub {
                result: e,
                left: t_record([("A".into(), t_int())]),
                right: t_record([("B".into(), t_int())]),
            },
        ];
        solve(&mut cs, &gen, 0, false).unwrap();
        assert!(cs.is_empty());
        match &*resolve(&d) {
            Type::Record(fs) => assert_eq!(fs.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sub_constraint_checks_when_ground() {
        let gen = setup();
        let mut cs = vec![Constraint::Sub {
            sub: t_record([("Name".into(), t_str())]),
            sup: t_record([("Name".into(), t_str()), ("Age".into(), t_int())]),
        }];
        solve(&mut cs, &gen, 0, false).unwrap();
        assert!(cs.is_empty());
        let mut bad = vec![Constraint::Sub {
            sub: t_record([("Zip".into(), t_str())]),
            sup: t_record([("Name".into(), t_str())]),
        }];
        assert!(solve(&mut bad, &gen, 0, false).is_err());
    }

    #[test]
    fn constraint_show_notation() {
        let gen = setup();
        let mut namer = TypeNamer::new();
        let a = gen.fresh_ty(Kind::Desc, 0);
        let b = gen.fresh_ty(Kind::Desc, 0);
        let r = gen.fresh_ty(Kind::Desc, 0);
        let c = Constraint::Lub {
            result: r,
            left: a,
            right: b,
        };
        assert_eq!(c.show(&mut namer), "\"a = \"b lub \"c");
    }
}
