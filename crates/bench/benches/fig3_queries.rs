//! E3 bench — the Figure 3 queries over a scaled part–supplier database:
//! interpreted vs native, base-part selection and the supplied-by query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// Short measurement windows so the full figure suite runs in minutes;
/// rerun individual benches with Criterion CLI flags for precision.
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}
use machiavelli::value::Value;
use machiavelli_bench::scaled_parts_session;
use machiavelli_relational::nested_loop_join;

fn bench_base_parts(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_base_parts");
    group.sample_size(15);
    for n in [20usize, 80, 250] {
        let (mut session, db) = scaled_parts_session(n, 10, 3);
        group.bench_with_input(BenchmarkId::new("interpreted", n), &n, |b, _| {
            b.iter(|| {
                session
                    .eval_one("join(parts, {[Pinfo=(BasePart of [])]});")
                    .unwrap()
                    .value
            })
        });
        group.bench_with_input(BenchmarkId::new("native", n), &n, |b, _| {
            b.iter(|| {
                db.parts.select(|v| {
                    matches!(v, Value::Record(fs)
                        if matches!(fs.get("Pinfo"), Some(Value::Variant(tag, _)) if tag == "BasePart"))
                })
            })
        });
    }
    group.finish();
}

fn bench_supplied_by(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_supplied_by");
    group.sample_size(10);
    for n in [20usize, 80, 250] {
        let (mut session, db) = scaled_parts_session(n, 10, 3);
        session
            .run("fun Join3(x,y,z) = join(x, join(y,z));")
            .unwrap();
        let query = r#"select x.Pname
                       where x <- join(parts, supplied_by)
                       with Join3(x.Suppliers, suppliers, {[Sname="supplier0"]}) <> {};"#;
        group.bench_with_input(BenchmarkId::new("interpreted", n), &n, |b, _| {
            b.iter(|| session.eval_one(query).unwrap().value)
        });
        group.bench_with_input(BenchmarkId::new("native", n), &n, |b, _| {
            b.iter(|| {
                // join parts ⋈ supplied_by, then filter on nested supplier
                // membership, then project names.
                let joined = nested_loop_join(&db.parts, &db.supplied_by);
                joined
                    .select(|v| {
                        let Value::Record(fs) = v else { return false };
                        let Some(Value::Set(sups)) = fs.get("Suppliers") else {
                            return false;
                        };
                        sups.iter().any(|s| {
                            let Value::Record(sf) = s else { return false };
                            db.suppliers.iter().any(|row| {
                                let Value::Record(rf) = row else { return false };
                                rf.get("S#") == sf.get("S#")
                                    && rf.get("Sname") == Some(&Value::str("supplier0"))
                            })
                        })
                    })
                    .project(&["Pname"])
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_base_parts, bench_supplied_by
}
criterion_main!(benches);
