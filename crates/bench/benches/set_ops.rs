//! Substrate bench — canonical-set operations (union, intersection,
//! membership, construction) and the generalized `unionc`, over growing
//! sets. Expected shape: merge-based union/intersect linear; membership
//! logarithmic; construction n·log n.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// Short measurement windows so the full figure suite runs in minutes;
/// rerun individual benches with Criterion CLI flags for precision.
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}
use machiavelli::value::{unionc_value, MSet, Value};

fn ints(lo: i64, hi: i64) -> MSet {
    MSet::from_iter((lo..hi).map(Value::Int))
}

fn bench_set_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("set_ops");
    for n in [1_000i64, 10_000, 100_000] {
        let a = ints(0, n);
        let b = ints(n / 2, n + n / 2);
        group.bench_with_input(BenchmarkId::new("union", n), &n, |bch, _| {
            bch.iter(|| a.union(&b))
        });
        group.bench_with_input(BenchmarkId::new("intersect", n), &n, |bch, _| {
            bch.iter(|| a.intersect(&b))
        });
        group.bench_with_input(BenchmarkId::new("difference", n), &n, |bch, _| {
            bch.iter(|| a.difference(&b))
        });
        group.bench_with_input(BenchmarkId::new("member", n), &n, |bch, _| {
            bch.iter(|| a.contains(&Value::Int(n - 1)))
        });
        group.bench_with_input(BenchmarkId::new("construct", n), &n, |bch, &n| {
            bch.iter(|| MSet::from_iter((0..n).rev().map(Value::Int)))
        });
    }
    group.finish();
}

fn bench_unionc(c: &mut Criterion) {
    let mut group = c.benchmark_group("unionc");
    group.sample_size(20);
    for n in [100i64, 1_000] {
        let students = Value::Set(MSet::from_iter((0..n).map(|i| {
            Value::record([
                ("Name".into(), Value::str(format!("s{i}"))),
                ("Advisor".into(), Value::Int(i % 10)),
            ])
        })));
        let employees = Value::Set(MSet::from_iter((0..n).map(|i| {
            Value::record([
                ("Name".into(), Value::str(format!("e{i}"))),
                ("Salary".into(), Value::Int(i * 100)),
            ])
        })));
        group.bench_with_input(BenchmarkId::new("records", n), &n, |b, _| {
            b.iter(|| unionc_value(&students, &employees).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_set_ops, bench_unionc
}
criterion_main!(benches);
