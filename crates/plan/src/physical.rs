//! The physical operator pipeline: an executable tree of `Scan` /
//! `Filter` / `HashJoin` / `NestedLoop` operators under a `Project`,
//! plus a pull-based executor over [`Value`]/[`MSet`].
//!
//! Operators yield **environments**: each pulled row is the outer
//! evaluation environment extended with one binding per generator
//! (environments are persistent linked lists, so extension is O(1) and
//! shares all tails). Expression evaluation — sources, filters, keys,
//! the result — goes through the [`EvalHook`] callback into the real
//! evaluator, so the pipeline adds strategy, never new semantics.
//!
//! Hash-join keys reuse the structural hashing of
//! [`machiavelli_value::hash_value`] with [`value_eq`] equality, exactly
//! like the relational substrate's `RowKey` — collision-correct for all
//! description values, no rendering, no reliance on display injectivity.

use crate::analysis::Conjunct;
use crate::logical::LogicalPlan;
use machiavelli_syntax::ast::Expr;
use machiavelli_syntax::symbol::Symbol;
use machiavelli_value::{hash_value, show_value, value_eq, Env, MSet, Value};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Callback into the host evaluator. The executor never interprets
/// expressions itself; it only decides *which* expressions to evaluate
/// *in which* environments.
pub trait EvalHook {
    type Error;
    fn eval(&mut self, env: &Env, expr: &Expr) -> Result<Value, Self::Error>;
}

/// Executor errors: either the hook failed, or a value had the wrong
/// shape at an operator boundary (mirroring the evaluator's own errors
/// so the dispatch layer can convert losslessly).
#[derive(Debug)]
pub enum ExecError<E> {
    /// The evaluator callback failed (raised, unbound, …).
    Eval(E),
    /// A generator source evaluated to a non-set (rendered value).
    NotASet(String),
    /// A strict conjunct (left operand of `andalso`) evaluated to a
    /// non-boolean (rendered value).
    NotABool(String),
}

impl<E> From<E> for ExecError<E> {
    fn from(e: E) -> Self {
        ExecError::Eval(e)
    }
}

/// A physical operator. The tree is left-deep in generator order:
/// generator 0 is the innermost `Scan`, each later generator wraps the
/// pipeline in a join operator, and residual conjuncts sit in `Filter`
/// nodes at the level where they become decidable.
#[derive(Debug)]
pub enum PhysOp<'a> {
    /// Materialize an independent source once and stream its elements,
    /// binding `var` (pushed-down conjuncts applied per element).
    Scan {
        var: Symbol,
        source: &'a Expr,
        filters: Vec<Conjunct<'a>>,
    },
    /// Cross/“θ” join: for each input row, iterate the source — evaluated
    /// once when independent, per input row when `dependent`.
    NestedLoop {
        input: Box<PhysOp<'a>>,
        var: Symbol,
        source: &'a Expr,
        dependent: bool,
        filters: Vec<Conjunct<'a>>,
    },
    /// Hash build/probe equi-join: build a table over the (independent)
    /// source keyed by `build_keys(var)`, then probe with
    /// `probe_keys(earlier binders)` per input row.
    HashJoin {
        input: Box<PhysOp<'a>>,
        var: Symbol,
        source: &'a Expr,
        filters: Vec<Conjunct<'a>>,
        probe_keys: Vec<&'a Expr>,
        build_keys: Vec<&'a Expr>,
    },
    /// Residual predicate evaluation over input rows.
    Filter {
        input: Box<PhysOp<'a>>,
        conjuncts: Vec<Conjunct<'a>>,
    },
}

/// The full pipeline: operator tree plus the projected result.
#[derive(Debug)]
pub struct PhysicalPlan<'a> {
    pub root: PhysOp<'a>,
    pub result: &'a Expr,
}

impl<'a> LogicalPlan<'a> {
    /// Lower to the physical operator tree.
    pub fn physical(self) -> PhysicalPlan<'a> {
        let mut steps = self.steps.into_iter();
        let first = steps.next().expect("compile() guarantees ≥1 generator");
        let mut root = PhysOp::Scan {
            var: first.var,
            source: first.source,
            filters: first.filters,
        };
        debug_assert!(first.keys.is_empty(), "first generator cannot equi-join");
        if !first.residual.is_empty() {
            root = PhysOp::Filter {
                input: Box::new(root),
                conjuncts: first.residual,
            };
        }
        for step in steps {
            root = if !step.keys.is_empty() {
                PhysOp::HashJoin {
                    input: Box::new(root),
                    var: step.var,
                    source: step.source,
                    filters: step.filters,
                    probe_keys: step.keys.iter().map(|k| k.probe).collect(),
                    build_keys: step.keys.iter().map(|k| k.build).collect(),
                }
            } else {
                PhysOp::NestedLoop {
                    input: Box::new(root),
                    var: step.var,
                    source: step.source,
                    dependent: step.dependent,
                    filters: step.filters,
                }
            };
            if !step.residual.is_empty() {
                root = PhysOp::Filter {
                    input: Box::new(root),
                    conjuncts: step.residual,
                };
            }
        }
        PhysicalPlan {
            root,
            result: self.result,
        }
    }
}

/// An owned composite hash key: structural hash, `value_eq` equality —
/// consistent by construction, like `ValueKey`, but owning its values so
/// the build table can outlive the probe loop.
#[derive(Debug)]
struct KeyTuple(Vec<Value>);

impl Hash for KeyTuple {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for v in &self.0 {
            hash_value(v, state);
        }
    }
}

impl PartialEq for KeyTuple {
    fn eq(&self, other: &Self) -> bool {
        self.0.len() == other.0.len() && self.0.iter().zip(&other.0).all(|(a, b)| value_eq(a, b))
    }
}

impl Eq for KeyTuple {}

/// Run the pipeline in `env`, returning the canonical result set.
/// Independent sources are evaluated exactly once, in generator order;
/// the result expression runs per surviving binding, in the same order
/// the nested-loop semantics would reach it; deduplication happens once
/// at the end.
pub fn execute<H: EvalHook>(
    plan: &PhysicalPlan<'_>,
    env: &Env,
    hook: &mut H,
) -> Result<Value, ExecError<H::Error>> {
    let mut root = Node::open(&plan.root, env, hook)?;
    let mut out = Vec::new();
    while let Some(binding) = root.next(hook)? {
        out.push(hook.eval(&binding, plan.result)?);
    }
    Ok(Value::Set(MSet::from_iter(out)))
}

/// Check one conjunct against a candidate binding. `Ok(true)` accepts,
/// `Ok(false)` rejects; a strict conjunct evaluating to a non-boolean
/// reproduces the evaluator's `andalso` error.
fn check<H: EvalHook>(
    c: &Conjunct<'_>,
    env: &Env,
    hook: &mut H,
) -> Result<bool, ExecError<H::Error>> {
    match hook.eval(env, c.expr)? {
        Value::Bool(b) => Ok(b),
        other if c.strict => Err(ExecError::NotABool(show_value(&other))),
        _ => Ok(false),
    }
}

fn check_all<H: EvalHook>(
    cs: &[Conjunct<'_>],
    env: &Env,
    hook: &mut H,
) -> Result<bool, ExecError<H::Error>> {
    for c in cs {
        if !check(c, env, hook)? {
            return Ok(false);
        }
    }
    Ok(true)
}

fn as_set<E>(v: Value) -> Result<MSet, ExecError<E>> {
    match v {
        Value::Set(s) => Ok(s),
        other => Err(ExecError::NotASet(show_value(&other))),
    }
}

/// Runtime state of one operator (same shape as [`PhysOp`]).
enum Node<'p> {
    Scan {
        var: Symbol,
        filters: &'p [Conjunct<'p>],
        base: Env,
        items: MSet,
        idx: usize,
    },
    NestedLoop {
        input: Box<Node<'p>>,
        var: Symbol,
        source: &'p Expr,
        filters: &'p [Conjunct<'p>],
        /// `Some` when the source is independent (evaluated at open).
        fixed: Option<MSet>,
        /// The in-flight outer binding and its source cursor.
        cur: Option<(Env, MSet, usize)>,
    },
    HashJoin {
        input: Box<Node<'p>>,
        var: Symbol,
        probe_keys: &'p [&'p Expr],
        /// Build rows grouped by key, in source (canonical set) order.
        table: HashMap<KeyTuple, Vec<Value>>,
        /// The in-flight probe binding and its match cursor.
        cur: Option<(Env, Vec<Value>, usize)>,
    },
    Filter {
        input: Box<Node<'p>>,
        conjuncts: &'p [Conjunct<'p>],
    },
}

impl<'p> Node<'p> {
    /// Open the pipeline: recurse input-first so independent sources are
    /// evaluated in generator order (matching `select_loop`'s up-front
    /// source pass, including which source errors first).
    fn open<H: EvalHook>(
        op: &'p PhysOp<'p>,
        env: &Env,
        hook: &mut H,
    ) -> Result<Node<'p>, ExecError<H::Error>> {
        Ok(match op {
            PhysOp::Scan {
                var,
                source,
                filters,
            } => {
                let items = as_set(hook.eval(env, source)?)?;
                Node::Scan {
                    var: *var,
                    filters,
                    base: env.clone(),
                    items,
                    idx: 0,
                }
            }
            PhysOp::NestedLoop {
                input,
                var,
                source,
                dependent,
                filters,
            } => {
                let input = Box::new(Node::open(input, env, hook)?);
                let fixed = if *dependent {
                    None
                } else {
                    Some(as_set(hook.eval(env, source)?)?)
                };
                Node::NestedLoop {
                    input,
                    var: *var,
                    source,
                    filters,
                    fixed,
                    cur: None,
                }
            }
            PhysOp::HashJoin {
                input,
                var,
                source,
                filters,
                probe_keys,
                build_keys,
            } => {
                let input = Box::new(Node::open(input, env, hook)?);
                let items = as_set(hook.eval(env, source)?)?;
                // Build phase: pushed filters prune rows, then each row
                // is keyed in the *outer* environment extended with only
                // its own binding (keys mention only this binder).
                #[allow(clippy::mutable_key_type)] // refs hash by identity
                let mut table: HashMap<KeyTuple, Vec<Value>> = HashMap::with_capacity(items.len());
                for item in items.iter() {
                    let row_env = env.bind(*var, item.clone());
                    if !check_all(filters, &row_env, hook)? {
                        continue;
                    }
                    let key = KeyTuple(
                        build_keys
                            .iter()
                            .map(|k| hook.eval(&row_env, k))
                            .collect::<Result<_, _>>()?,
                    );
                    table.entry(key).or_default().push(item.clone());
                }
                Node::HashJoin {
                    input,
                    var: *var,
                    probe_keys,
                    table,
                    cur: None,
                }
            }
            PhysOp::Filter { input, conjuncts } => Node::Filter {
                input: Box::new(Node::open(input, env, hook)?),
                conjuncts,
            },
        })
    }

    /// Pull the next surviving binding, or `None` when exhausted.
    fn next<H: EvalHook>(&mut self, hook: &mut H) -> Result<Option<Env>, ExecError<H::Error>> {
        match self {
            Node::Scan {
                var,
                filters,
                base,
                items,
                idx,
            } => {
                while *idx < items.len() {
                    let item = items.as_slice()[*idx].clone();
                    *idx += 1;
                    let env = base.bind(*var, item);
                    if check_all(filters, &env, hook)? {
                        return Ok(Some(env));
                    }
                }
                Ok(None)
            }
            Node::NestedLoop {
                input,
                var,
                source,
                filters,
                fixed,
                cur,
            } => loop {
                if let Some((outer, items, idx)) = cur {
                    while *idx < items.len() {
                        let item = items.as_slice()[*idx].clone();
                        *idx += 1;
                        let env = outer.bind(*var, item);
                        if check_all(filters, &env, hook)? {
                            return Ok(Some(env));
                        }
                    }
                    *cur = None;
                }
                let Some(outer) = input.next(hook)? else {
                    return Ok(None);
                };
                let items = match fixed {
                    Some(s) => s.clone(),
                    None => as_set(hook.eval(&outer, source)?)?,
                };
                *cur = Some((outer, items, 0));
            },
            Node::HashJoin {
                input,
                var,
                probe_keys,
                table,
                cur,
            } => loop {
                if let Some((outer, matches, idx)) = cur {
                    if *idx < matches.len() {
                        let item = matches[*idx].clone();
                        *idx += 1;
                        return Ok(Some(outer.bind(*var, item)));
                    }
                    *cur = None;
                }
                // Empty-build short-circuit: nothing can ever match, so
                // don't even pull. Independent sources were all evaluated
                // at open; what this skips below is only the evaluation
                // of planner-safe dependent sources and pushed filters —
                // pure and total on type-checked programs, so skipping
                // them is unobservable under the crate's contract (an
                // *ill-typed* program driven straight through `eval_expr`
                // could see a NotASet/NotABool here that `select_loop`
                // would have raised).
                if table.is_empty() {
                    return Ok(None);
                }
                let Some(outer) = input.next(hook)? else {
                    return Ok(None);
                };
                let key = KeyTuple(
                    probe_keys
                        .iter()
                        .map(|k| hook.eval(&outer, k))
                        .collect::<Result<_, _>>()?,
                );
                if let Some(matches) = table.get(&key) {
                    // Cloning the match list is len × O(1) `Rc` bumps.
                    *cur = Some((outer, matches.clone(), 0));
                }
            },
            Node::Filter { input, conjuncts } => loop {
                let Some(env) = input.next(hook)? else {
                    return Ok(None);
                };
                if check_all(conjuncts, &env, hook)? {
                    return Ok(Some(env));
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::compile;
    use machiavelli_syntax::ast::ExprKind;
    use machiavelli_syntax::parse_expr;

    /// A minimal structural evaluator covering the safe-expression class
    /// (the real evaluator lives above this crate; tests only need
    /// variables, fields, literals, `=`/`<`/`>`, sets and records).
    struct MiniEval;

    impl EvalHook for MiniEval {
        type Error = String;
        fn eval(&mut self, env: &Env, expr: &Expr) -> Result<Value, String> {
            use machiavelli_syntax::ast::BinOp;
            Ok(match &expr.kind {
                ExprKind::Int(n) => Value::Int(*n),
                ExprKind::Bool(b) => Value::Bool(*b),
                ExprKind::Str(s) => Value::str(s.as_str()),
                ExprKind::Var(x) => env.lookup(x).ok_or_else(|| format!("unbound {x}"))?,
                ExprKind::Field { expr, label } => match self.eval(env, expr)? {
                    Value::Record(fs) => fs
                        .get(label)
                        .cloned()
                        .ok_or_else(|| format!("no {label}"))?,
                    _ => return Err("not a record".into()),
                },
                ExprKind::Record(fields) => Value::record(
                    fields
                        .iter()
                        .map(|(l, fe)| Ok((*l, self.eval(env, fe)?)))
                        .collect::<Result<Vec<_>, String>>()?,
                ),
                ExprKind::Binop { op, left, right } => {
                    let l = self.eval(env, left)?;
                    let r = self.eval(env, right)?;
                    match op {
                        BinOp::Eq => Value::Bool(l == r),
                        BinOp::Lt => Value::Bool(l < r),
                        BinOp::Gt => Value::Bool(l > r),
                        _ => return Err("mini-eval: unsupported op".into()),
                    }
                }
                _ => return Err("mini-eval: unsupported expr".into()),
            })
        }
    }

    fn rows(label_vals: &[(i64, i64)]) -> Value {
        Value::set(label_vals.iter().map(|(k, a)| {
            Value::record([("K".into(), Value::Int(*k)), ("A".into(), Value::Int(*a))])
        }))
    }

    fn run(src: &str, env: &Env) -> Value {
        let e = parse_expr(src).unwrap();
        let ExprKind::Select {
            result,
            generators,
            pred,
        } = &e.kind
        else {
            panic!()
        };
        let plan = compile(generators, pred, result).unwrap().physical();
        execute(&plan, env, &mut MiniEval).unwrap()
    }

    #[test]
    fn hash_join_pipeline_matches_expected() {
        let env = Env::new()
            .bind("r", rows(&[(1, 10), (2, 20), (3, 30)]))
            .bind("s", rows(&[(2, 200), (3, 300), (3, 301), (9, 900)]));
        let got = run(
            "select (x.A, y.A) where x <- r, y <- s with x.K = y.K",
            &env,
        );
        let want = Value::set([
            Value::tuple([Value::Int(20), Value::Int(200)]),
            Value::tuple([Value::Int(30), Value::Int(300)]),
            Value::tuple([Value::Int(30), Value::Int(301)]),
        ]);
        assert_eq!(got, want);
    }

    #[test]
    fn pushdown_filter_applies_before_join() {
        let env = Env::new()
            .bind("r", rows(&[(1, 1), (2, 2)]))
            .bind("s", rows(&[(1, 5), (2, 6)]));
        let got = run(
            "select y.A where x <- r, y <- s with x.K = y.K andalso x.A > 1",
            &env,
        );
        assert_eq!(got, Value::set([Value::Int(6)]));
    }

    #[test]
    fn empty_build_side_yields_empty() {
        let env = Env::new()
            .bind("r", rows(&[(1, 1)]))
            .bind("s", Value::set([]));
        let got = run("select x where x <- r, y <- s with x.K = y.K", &env);
        assert_eq!(got, Value::set([]));
    }

    #[test]
    fn non_set_source_errors_like_the_evaluator() {
        let env = Env::new().bind("r", Value::Int(3));
        let e = parse_expr("select x where x <- r with true").unwrap();
        let ExprKind::Select {
            result,
            generators,
            pred,
        } = &e.kind
        else {
            panic!()
        };
        let plan = compile(generators, pred, result).unwrap().physical();
        match execute(&plan, &env, &mut MiniEval) {
            Err(ExecError::NotASet(shown)) => assert_eq!(shown, "3"),
            other => panic!("{other:?}"),
        }
    }
}
