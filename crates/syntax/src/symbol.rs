//! Interned identifiers and record/variant labels.
//!
//! A [`Symbol`] wraps a `&'static str` owned by a global, append-only
//! intern table. The table deduplicates, so equal strings always yield
//! the *same* allocation — equality is a pointer compare, and `as_str`,
//! `Ord`, `Hash`, `Display` are all lock-free (the interner's lock is
//! taken only inside [`Symbol::intern`]). The total order is the
//! *string* order (with a pointer fast path for equality), so
//! collections sorted by `Symbol` — record fields, label maps — iterate
//! in the same canonical label order the paper's notation uses.
//!
//! Interned strings are leaked, which is the standard trade for
//! `&'static str` access: label universes are bounded by the program
//! text and schema, not the data.
//!
//! `Symbol` implements `Deref<Target = str>` and `Borrow<str>`, so most
//! string-ish call sites (`starts_with`, map lookups by `&str`,
//! `format!`) keep working unchanged. `Hash` hashes the *string* (to
//! stay consistent with `Borrow<str>` in hashed maps); hot paths that
//! want a cheap integer key use [`Symbol::id`] explicitly.

use std::borrow::Borrow;
use std::cmp::Ordering;
use std::collections::HashSet;
use std::fmt;
use std::ops::Deref;
use std::sync::{OnceLock, RwLock};

/// An interned string: copyable, pointer-comparable for equality,
/// string-comparable for order.
#[derive(Clone, Copy)]
pub struct Symbol(&'static str);

fn interner() -> &'static RwLock<HashSet<&'static str>> {
    static INTERNER: OnceLock<RwLock<HashSet<&'static str>>> = OnceLock::new();
    INTERNER.get_or_init(|| RwLock::new(HashSet::new()))
}

impl Symbol {
    /// Intern `s`, returning its symbol (idempotent: equal strings get
    /// pointer-identical symbols for the lifetime of the process).
    pub fn intern(s: &str) -> Symbol {
        let lock = interner();
        if let Some(&interned) = lock.read().expect("interner poisoned").get(s) {
            return Symbol(interned);
        }
        let mut w = lock.write().expect("interner poisoned");
        if let Some(&interned) = w.get(s) {
            return Symbol(interned);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        w.insert(leaked);
        Symbol(leaked)
    }

    /// The interned text (no lock: the pointer is carried inline).
    pub fn as_str(self) -> &'static str {
        self.0
    }

    /// A process-local integer key — the interned allocation's address.
    /// Two symbols are equal iff their ids are equal (the interner
    /// dedups), so this is the cheap hash/equality key for hot paths.
    pub fn id(self) -> usize {
        self.0.as_ptr() as usize
    }
}

impl PartialEq for Symbol {
    fn eq(&self, other: &Self) -> bool {
        // Pointer identity: the interner guarantees equal strings share
        // one allocation.
        std::ptr::eq(self.0, other.0)
    }
}

impl Eq for Symbol {}

impl Deref for Symbol {
    type Target = str;
    fn deref(&self) -> &str {
        self.0
    }
}

impl Borrow<str> for Symbol {
    fn borrow(&self) -> &str {
        self.0
    }
}

impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        self.0
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> Ordering {
        // Pointer fast path first; distinct allocations never hold
        // equal strings.
        if std::ptr::eq(self.0, other.0) {
            Ordering::Equal
        } else {
            self.0.cmp(other.0)
        }
    }
}

impl std::hash::Hash for Symbol {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // String hash, required for `Borrow<str>` consistency in maps.
        self.0.hash(state);
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self.0, f)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.0, f)
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<&Symbol> for Symbol {
    fn from(s: &Symbol) -> Symbol {
        *s
    }
}

impl From<&String> for Symbol {
    fn from(s: &String) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.0 == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.0 == *other
    }
}

impl PartialEq<String> for Symbol {
    fn eq(&self, other: &String) -> bool {
        self.0 == other.as_str()
    }
}

impl PartialEq<Symbol> for str {
    fn eq(&self, other: &Symbol) -> bool {
        self == other.0
    }
}

impl PartialEq<Symbol> for &str {
    fn eq(&self, other: &Symbol) -> bool {
        *self == other.0
    }
}

impl PartialEq<Symbol> for String {
    fn eq(&self, other: &Symbol) -> bool {
        self.as_str() == other.0
    }
}

impl Default for Symbol {
    fn default() -> Symbol {
        Symbol::intern("")
    }
}

/// Tuple label `#1`, `#2`, … — the first few are cached so tuple
/// construction never formats.
pub fn tuple_label(index_from_1: usize) -> Symbol {
    const CACHED: usize = 12;
    static CACHE: OnceLock<[Symbol; CACHED]> = OnceLock::new();
    let cache =
        CACHE.get_or_init(|| std::array::from_fn(|i| Symbol::intern(&format!("#{}", i + 1))));
    if (1..=CACHED).contains(&index_from_1) {
        cache[index_from_1 - 1]
    } else {
        Symbol::intern(&format!("#{index_from_1}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedups() {
        let a = Symbol::intern("Name");
        let b = Symbol::intern("Name");
        assert_eq!(a.id(), b.id());
        assert_eq!(a, b);
        assert_ne!(a, Symbol::intern("Age"));
    }

    #[test]
    fn order_is_string_order() {
        let mut syms = [
            Symbol::intern("zeta"),
            Symbol::intern("Alpha"),
            Symbol::intern("beta"),
        ];
        syms.sort();
        let shown: Vec<&str> = syms.iter().map(|s| s.as_str()).collect();
        assert_eq!(shown, vec!["Alpha", "beta", "zeta"]);
    }

    #[test]
    fn string_like_usage() {
        let s = Symbol::intern("#1");
        assert!(s.starts_with('#'));
        assert_eq!(&s[1..], "1");
        assert_eq!(format!("{s}"), "#1");
        assert_eq!(s, "#1");
        assert_eq!(s, "#1".to_string());
    }

    #[test]
    fn map_lookup_by_str() {
        use std::collections::{BTreeMap, HashMap};
        let mut bt = BTreeMap::new();
        bt.insert(Symbol::intern("Name"), 1);
        assert_eq!(bt.get("Name"), Some(&1));
        let mut hm = HashMap::new();
        hm.insert(Symbol::intern("Name"), 2);
        assert_eq!(hm.get("Name"), Some(&2));
    }

    #[test]
    fn tuple_labels() {
        assert_eq!(tuple_label(1), "#1");
        assert_eq!(tuple_label(12), "#12");
        assert_eq!(tuple_label(40), "#40");
    }

    #[test]
    fn empty_symbol_is_distinct() {
        let e = Symbol::default();
        assert_eq!(e, "");
        assert_ne!(e, Symbol::intern("x"));
        assert_eq!(e, Symbol::intern(""));
    }

    #[test]
    fn cross_thread_interning() {
        let handles: Vec<_> = (0..4)
            .map(|i| std::thread::spawn(move || Symbol::intern(&format!("t{}", i % 2)).id()))
            .collect();
        let ids: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(ids[0], ids[2]);
        assert_eq!(ids[1], ids[3]);
    }
}
