//! Seeded partition/kill chaos for WAL-shipping replication.
//!
//! Hundreds of random interleavings of primary commits, follower
//! catch-up pulls (with injected mid-chunk disconnects and lost acks),
//! partitions, kills of either node, and primary checkpoints — each
//! ending in a failover: the primary dies, the follower is promoted,
//! and the survivor must serve **exactly** the durable prefix it
//! applied (values and pointer identity, verified twice for
//! idempotence), which always covers the acked prefix. The fenced old
//! primary then re-appears: its stale-generation groups must be
//! rejected whole, and it must heal back to convergence as a follower
//! via snapshot transfer.
//!
//! The base seed comes from `MACHIAVELLI_FAULT_SEED` (default 1989),
//! iterations from `MACHIAVELLI_REPL_ITERS` (default 220), so the CI
//! chaos job and a local repro run the same interleavings.

use std::path::PathBuf;

use machiavelli::persist::{encode_with_registry, RefRegistry};
use machiavelli::Session;
use machiavelli_repl::{NodeError, PullOutcome, ReplNode, Role};
use machiavelli_value::faults::{
    injected_faults, promote_during_catchup_due, set_fault_config, FaultConfig,
};
use machiavelli_value::repl_counters;
use machiavelli_wal::WalError;

fn base_seed() -> u64 {
    std::env::var("MACHIAVELLI_FAULT_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(1989)
}

/// Local splitmix64: the harness must not share a stream with the
/// fault layer it is testing.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn tempdir(tag: &str, n: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mach-repl-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Canonical durable-visible state: every binding encoded through one
/// shared registry, in a fixed name order — values AND cross-binding
/// pointer sharing must match for two states to compare equal.
fn canonical_state(session: &Session, names: &[String]) -> String {
    let mut reg = RefRegistry::new();
    let mut out = String::new();
    for name in names {
        if let Some((ty, value)) = session.persistable_binding(name) {
            let enc = encode_with_registry(&value, &mut reg)
                .unwrap_or_else(|e| panic!("canonical encode of {name}: {e}"));
            out.push_str(name);
            out.push(':');
            out.push_str(&ty);
            out.push('=');
            out.push_str(&enc);
            out.push(';');
        }
    }
    out
}

/// Replay `srcs` into a fresh in-memory session with faults shielded —
/// the ground truth a replica must match.
fn expected_state(srcs: &[String], names: &[String]) -> String {
    let mut model = Session::bare();
    for src in srcs {
        model
            .run(src)
            .unwrap_or_else(|e| panic!("model replay of {src:?}: {e}"));
    }
    canonical_state(&model, names)
}

/// The replication model: what the primary applied, and how far the
/// follower has absorbed it. The invariant under test is that the
/// follower's state is always `applied[..follower_k]` — a clean prefix
/// of the primary's commit order, never a subset with holes.
struct Model {
    /// Sources committed on the primary, in commit order.
    applied: Vec<String>,
    /// Every name ever bound, in bind order.
    names: Vec<String>,
    /// Names currently bound to refs (targets for `:=` and aliases).
    refs: Vec<String>,
    /// Commit count of the primary's *current-generation* log when
    /// each group landed: `log_group_srcs[i]` = `applied.len()` right
    /// after current-gen group `i` committed. Cleared by checkpoints.
    log_group_srcs: Vec<usize>,
    /// How many of `applied` the follower has absorbed.
    follower_k: usize,
    /// Complete groups in the follower's current-generation log.
    follower_groups: usize,
    /// The acked watermark (srcs) — what the primary believes the
    /// follower holds. Lost acks leave it behind `follower_k`.
    acked_k: usize,
}

impl Model {
    fn note_name(&mut self, name: &str) {
        if !self.names.iter().any(|n| n == name) {
            self.names.push(name.to_string());
        }
    }
}

fn verify_follower(f: &ReplNode, model: &Model, ctx: &str) {
    let expected = expected_state(&model.applied[..model.follower_k], &model.names);
    let got = canonical_state(f.session(), &model.names);
    assert_eq!(
        got, expected,
        "{ctx}: follower diverged from applied prefix"
    );
}

/// Kill the follower (drop in-memory state) and verify the recovered
/// state twice — recovery must be idempotent.
fn kill_and_verify_follower(f: &mut ReplNode, model: &Model, ctx: &str) {
    f.reopen().unwrap_or_else(|e| panic!("{ctx}: reopen: {e}"));
    verify_follower(f, model, &format!("{ctx} (first recovery)"));
    f.reopen()
        .unwrap_or_else(|e| panic!("{ctx}: re-reopen: {e}"));
    verify_follower(f, model, &format!("{ctx} (second recovery)"));
}

/// One catch-up pull under the iteration's ship faults, with the model
/// updated from the outcome. Returns whether the ack landed.
fn pump(
    p: &mut ReplNode,
    f: &mut ReplNode,
    model: &mut Model,
    faults: FaultConfig,
    ctx: &str,
) -> bool {
    set_fault_config(Some(faults));
    let outcome = f.pull_from(p);
    let ack_lost = machiavelli_value::faults::ack_loss_due();
    set_fault_config(Some(FaultConfig::off()));
    match outcome {
        Ok(PullOutcome::CaughtUp) => {
            assert_eq!(
                model.follower_k,
                model.applied.len(),
                "{ctx}: caught up but the model says groups are missing"
            );
        }
        Ok(PullOutcome::Applied(report)) => {
            model.follower_groups += report.groups_applied as usize;
            if model.follower_groups > 0 {
                assert!(
                    model.follower_groups <= model.log_group_srcs.len(),
                    "{ctx}: follower ahead of the primary's log"
                );
                model.follower_k = model.log_group_srcs[model.follower_groups - 1];
            }
        }
        Ok(PullOutcome::Installed(_)) => {
            // A full transfer carries everything durable on the
            // primary: snapshot plus the current log prefix.
            model.follower_k = model.applied.len();
            model.follower_groups = model.log_group_srcs.len();
        }
        Err(e) => panic!("{ctx}: pull: {e}"),
    }
    if !ack_lost {
        model.acked_k = model.acked_k.max(model.follower_k);
        true
    } else {
        false
    }
}

#[test]
fn seeded_failovers_serve_the_acked_durable_prefix() {
    let iterations: u64 = std::env::var("MACHIAVELLI_REPL_ITERS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(220);
    let base = base_seed();
    let prev = set_fault_config(Some(FaultConfig::off()));
    let stale_before = repl_counters::repl_counters().stale_rejected;
    let snaps_before = repl_counters::repl_counters().snap_transfers;
    let injected_before = injected_faults();

    for iter in 0..iterations {
        let seed = base.wrapping_mul(6_700_417).wrapping_add(iter);
        let mut rng = Rng::new(seed);
        let dir_p = tempdir("p", seed);
        let dir_f = tempdir("f", seed);
        let (mut p, _) = ReplNode::open_primary(&dir_p).unwrap();
        let (mut f, _) = ReplNode::open_follower(&dir_f).unwrap();
        let mut model = Model {
            applied: Vec::new(),
            names: Vec::new(),
            refs: Vec::new(),
            log_group_srcs: Vec::new(),
            follower_k: 0,
            follower_groups: 0,
            acked_k: 0,
        };
        // Ship-channel chaos for this iteration: mid-chunk disconnects
        // and lost acks at a seeded intensity.
        let intensity = [0u32, 120_000, 400_000, 900_000][rng.below(4) as usize];
        let faults = FaultConfig {
            seed,
            ship_disconnect_ppm: intensity,
            ack_loss_ppm: intensity / 2,
            ..FaultConfig::off()
        };
        let mut partitioned = false;
        let steps = 8 + rng.below(18);

        for step in 0..steps {
            let ctx = format!("seed {seed} iter {iter} step {step}");
            let roll = rng.below(100);
            if roll < 10 {
                // Kill the follower; recovery must serve its own
                // durable prefix, twice.
                kill_and_verify_follower(&mut f, &model, &ctx);
                continue;
            }
            if roll < 16 {
                // Kill the primary; everything it acked is durable.
                p.reopen()
                    .unwrap_or_else(|e| panic!("{ctx}: primary reopen: {e}"));
                continue;
            }
            if roll < 24 {
                // Checkpoint (generation bump): the follower's next
                // pull must heal via snapshot transfer.
                p.checkpoint()
                    .unwrap_or_else(|e| panic!("{ctx}: checkpoint: {e}"));
                model.log_group_srcs.clear();
                model.follower_groups = 0;
                continue;
            }
            if roll < 30 {
                partitioned = !partitioned;
                continue;
            }
            if roll < 52 {
                if !partitioned {
                    pump(&mut p, &mut f, &mut model, faults, &ctx);
                }
                continue;
            }
            // A primary commit, mirroring the crash harness's op mix so
            // pointer identity is always in play.
            let k = model.names.len();
            let (src, bound): (String, Vec<String>) = if roll < 72 || model.refs.is_empty() {
                if rng.below(3) == 0 {
                    (
                        format!("val n{k} = ref({});", rng.below(1000)),
                        vec![format!("n{k}")],
                    )
                } else {
                    (
                        format!("val n{k} = {};", rng.below(1000)),
                        vec![format!("n{k}")],
                    )
                }
            } else if roll < 84 {
                let r = &model.refs[rng.below(model.refs.len() as u64) as usize];
                (format!("{r} := {};", rng.below(1000)), vec!["it".into()])
            } else if roll < 93 {
                let r = &model.refs[rng.below(model.refs.len() as u64) as usize];
                (format!("val a{k} = {r};", r = r), vec![format!("a{k}")])
            } else {
                let r = &model.refs[rng.below(model.refs.len() as u64) as usize];
                (format!("!{r};", r = r), vec!["it".into()])
            };
            let groups_before = p.log().groups();
            let (_, receipt) = p
                .eval(&src)
                .unwrap_or_else(|e| panic!("{ctx}: eval {src:?}: {e}"));
            model.applied.push(src.clone());
            if receipt.checkpointed {
                // The commit escalated to a checkpoint (generation
                // bump): the log restarted empty, like the explicit
                // checkpoint op.
                model.log_group_srcs.clear();
            } else {
                assert_eq!(
                    p.log().groups(),
                    groups_before + 1,
                    "{ctx}: every harness op must commit exactly one group"
                );
                model.log_group_srcs.push(model.applied.len());
            }
            for b in bound {
                if src.contains("ref(") {
                    model.refs.push(b.clone());
                }
                model.note_name(&b);
            }
            if src.starts_with("val a") {
                let name = src[4..].split(' ').next().unwrap().to_string();
                if !model.refs.contains(&name) {
                    model.refs.push(name);
                }
            }
        }

        // ---- Failover ------------------------------------------------
        // The primary dies. The follower is promoted and must serve
        // exactly the prefix it applied — which covers every ack the
        // primary ever saw.
        let ctx = format!("seed {seed} iter {iter} failover");
        let old_gen = p.log().generation();
        drop(p);
        assert!(
            model.acked_k <= model.follower_k,
            "{ctx}: an ack outran the follower's durable state"
        );
        let fenced_gen = f
            .promote_above(old_gen)
            .unwrap_or_else(|e| panic!("{ctx}: promote: {e}"));
        assert!(
            fenced_gen > old_gen,
            "{ctx}: promotion must fence the old generation"
        );
        assert_eq!(f.role(), Role::Primary);
        verify_follower(&f, &model, &format!("{ctx} (promoted)"));
        f.reopen().unwrap_or_else(|e| panic!("{ctx}: reopen: {e}"));
        verify_follower(&f, &model, &format!("{ctx} (promoted, recovered again)"));

        // The fenced old primary re-appears, still believing it leads,
        // and commits a zombie write its timeline never replicated.
        let (mut p, _) = ReplNode::open_primary(&dir_p).unwrap();
        let cur_before = p.cursor();
        p.eval("val zombie = ref(666);").unwrap();
        let (stale_gen, stale_bytes) = match p.ship(cur_before).unwrap() {
            machiavelli_wal::Ship::Groups { gen, bytes, .. } => (gen, bytes),
            other => panic!("{ctx}: expected groups from the old primary, got {other:?}"),
        };
        assert!(!stale_bytes.is_empty());
        let survivor_state = canonical_state(f.session(), &model.names);
        let err = f.apply(stale_gen, &stale_bytes).unwrap_err();
        assert!(
            matches!(err, WalError::StaleGeneration { .. }),
            "{ctx}: stale group must be rejected whole, got {err}"
        );
        assert_eq!(
            canonical_state(f.session(), &model.names),
            survivor_state,
            "{ctx}: a rejected stale group must not perturb the survivor"
        );

        // The old primary heals as a follower: its forked log cannot be
        // served incrementally, so it converges via snapshot transfer —
        // the zombie write is gone.
        p.demote();
        let outcome = p
            .pull_from(&mut f)
            .unwrap_or_else(|e| panic!("{ctx}: heal: {e}"));
        assert!(
            matches!(outcome, PullOutcome::Installed(_)),
            "{ctx}: a forked log must heal via snapshot transfer, got {outcome:?}"
        );
        let mut names = model.names.clone();
        names.push("zombie".to_string());
        assert_eq!(
            canonical_state(p.session(), &names),
            canonical_state(f.session(), &names),
            "{ctx}: healed old primary diverges from the new primary"
        );
        assert!(
            p.session().persistable_binding("zombie").is_none(),
            "{ctx}: the zombie write survived healing"
        );

        // The new primary serves writes; the healed follower declines
        // them.
        f.eval("val epilogue = 1;").unwrap();
        assert!(matches!(
            p.eval("val epilogue = 2;"),
            Err(NodeError::ReadOnly)
        ));

        let _ = std::fs::remove_dir_all(&dir_p);
        let _ = std::fs::remove_dir_all(&dir_f);
    }
    assert!(
        repl_counters::repl_counters().stale_rejected >= stale_before + iterations,
        "every iteration must exercise stale-generation rejection"
    );
    // The chaos must have actually been chaotic: torn ships and lost
    // acks fired, and catch-up healed through snapshot transfers.
    let injected_after = injected_faults();
    assert!(
        injected_after.ship_disconnects > injected_before.ship_disconnects,
        "no iteration tore a shipped chunk"
    );
    assert!(
        injected_after.ack_losses > injected_before.ack_losses,
        "no iteration lost an ack"
    );
    assert!(
        repl_counters::repl_counters().snap_transfers > snaps_before + iterations,
        "catch-up never healed via snapshot transfer beyond the final heals"
    );
    set_fault_config(prev);
}

#[test]
fn promotion_during_catchup_fences_the_stream() {
    let prev = set_fault_config(Some(FaultConfig::off()));
    let seed = base_seed();
    let dir_p = tempdir("catchup-p", seed);
    let dir_f = tempdir("catchup-f", seed);
    let (mut p, _) = ReplNode::open_primary(&dir_p).unwrap();
    let (mut f, _) = ReplNode::open_follower(&dir_f).unwrap();
    for i in 0..6 {
        p.eval(&format!("val v{i} = ref({i});")).unwrap();
    }
    // First chunk lands normally.
    assert!(matches!(
        f.pull_from(&mut p).unwrap(),
        PullOutcome::Applied(_)
    ));
    p.eval("v0 := 100;").unwrap();

    // Mid-catch-up, the failover detector fires (injected at
    // certainty): the follower promotes while a chunk is in flight.
    set_fault_config(Some(FaultConfig {
        seed,
        promote_catchup_ppm: 1_000_000,
        ..FaultConfig::off()
    }));
    assert!(promote_during_catchup_due(), "fault must fire at certainty");
    let before = injected_faults().promote_catchups;
    assert!(before > 0);
    set_fault_config(Some(FaultConfig::off()));

    let in_flight = match p.ship(f.cursor()).unwrap() {
        machiavelli_wal::Ship::Groups { gen, bytes, .. } => (gen, bytes),
        other => panic!("expected groups, got {other:?}"),
    };
    f.promote().unwrap();

    // The in-flight chunk from the deposed primary arrives after the
    // promotion: stamped with the old generation, rejected whole.
    let err = f.apply(in_flight.0, &in_flight.1).unwrap_err();
    assert!(matches!(err, WalError::StaleGeneration { .. }), "{err}");
    let (o, _) = f.eval("!v0;").unwrap();
    assert_eq!(o[0].show(), "val it = 0 : int", "pre-promotion state rules");

    let _ = std::fs::remove_dir_all(&dir_p);
    let _ = std::fs::remove_dir_all(&dir_f);
    set_fault_config(prev);
}
