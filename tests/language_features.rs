//! A feature matrix for the whole language, beyond the paper's figures:
//! §3.2's expression forms, the §5 reference semantics, static error
//! coverage, and runtime error coverage.

use machiavelli::{Session, SessionError};

fn run(s: &mut Session, src: &str) -> String {
    s.eval_one(src)
        .unwrap_or_else(|e| panic!("{src}: {e}"))
        .show()
}

fn type_err(s: &mut Session, src: &str) -> String {
    match s.run(src) {
        Err(SessionError::Type(e)) => e.to_string(),
        Err(other) => panic!("{src}: expected type error, got {other}"),
        Ok(_) => panic!("{src}: expected type error, got success"),
    }
}

fn eval_err(s: &mut Session, src: &str) -> String {
    match s.run(src) {
        Err(SessionError::Eval(e)) => e.to_string(),
        Err(other) => panic!("{src}: expected runtime error, got {other}"),
        Ok(_) => panic!("{src}: expected runtime error, got success"),
    }
}

#[test]
fn department_update_example_from_section_5() {
    // The paper's exact scenario: two employees sharing a department; an
    // update seen from emp1 is reflected at emp2.
    let mut s = Session::new();
    s.run(
        r#"
        val d = ref([Dname="Sales", Building=45]);
        val emp1 = [Name = "Jones", Department = d];
        val emp2 = [Name = "Smith", Department = d];
    "#,
    )
    .unwrap();
    s.run("let val d = emp1.Department in d := modify(!d, Building, 67) end;")
        .unwrap();
    assert_eq!(
        run(&mut s, "(!(emp2.Department)).Building;"),
        "val it = 67 : int"
    );
}

#[test]
fn arithmetic_and_string_matrix() {
    let mut s = Session::new();
    assert_eq!(run(&mut s, "7 div 2 + 7 mod 2;"), "val it = 4 : int");
    assert_eq!(run(&mut s, "1.5 + 2.5;"), "val it = 4.0 : real");
    assert_eq!(run(&mut s, "10.0 / 4.0;"), "val it = 2.5 : real");
    assert_eq!(
        run(&mut s, r#""data" ^ "base";"#),
        r#"val it = "database" : string"#
    );
    assert_eq!(run(&mut s, "-(2 - 5);"), "val it = 3 : int");
    assert_eq!(
        run(&mut s, "1 <= 1 andalso 2 >= 3 orelse true;"),
        "val it = true : bool"
    );
}

#[test]
fn nested_comprehensions() {
    let mut s = Session::new();
    // A select whose source is itself a select.
    assert_eq!(
        run(
            &mut s,
            "select x * 10
             where x <- (select y + 1 where y <- {1,2,3} with y > 1)
             with true;"
        ),
        "val it = {30, 40} : {int}"
    );
    // Sets of sets.
    assert_eq!(
        run(
            &mut s,
            "card(select union(a, b) where a <- {{1},{2}}, b <- {{3}} with true);"
        ),
        "val it = 2 : int"
    );
}

#[test]
fn dependent_generators() {
    // Later generators may mention earlier variables (a generalization of
    // the paper's prod-based semantics).
    let mut s = Session::new();
    assert_eq!(
        run(
            &mut s,
            "select (d, e) where d <- {{1,2},{3}}, e <- d with true;"
        ),
        "val it = {({1, 2}, 1), ({1, 2}, 2), ({3}, 3)} : {{int} * int}"
    );
}

#[test]
fn higher_order_functions() {
    let mut s = Session::new();
    assert_eq!(
        run(
            &mut s,
            "fun twice(f, x) = f(f(x)); twice((fn(n) => n * 3), 2);"
        ),
        "val it = 18 : int"
    );
    assert_eq!(
        run(
            &mut s,
            "fun compose(f, g) = (fn(x) => f(g(x))); \
                     compose((fn(n) => n + 1), (fn(n) => n * 2))(10);"
        ),
        "val it = 21 : int"
    );
    // Polymorphic higher-order: map over a field selector.
    assert_eq!(
        run(
            &mut s,
            "map((fn(r) => r.A), {[A=1, B=true], [A=2, B=false]});"
        ),
        "val it = {1, 2} : {int}"
    );
}

#[test]
fn prelude_types_are_the_expected_schemes() {
    let s = Session::new();
    for (name, scheme) in [
        ("map", "((\"a -> \"b) * {\"a}) -> {\"b}"),
        ("filter", "((\"a -> bool) * {\"a}) -> {\"a}"),
        ("member", "(\"a * {\"a}) -> bool"),
        ("prod", "({\"a} * {\"b}) -> {\"a * \"b}"),
        ("intersect", "({\"a} * {\"a}) -> {\"a}"),
        ("diff", "({\"a} * {\"a}) -> {\"a}"),
        ("subset", "({\"a} * {\"a}) -> bool"),
        ("card", "{\"a} -> int"),
        ("sum", "{int} -> int"),
        ("powerset", "{\"a} -> {{\"a}}"),
    ] {
        assert_eq!(s.scheme_of(name).unwrap().show(), scheme, "{name}");
    }
}

#[test]
fn static_error_matrix() {
    let mut s = Session::new();
    assert!(type_err(&mut s, "[A=1].B;").contains("no field `B`"));
    assert!(type_err(&mut s, "1 + true;").contains("mismatch"));
    assert!(type_err(&mut s, "{1, \"x\"};").contains("mismatch"));
    assert!(type_err(&mut s, "{(fn(x) => x)};").contains("not a description type"));
    assert!(type_err(&mut s, "modify([A=1], B, 2);").contains("no field `B`"));
    assert!(type_err(&mut s, "let r = ref(1) in r := true end;").contains("mismatch"));
    assert!(type_err(&mut s, "join([A=1], [A=\"x\"]);").contains("no least upper bound"));
    assert!(type_err(&mut s, "project([A=1], [B: int]);").contains("no field `B`"));
    assert!(type_err(&mut s, "project(1, string);").contains("mismatch"));
    assert!(type_err(&mut s, "select x where x <- {1} with x;").contains("mismatch"));
    assert!(type_err(&mut s, "hom((fn(x) => x), +, \"z\", {1});").contains("mismatch"));
    assert!(type_err(&mut s, "if 1 then 2 else 3;").contains("mismatch"));
    assert!(type_err(&mut s, "(case (A of 1) of B of x => x);").contains("type"));
    assert!(type_err(&mut s, "nosuchvar;").contains("unbound variable"));
    assert!(type_err(&mut s, "!3;").contains("mismatch"));
    assert!(type_err(&mut s, "union({1}, {\"a\"});").contains("mismatch"));
}

#[test]
fn runtime_error_matrix() {
    let mut s = Session::new();
    assert!(eval_err(&mut s, "1 div 0;").contains("Div"));
    assert!(eval_err(&mut s, "hom*((fn(x) => x), +, {});").contains("empty set"));
    assert!(eval_err(&mut s, "(A of 1) as B;").contains("`as B`"));
    assert!(eval_err(&mut s, "dynamic(dynamic(1), string);").contains("does not conform"));
    assert!(eval_err(&mut s, "raise \"kaboom\";").contains("kaboom"));
    // The session survives all of it.
    assert_eq!(run(&mut s, "1;"), "val it = 1 : int");
}

#[test]
fn shadowing_and_scoping() {
    let mut s = Session::new();
    assert_eq!(
        run(&mut s, "let x = 1 in let x = x + 1 in x * 10 end end;"),
        "val it = 20 : int"
    );
    // Top-level rebinding shadows (like the paper's interactive session).
    s.run("val v = 1;").unwrap();
    s.run("val v = \"now a string\";").unwrap();
    assert_eq!(run(&mut s, "v;"), "val it = \"now a string\" : string");
    // Closures capture their definition environment, not the caller's.
    s.run("val k = 10; fun addk(x) = x + k; val k = 1000;")
        .unwrap();
    assert_eq!(run(&mut s, "addk(5);"), "val it = 15 : int");
}

#[test]
fn hom_with_all_operator_values() {
    let mut s = Session::new();
    assert_eq!(
        run(&mut s, "hom((fn(x) => x), *, 1, {1,2,3,4});"),
        "val it = 24 : int"
    );
    assert_eq!(
        run(&mut s, "hom((fn(x) => x > 1), orelse, false, {0,1,2});"),
        "val it = true : bool"
    );
    assert_eq!(
        run(&mut s, "hom((fn(x) => x), ^, \"\", {\"a\",\"b\"});"),
        "val it = \"ab\" : string"
    );
    assert_eq!(
        run(&mut s, "hom*((fn(x) => x), *, {2,3,7});"),
        "val it = 42 : int"
    );
}

#[test]
fn equality_is_deep_on_descriptions() {
    let mut s = Session::new();
    assert_eq!(
        run(&mut s, "[A={1,2}, B=[C=\"x\"]] = [A={2,1,1}, B=[C=\"x\"]];"),
        "val it = true : bool"
    );
    assert_eq!(
        run(&mut s, "(X of {1}) = (X of {2});"),
        "val it = false : bool"
    );
    // But refs compare by identity even with equal contents.
    assert_eq!(
        run(&mut s, "[R=ref(1)] = [R=ref(1)];"),
        "val it = false : bool"
    );
}

#[test]
fn variant_heavy_program() {
    let mut s = Session::new();
    s.run(
        r#"
        fun area(shape) =
          (case shape of
             Circle of r => r * r * 3,
             Rect of d => d.W * d.H,
             Point of u => 0);
    "#,
    )
    .unwrap();
    assert_eq!(
        run(&mut s, "area((Rect of [W=3, H=4]));"),
        "val it = 12 : int"
    );
    assert_eq!(run(&mut s, "area((Circle of 2));"), "val it = 12 : int");
    assert_eq!(run(&mut s, "area((Point of ()));"), "val it = 0 : int");
    // Sets of variants and selection by branch.
    assert_eq!(
        run(
            &mut s,
            "card(select s where s <- {(Circle of 1), (Rect of [W=1,H=1]), (Circle of 2)}
                  with (case s of Circle of r => true, other => false));"
        ),
        "val it = 2 : int"
    );
}

#[test]
fn recursive_data_through_refs() {
    // Cyclic data needs an explicitly recursive type (inference keeps
    // types finite, as documented): build a two-node ring natively, bind
    // it with a `rec` type, and walk it in Machiavelli.
    use machiavelli::value::{RefValue, Value};
    let a = RefValue::new(Value::Unit);
    let b = RefValue::new(Value::record([
        ("Name".into(), Value::str("b")),
        ("Next".into(), Value::variant("Some", Value::Ref(a.clone()))),
    ]));
    a.set(Value::record([
        ("Name".into(), Value::str("a")),
        ("Next".into(), Value::variant("Some", Value::Ref(b.clone()))),
    ]));
    let mut s = Session::new();
    s.bind_external(
        "ring",
        Value::set([Value::Ref(a), Value::Ref(b)]),
        "{rec n . ref([Name: string, Next: <None: unit, Some: n>])}",
    )
    .unwrap();
    // Each node's successor's successor is itself (object identity). The
    // generator grounds x's recursive type before the predicate is typed
    // (a lambda passed to hom would need bidirectional checking — see
    // DESIGN.md on equi-recursive inference).
    assert_eq!(
        run(
            &mut s,
            "card(select x where x <- ring
                  with ((!((!x).Next as Some)).Next as Some) = x);"
        ),
        "val it = 2 : int"
    );
    assert_eq!(
        run(&mut s, "select (!x).Name where x <- ring with true;"),
        r#"val it = {"a", "b"} : {string}"#
    );
}

#[test]
fn cyclic_inference_is_rejected_not_crashed() {
    // Tying a ref knot *within inferred types* needs a recursive type;
    // the occurs check reports it as a type error (and the error message
    // renders the cyclic kind without looping).
    let mut s = Session::new();
    s.run(
        r#"
        val a = ref([Name="a", Next=(None of ())]);
        val b = ref([Name="b", Next=(Some of a)]);
    "#,
    )
    .unwrap();
    let err = type_err(&mut s, "a := modify(!a, Next, (Some of b));");
    assert!(err.contains("occurs check"), "{err}");
}

#[test]
fn project_on_variants_and_sets() {
    let mut s = Session::new();
    // Projection inside a variant payload.
    assert_eq!(
        run(
            &mut s,
            "project((A of [X=1, Y=2]), <A: [X: int], B: string>);"
        ),
        "val it = (A of [X=1]) : <A:[X:int],B:string>"
    );
    // Lifted over sets, merging newly equal elements.
    assert_eq!(
        run(
            &mut s,
            "card(project({[X=1, Y=1], [X=1, Y=2]}, {[X: int]}));"
        ),
        "val it = 1 : int"
    );
}

#[test]
fn unit_and_tuples() {
    let mut s = Session::new();
    assert_eq!(run(&mut s, "();"), "val it = () : unit");
    assert_eq!(run(&mut s, "(1, (2, 3)).#2.#1;"), "val it = 2 : int");
    assert_eq!(
        run(&mut s, "{((), 1)};"),
        "val it = {((), 1)} : {unit * int}"
    );
}

#[test]
fn long_session_stays_consistent() {
    // A miniature end-to-end workload: build, query, update, re-query.
    let mut s = Session::new();
    s.run(
        r#"
        val people = {[Name="a", Age=20], [Name="b", Age=30], [Name="c", Age=40]};
        fun adults(S) = select x.Name where x <- S with x.Age >= 30;
        val first = adults(people);
        val people2 = union(people, {[Name="d", Age=50]});
        val second = adults(people2);
    "#,
    )
    .unwrap();
    assert_eq!(run(&mut s, "first;"), r#"val it = {"b", "c"} : {string}"#);
    assert_eq!(
        run(&mut s, "second;"),
        r#"val it = {"b", "c", "d"} : {string}"#
    );
    assert_eq!(
        run(&mut s, "diff(second, first);"),
        r#"val it = {"d"} : {string}"#
    );
}
