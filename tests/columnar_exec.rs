//! The columnar morsel lane (`machiavelli-exec` + the plan layer's
//! offload), pinned against the sequential paths:
//!
//! * seeded proptests: the columnar lane is result-equivalent to the
//!   sequential planner and to `select_loop` across 1/2/4/8 worker
//!   threads on the part–supplier comprehension space (order,
//!   duplicates, empty survivor sets arise naturally);
//! * declines fall back with zero behavior change and are counted
//!   (identity-bearing rows, env-dependent predicates);
//! * the independent-generator schedule filters both sides of a join
//!   as one morsel batch;
//! * work stealing actually occurs under a skewed many-morsel workload;
//! * the whole pipeline composes: a columnar-filtered scan feeds the
//!   cached parallel probe (store-served plain index);
//! * snapshots cache in the index store and invalidate on rebind.

use machiavelli::eval::set_planner_enabled;
use machiavelli::value::show_value;
use machiavelli_bench::scaled_parts_session;
use proptest::prelude::*;

/// Evaluate `src` with the columnar lane forced live: planner on,
/// parallel lane on with `t` threads, 1-row columnar cutoff, small
/// morsels (so multi-morsel scheduling and stealing are exercised on
/// small relations). `store` toggles the index store (snapshot caching
/// and the cached parallel probe downstream). `par = None` disables
/// the lane entirely (the sequential reference).
fn run_columnar(
    session: &mut machiavelli::Session,
    src: &str,
    store: bool,
    par: Option<usize>,
) -> Result<String, String> {
    use machiavelli::value::tuning;
    let prev_planner = set_planner_enabled(true);
    let prev_store = machiavelli::store::set_store_enabled(store);
    let prev_enabled = tuning::set_parallel_enabled(par.is_some());
    let prev_threads = tuning::set_par_threads(par);
    let prev_cutoff = tuning::set_columnar_min_rows(Some(1));
    let prev_morsel = tuning::set_morsel_rows(Some(4));
    let prev_probe = tuning::set_par_probe_min_rows(Some(1));
    let out = session
        .eval_one(src)
        .map(|o| show_value(&o.value))
        .map_err(|e| e.to_string());
    tuning::set_par_probe_min_rows(prev_probe);
    tuning::set_morsel_rows(prev_morsel);
    tuning::set_columnar_min_rows(prev_cutoff);
    tuning::set_par_threads(prev_threads);
    tuning::set_parallel_enabled(prev_enabled);
    machiavelli::store::set_store_enabled(prev_store);
    set_planner_enabled(prev_planner);
    out
}

/// Run with the planner and every parallel lane off: the `select_loop`
/// reference semantics.
fn run_loop_ref(session: &mut machiavelli::Session, src: &str) -> Result<String, String> {
    let prev_planner = set_planner_enabled(false);
    let out = session
        .eval_one(src)
        .map(|o| show_value(&o.value))
        .map_err(|e| e.to_string());
    set_planner_enabled(prev_planner);
    out
}

/// A seeded single- or two-generator comprehension whose pushed
/// filters are all binder-closed comparisons — the columnar-eligible
/// space. Key spaces are tiny, so duplicate keys, empty survivor sets,
/// and full-relation survivors all arise.
fn random_filtered_comprehension(seed: u64, key_space: u64) -> String {
    let mut state = seed | 1;
    let mut next = move |m: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % m.max(1)
    };
    let ops = [">", "<", ">=", "<=", "="];
    let two_gens = next(2) == 1;
    let mut filter = |var: &str, key: &str| {
        let op = ops[next(ops.len() as u64) as usize];
        // Both orientations: `x.K > c` compiles to the per-column
        // comparator, `c > x.K` takes the flipped arm.
        if next(2) == 0 {
            format!("{var}.{key} {op} {}", next(key_space))
        } else {
            format!("{} {op} {var}.{key}", next(key_space))
        }
    };
    if two_gens {
        let fx = filter("x", "P#");
        let fy = filter("y", "P#");
        format!(
            "select (x.P#, y.S#) where x <- parts, y <- supplied_by \
             with {fx} andalso x.P# = y.P# andalso {fy};"
        )
    } else {
        let f1 = filter("x", "P#");
        let f2 = filter("x", "P#");
        format!("select x.P# where x <- parts with {f1} andalso {f2};")
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // The acceptance property: the columnar lane — snapshots, morsel
    // scheduling, per-column comparators, survivor re-binding — is
    // result-equivalent to the sequential planner and to `select_loop`
    // across 1/2/4/8 worker threads, store off and on (snapshot
    // caching must be invisible).
    #[test]
    fn columnar_lane_matches_sequential_paths(
        seed in 0u64..u64::MAX / 2,
        n_parts in 4usize..24,
        n_suppliers in 2usize..10,
    ) {
        let src = random_filtered_comprehension(seed, 2 * n_parts as u64);
        let (mut session, _db) = scaled_parts_session(n_parts, n_suppliers, seed ^ 0xc01a);
        session.store_reset();
        let loop_ref = run_loop_ref(&mut session, &src);
        let seq_ref = run_columnar(&mut session, &src, false, None);
        prop_assert!(seq_ref == loop_ref, "{src}: {seq_ref:?} vs {loop_ref:?}");
        for store in [false, true] {
            session.store_reset();
            for threads in [1usize, 2, 4, 8] {
                let col = run_columnar(&mut session, &src, store, Some(threads));
                prop_assert!(
                    col == seq_ref,
                    "{src} @ {threads} threads, store={store}: {col:?} vs {seq_ref:?}"
                );
            }
        }
    }
}

/// The lane engages and counts: a filtered scan over the cutoff
/// offloads, executes multiple morsels, and builds a snapshot exactly
/// once per storage identity when the store serves it.
#[test]
fn columnar_scan_engages_and_counts() {
    let mut session = machiavelli::Session::new();
    session.store_reset();
    let rows: String = (0..64)
        .map(|i| format!("[K={i}, A={}]", i * 2))
        .collect::<Vec<_>>()
        .join(", ");
    session.run(&format!("val r = {{{rows}}};")).unwrap();
    let q = "select x.A where x <- r with x.K > 10 andalso x.K < 50;";
    let seq = run_columnar(&mut session, q, false, None);
    session.exec_reset();
    let col = run_columnar(&mut session, q, true, Some(4));
    assert_eq!(col, seq);
    let es = session.exec_stats();
    assert!(es.offloads >= 1, "{es:?}");
    assert_eq!(es.offload_fallbacks, 0, "{es:?}");
    // 64 rows at 4-row morsels: the run splits into many tasks.
    assert!(es.morsels_executed >= 8, "{es:?}");
    assert_eq!(es.snapshots_built, 1, "{es:?}");
    // Warm store: the second run reuses the cached snapshot.
    let again = run_columnar(&mut session, q, true, Some(4));
    assert_eq!(again, seq);
    let es = session.exec_stats();
    assert_eq!(es.snapshots_built, 1, "snapshot cached across runs: {es:?}");
    assert!(es.offloads >= 2, "{es:?}");
}

/// Work stealing occurs under a skewed workload: all rows land in the
/// first worker's seeded morsels plus many more, so idle workers must
/// steal to finish. Structural acceptance for the morsel scheduler
/// (wall-clock speedups need multi-core hosts; see BENCH_PR7.json).
#[test]
fn columnar_morsels_are_stolen_under_skew() {
    let mut session = machiavelli::Session::new();
    session.store_reset();
    let rows: String = (0..256)
        .map(|i| format!("[K={i}]"))
        .collect::<Vec<_>>()
        .join(", ");
    session.run(&format!("val big = {{{rows}}};")).unwrap();
    let q = "select x.K where x <- big with x.K >= 0 andalso x.K < 999;";
    let seq = run_columnar(&mut session, q, false, None);
    session.exec_reset();
    let col = run_columnar(&mut session, q, false, Some(4));
    assert_eq!(col, seq);
    let es = session.exec_stats();
    // 256 rows / 4-row morsels = 64 tasks round-robined over 4 deques:
    // whichever workers run drain their own queues and then steal.
    assert!(es.morsels_executed >= 64, "{es:?}");
    assert!(es.morsels_stolen > 0, "steals under skew: {es:?}");
}

/// Identity-bearing rows (refs) have no plain form: the snapshot
/// declines, the fallback is counted, and results are identical —
/// including ref identities, which the sequential filter preserves.
#[test]
fn columnar_lane_declines_identity_bearing_rows() {
    let mut session = machiavelli::Session::new();
    session.store_reset();
    session
        .run(
            "val d = ref(7);
             val r = {[K=1, R=d], [K=2, R=ref(9)], [K=3, R=d]};",
        )
        .unwrap();
    let q = "select x.R where x <- r with x.K > 1;";
    let seq = run_columnar(&mut session, q, false, None);
    session.exec_reset();
    let col = run_columnar(&mut session, q, false, Some(4));
    assert_eq!(col, seq);
    let es = session.exec_stats();
    assert!(es.offload_fallbacks >= 1, "{es:?}");
    assert_eq!(es.offloads, 0, "{es:?}");
    // The surviving refs are the *same* identities the sequential path
    // yields: `=` on refs is identity, so the shared `d` must be a
    // member of the declined-lane result.
    run_columnar(
        &mut session,
        "val out = select x.R where x <- r with x.K = 3;",
        false,
        Some(4),
    )
    .unwrap();
    assert_eq!(
        show_value(&session.eval_one("member(d, out);").unwrap().value),
        "true"
    );
}

/// Environment-dependent predicates are statically ineligible: the
/// scan stays sequential (no offload attempted, no counters), results
/// identical.
#[test]
fn columnar_lane_skips_env_dependent_filters() {
    let mut session = machiavelli::Session::new();
    session.store_reset();
    let rows: String = (0..32)
        .map(|i| format!("[K={i}]"))
        .collect::<Vec<_>>()
        .join(", ");
    session
        .run(&format!("val r = {{{rows}}}; val cutoff = 11;"))
        .unwrap();
    let q = "select x.K where x <- r with x.K > cutoff;";
    let seq = run_columnar(&mut session, q, false, None);
    session.exec_reset();
    let col = run_columnar(&mut session, q, false, Some(4));
    assert_eq!(col, seq);
    let es = session.exec_stats();
    assert_eq!((es.offloads, es.offload_fallbacks), (0, 0), "{es:?}");
}

/// The independent-generator schedule: both sides of a two-generator
/// join carry eligible filters, so both relations filter as one morsel
/// batch (two offloads in a single query) and the join result is
/// unchanged.
#[test]
fn independent_generators_filter_as_one_batch() {
    let mut session = machiavelli::Session::new();
    session.store_reset();
    let rows = |n: usize, label: &str| -> String {
        (0..n)
            .map(|i| format!("[K={}, {label}={i}]", i % 8))
            .collect::<Vec<_>>()
            .join(", ")
    };
    session
        .run(&format!(
            "val r = {{{}}}; val t = {{{}}};",
            rows(48, "A"),
            rows(32, "B"),
        ))
        .unwrap();
    let q = "select (x.A, y.B) where x <- r, y <- t \
             with x.A > 4 andalso x.K = y.K andalso y.B < 20;";
    let seq = run_columnar(&mut session, q, false, None);
    session.exec_reset();
    // Store *off*: the uncached-build pair arm runs both sides.
    let col = run_columnar(&mut session, q, false, Some(4));
    assert_eq!(col, seq);
    let es = session.exec_stats();
    assert_eq!(es.offloads, 2, "both sides offload: {es:?}");
    assert_eq!(es.offload_fallbacks, 0, "{es:?}");
}

/// Whole-pipeline composition: the columnar-filtered scan yields a
/// filterless survivor relation — exactly the shape the cached
/// parallel probe fast path keys from — so with a warm store the
/// pipeline runs scan-filter *and* probe on worker threads.
#[test]
fn columnar_scan_composes_with_cached_parallel_probe() {
    let mut session = machiavelli::Session::new();
    session.store_reset();
    let rows = |n: usize, label: &str| -> String {
        (0..n)
            .map(|i| format!("[K={i}, {label}={}]", i * 3))
            .collect::<Vec<_>>()
            .join(", ")
    };
    session
        .run(&format!(
            "val r = {{{}}}; val t = {{{}}};",
            rows(80, "A"),
            rows(20, "B"),
        ))
        .unwrap();
    // Probe side filtered on the columnar lane; build side (`t`,
    // smaller, unfiltered) cached plain by the first run.
    let q = "select (x.A, y.B) where x <- r, y <- t \
             with x.K > 2 andalso x.K = y.K;";
    let seq = run_columnar(&mut session, q, false, None);
    let warmup = run_columnar(&mut session, q, true, Some(4));
    assert_eq!(warmup, seq);
    session.exec_reset();
    session.par_reset();
    let col = run_columnar(&mut session, q, true, Some(4));
    assert_eq!(col, seq);
    let es = session.exec_stats();
    let ps = session.par_stats();
    assert!(es.offloads >= 1, "scan offloaded: {es:?}");
    assert!(
        ps.par_probes >= 1,
        "survivors fed the cached parallel probe: {ps:?}"
    );
    assert_eq!(ps.par_probe_fallbacks, 0, "{ps:?}");
}

/// Snapshot invalidation: rebinding a relation changes its storage
/// identity, so the columnar lane re-snapshots instead of reading
/// stale columns (the PR 5 dirty-ref/identity path extended to the
/// snapshot sub-tier).
#[test]
fn snapshots_invalidate_on_rebind() {
    let mut session = machiavelli::Session::new();
    session.store_reset();
    let rows: String = (0..24)
        .map(|i| format!("[K={i}]"))
        .collect::<Vec<_>>()
        .join(", ");
    session.run(&format!("val r = {{{rows}}};")).unwrap();
    let q = "select x.K where x <- r with x.K > 5 andalso x.K < 200;";
    session.exec_reset();
    let first = run_columnar(&mut session, q, true, Some(4));
    assert_eq!(session.exec_stats().snapshots_built, 1);
    // Rebind with one more row inside the filter range: fresh storage,
    // fresh snapshot, fresh answer.
    session.run("val r = union(r, {[K=99]});").unwrap();
    let second = run_columnar(&mut session, q, true, Some(4));
    assert_eq!(session.exec_stats().snapshots_built, 2);
    assert_ne!(first, second, "the new row must appear");
    assert!(second.as_ref().unwrap().contains("99"), "{second:?}");
}
