//! The standard prelude, written in Machiavelli itself.
//!
//! These are the functions the paper defines with `hom` in §2 (`map`,
//! `filter`, `member`, `prod`, intersection, difference, powerset, …).
//! They are parsed, type-checked and evaluated like user code, so they
//! double as an executable regression test of the whole pipeline.

/// Machiavelli source of the standard prelude.
pub const PRELUDE: &str = r#"
(* Direct image of a set: the paper's map. *)
fun map(f, S) = hom((fn(x) => {f(x)}), union, {}, S);

(* Elements satisfying a predicate: the paper's filter. *)
fun filter(p, S) = hom((fn(x) => if p(x) then {x} else {}), union, {}, S);

(* Set membership via hom. *)
fun member(x, S) = hom((fn(y) => x = y), orelse, false, S);

(* Cartesian product as a comprehension. *)
fun prod(S1, S2) = select (x, y) where x <- S1, y <- S2 with true;

(* Intersection and difference via filter. *)
fun intersect(S1, S2) = filter((fn(x) => member(x, S1)), S2);

fun diff(S1, S2) = filter((fn(x) => not(member(x, S2))), S1);

(* Subset test. *)
fun subset(S1, S2) = hom((fn(x) => member(x, S2)), andalso, true, S1);

(* Cardinality and integer sum. *)
fun card(S) = hom((fn(x) => 1), +, 0, S);

fun sum(S) = hom((fn(x) => x), +, 0, S);

(* Powerset: fold a pairwise-union product. *)
fun powerset(S) =
  hom((fn(x) => {{}, {x}}),
      (fn(P1, P2) => select union(a, b) where a <- P1, b <- P2 with true),
      {{}},
      S);

(* Polymorphic transitive closure (Figure 4 of the paper). *)
fun Closure(R) =
  let val r = select [A = x.A, B = y.B]
              where x <- R, y <- R
              with (x.B = y.A) andalso not(member([A = x.A, B = y.B], R))
  in if r = {} then R else Closure(union(R, r))
  end;
"#;

#[cfg(test)]
mod tests {
    use crate::eval::{builtin_env, eval_expr};
    use machiavelli_syntax::ast::PhraseKind;
    use machiavelli_syntax::{parse_expr, parse_program};
    use machiavelli_value::{Env, Value};

    /// Evaluate the prelude into an environment (without type checking —
    /// the typed path is exercised by the `machiavelli` core crate).
    fn prelude_env() -> Env {
        let mut env = builtin_env();
        for phrase in parse_program(super::PRELUDE).unwrap() {
            match phrase.kind {
                PhraseKind::Fun { name, params, body } => {
                    let rec = machiavelli_syntax::ast::Expr::new(
                        machiavelli_syntax::ast::ExprKind::Rec {
                            name,
                            body: Box::new(machiavelli_syntax::ast::Expr::new(
                                machiavelli_syntax::ast::ExprKind::Lambda {
                                    params,
                                    body: Box::new(body),
                                },
                                phrase.span,
                            )),
                        },
                        phrase.span,
                    );
                    let v = eval_expr(&env, &rec).unwrap();
                    env = env.bind(name, v);
                }
                _ => unreachable!("prelude contains only fun definitions"),
            }
        }
        env
    }

    fn run(env: &Env, src: &str) -> Value {
        eval_expr(env, &parse_expr(src).unwrap()).unwrap_or_else(|e| panic!("{src}: {e}"))
    }

    #[test]
    fn map_filter_member() {
        let env = prelude_env();
        assert_eq!(
            run(&env, "map((fn(x) => x * 2), {1,2,3})"),
            run(&env, "{2,4,6}")
        );
        assert_eq!(
            run(&env, "filter((fn(x) => x > 1), {1,2,3})"),
            run(&env, "{2,3}")
        );
        assert_eq!(run(&env, "member(2, {1,2,3})"), Value::Bool(true));
        assert_eq!(run(&env, "member(9, {1,2,3})"), Value::Bool(false));
    }

    #[test]
    fn prod_and_setops() {
        let env = prelude_env();
        assert_eq!(run(&env, "card(prod({1,2},{3,4}))"), Value::Int(4));
        assert_eq!(run(&env, "intersect({1,2,3},{2,3,4})"), run(&env, "{2,3}"));
        assert_eq!(run(&env, "diff({1,2,3},{2})"), run(&env, "{1,3}"));
        assert_eq!(run(&env, "subset({1,2},{1,2,3})"), Value::Bool(true));
        assert_eq!(run(&env, "subset({0},{1,2,3})"), Value::Bool(false));
    }

    #[test]
    fn card_sum_powerset() {
        let env = prelude_env();
        assert_eq!(run(&env, "card({5,6,7})"), Value::Int(3));
        assert_eq!(run(&env, "sum({5,6,7})"), Value::Int(18));
        assert_eq!(run(&env, "card(powerset({1,2,3}))"), Value::Int(8));
        assert_eq!(
            run(&env, "member({1,3}, powerset({1,2,3}))"),
            Value::Bool(true)
        );
    }

    #[test]
    fn closure_from_fig4() {
        let env = prelude_env();
        let result = run(&env, "Closure({[A=1,B=2],[A=2,B=3],[A=3,B=4]})");
        let expected = run(
            &env,
            "{[A=1,B=2],[A=2,B=3],[A=3,B=4],[A=1,B=3],[A=2,B=4],[A=1,B=4]}",
        );
        assert_eq!(result, expected);
    }
}
