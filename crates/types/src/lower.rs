//! Lowering concrete type syntax ([`TypeExpr`]) into [`Ty`].
//!
//! Two entry points:
//!
//! * [`lower_closed`] — for `project(e, δ)` / `dynamic(e, δ)` annotations:
//!   the annotation must denote a single description type (no variables,
//!   no row variables);
//! * [`lower_open`] — for tests and tooling that compare inferred types
//!   against paper notation: `'a` / `"a` become fresh variables and
//!   `[('a) …]` / `<("a) …>` rows become kinded variables (occurrences of
//!   the same name share the variable).

use crate::error::TypeError;
use crate::kind::Kind;
use crate::ty::{
    t_arrow, t_bool, t_dynamic, t_int, t_real, t_record, t_ref, t_set, t_str, t_unit, t_variant,
    Ty, Type, VarGen,
};
use crate::unify::require_desc;
use machiavelli_syntax::ast::{TypeExpr, TypeExprKind};
use std::collections::HashMap;
use std::rc::Rc;

/// Lower a closed description-type annotation. Rejects type variables and
/// row variables; checks the result is a description type.
pub fn lower_closed(te: &TypeExpr) -> Result<Ty, TypeError> {
    let gen = VarGen::new();
    let mut ctx = LowerCtx {
        gen: &gen,
        level: 0,
        open: false,
        vars: HashMap::new(),
        recs: HashMap::new(),
        next_rec: 0,
    };
    let t = ctx.lower(te)?;
    require_desc(&t)?;
    Ok(t)
}

/// Lower an open type (variables allowed), producing fresh unification
/// variables at `level` from `gen`.
pub fn lower_open(te: &TypeExpr, gen: &VarGen, level: u32) -> Result<Ty, TypeError> {
    let mut ctx = LowerCtx {
        gen,
        level,
        open: true,
        vars: HashMap::new(),
        recs: HashMap::new(),
        next_rec: 0,
    };
    ctx.lower(te)
}

struct LowerCtx<'a> {
    gen: &'a VarGen,
    level: u32,
    open: bool,
    /// Named type variables already lowered (`'a` / `"a` / rows share).
    vars: HashMap<String, Ty>,
    /// In-scope `rec` binders.
    recs: HashMap<String, u32>,
    next_rec: u32,
}

impl LowerCtx<'_> {
    fn named_var(&mut self, key: String, kind: Kind) -> Ty {
        if let Some(t) = self.vars.get(&key) {
            return t.clone();
        }
        let t = self.gen.fresh_ty(kind, self.level);
        self.vars.insert(key, t.clone());
        t
    }

    fn lower(&mut self, te: &TypeExpr) -> Result<Ty, TypeError> {
        Ok(match &te.kind {
            TypeExprKind::Unit => t_unit(),
            TypeExprKind::Int => t_int(),
            TypeExprKind::Bool => t_bool(),
            TypeExprKind::String_ => t_str(),
            TypeExprKind::Real => t_real(),
            TypeExprKind::Dynamic => t_dynamic(),
            TypeExprKind::Var(name) => {
                if !self.open {
                    return Err(TypeError::OpenAnnotation(format!("'{name}")));
                }
                self.named_var(format!("'{name}"), Kind::Any)
            }
            TypeExprKind::DescVar(name) => {
                if !self.open {
                    return Err(TypeError::OpenAnnotation(format!("\"{name}")));
                }
                self.named_var(format!("\"{name}"), Kind::Desc)
            }
            TypeExprKind::Arrow(a, b) => t_arrow(self.lower(a)?, self.lower(b)?),
            TypeExprKind::Record { row, fields } => {
                let lowered = self.lower_fields(fields)?;
                match row {
                    None => t_record(lowered),
                    Some(r) => {
                        if !self.open {
                            return Err(TypeError::OpenAnnotation(format!("('{})", r.name)));
                        }
                        let kind = Kind::Record {
                            fields: lowered.into_iter().collect(),
                            desc: r.desc,
                        };
                        // Row vars with the same name must agree on their
                        // kind; for simplicity (and faithfulness to the
                        // paper, which never reuses a row name with
                        // different fields) each occurrence unifies via
                        // the shared cell created on first use.
                        self.named_row(&r.name, kind)?
                    }
                }
            }
            TypeExprKind::Variant { row, fields } => {
                let lowered = self.lower_fields(fields)?;
                match row {
                    None => t_variant(lowered),
                    Some(r) => {
                        if !self.open {
                            return Err(TypeError::OpenAnnotation(format!("('{})", r.name)));
                        }
                        let kind = Kind::Variant {
                            fields: lowered.into_iter().collect(),
                            desc: r.desc,
                        };
                        self.named_row(&r.name, kind)?
                    }
                }
            }
            TypeExprKind::Set(inner) => {
                let e = self.lower(inner)?;
                require_desc(&e)?;
                t_set(e)
            }
            TypeExprKind::Ref(inner) => t_ref(self.lower(inner)?),
            TypeExprKind::Rec { var, body } => {
                let id = self.next_rec;
                self.next_rec += 1;
                let shadowed = self.recs.insert(var.clone(), id);
                let b = self.lower(body)?;
                match shadowed {
                    Some(old) => {
                        self.recs.insert(var.clone(), old);
                    }
                    None => {
                        self.recs.remove(var);
                    }
                }
                Rc::new(Type::Rec(id, b))
            }
            TypeExprKind::Named(name) => match self.recs.get(name) {
                Some(id) => Rc::new(Type::RecVar(*id)),
                None => return Err(TypeError::UnboundRecVar(name.clone())),
            },
        })
    }

    fn lower_fields(
        &mut self,
        fields: &[(crate::ty::Label, TypeExpr)],
    ) -> Result<Vec<(crate::ty::Label, Ty)>, TypeError> {
        fields
            .iter()
            .map(|(l, t)| Ok((*l, self.lower(t)?)))
            .collect()
    }

    fn named_row(&mut self, name: &str, kind: Kind) -> Result<Ty, TypeError> {
        let key = format!("row {name}");
        if let Some(existing) = self.vars.get(&key).cloned() {
            // Merge by unifying a fresh variable of the new kind with the
            // existing one.
            let fresh = self.gen.fresh_ty(kind, self.level);
            crate::unify::unify(&existing, &fresh)?;
            return Ok(existing);
        }
        let t = self.gen.fresh_ty(kind, self.level);
        self.vars.insert(key, t.clone());
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::display::show_type;
    use machiavelli_syntax::parse_type;

    fn closed(src: &str) -> Result<Ty, TypeError> {
        lower_closed(&parse_type(src).unwrap())
    }

    fn open(src: &str) -> Ty {
        let gen = VarGen::new();
        lower_open(&parse_type(src).unwrap(), &gen, 1).unwrap()
    }

    #[test]
    fn lower_base_types() {
        assert_eq!(show_type(&closed("int").unwrap()), "int");
        assert_eq!(show_type(&closed("{string}").unwrap()), "{string}");
    }

    #[test]
    fn lower_record_and_variant() {
        assert_eq!(
            show_type(&closed("[Name: string, Age: int]").unwrap()),
            "[Age:int,Name:string]"
        );
        assert_eq!(
            show_type(&closed("<A: int, B: string>").unwrap()),
            "<A:int,B:string>"
        );
    }

    #[test]
    fn closed_rejects_variables_and_rows() {
        assert!(matches!(closed("'a"), Err(TypeError::OpenAnnotation(_))));
        assert!(matches!(
            closed("[('a) Age: int]"),
            Err(TypeError::OpenAnnotation(_))
        ));
    }

    #[test]
    fn closed_rejects_function_types() {
        assert!(matches!(
            closed("int -> int"),
            Err(TypeError::NotDescription(_))
        ));
        // … but allows them under ref.
        assert!(closed("ref(int -> int)").is_ok());
    }

    #[test]
    fn open_lowers_paper_notation() {
        let t = open("{[(\"a) Name:\"b, Salary:int]} -> {\"b}");
        assert_eq!(show_type(&t), "{[(\"a) Name:\"b,Salary:int]} -> {\"b}");
    }

    #[test]
    fn open_shares_named_vars() {
        let t = open("'x -> 'x");
        assert_eq!(show_type(&t), "'a -> 'a");
    }

    #[test]
    fn lower_recursive_type() {
        let t = closed("rec v . <Nil: unit, Cons: int * v>").unwrap();
        assert!(matches!(&*t, Type::Rec(..)));
        assert!(matches!(
            closed("rec v . w"),
            Err(TypeError::UnboundRecVar(_))
        ));
    }

    #[test]
    fn lower_set_requires_description_elems() {
        assert!(closed("{int -> int}").is_err());
    }
}
