//! E1 — Figure 1: `joe`, `phone`, `increment_age`.

use machiavelli::Session;

#[test]
fn joe_value_and_type() {
    let mut s = Session::new();
    let out = s
        .eval_one(
            r#"val joe = [Name="Joe", Age=21,
                          Status=(Consultant of [Address="Philadelphia", Telephone=2221234])];"#,
        )
        .unwrap();
    // Paper: [Name:string, Age:int,
    //         Status:<('a) Consultant:[Address:string, Telephone:int]>]
    // (our display orders fields canonically and names variables by first
    // occurrence).
    assert_eq!(
        out.scheme.show(),
        "[Age:int,Name:string,Status:<('a) Consultant:[Address:string,Telephone:int]>]"
    );
    assert_eq!(
        machiavelli::value::show_value(&out.value),
        r#"[Age=21, Name="Joe", Status=(Consultant of [Address="Philadelphia", Telephone=2221234])]"#
    );
}

#[test]
fn phone_type_and_application() {
    let mut s = Session::new();
    let out = s
        .eval_one(
            "fun phone(x) = (case x.Status of Employee of y => y.Extension,
                                              Consultant of y => y.Telephone);",
        )
        .unwrap();
    // Paper: [('a) Status:<Employee:[('b) Extension:'d],
    //                      Consultant:[('c) Telephone:'d]>] -> 'd
    // — a *closed* variant (no row) with open record payloads; variable
    // naming follows first occurrence in our canonical display.
    assert_eq!(
        out.scheme.show(),
        "[('a) Status:<Consultant:[('b) Telephone:'c],Employee:[('d) Extension:'c]>] -> 'c"
    );

    s.run(
        r#"val joe = [Name="Joe", Age=21,
                      Status=(Consultant of [Address="Philadelphia", Telephone=2221234])];"#,
    )
    .unwrap();
    let out = s.eval_one("phone(joe);").unwrap();
    assert_eq!(out.show(), "val it = 2221234 : int");
}

#[test]
fn phone_applies_to_employees_too() {
    let mut s = Session::new();
    s.run(
        "fun phone(x) = (case x.Status of Employee of y => y.Extension,
                                          Consultant of y => y.Telephone);",
    )
    .unwrap();
    let out = s
        .eval_one(r#"phone([Name="Ann", Status=(Employee of [Extension=42, Office=3])]);"#)
        .unwrap();
    assert_eq!(out.show(), "val it = 42 : int");
}

#[test]
fn increment_age_type_and_application() {
    let mut s = Session::new();
    let out = s
        .eval_one("fun increment_age(x) = modify(x, Age, x.Age + 1);")
        .unwrap();
    // Paper: [('a) Age:int] -> [('a) Age:int]
    assert_eq!(out.scheme.show(), "[('a) Age:int] -> [('a) Age:int]");

    let out = s
        .eval_one(r#"increment_age([Name="John", Age=21]);"#)
        .unwrap();
    // Paper: [Name="John", Age=22] : [Name:string, Age:int]
    assert_eq!(
        out.show(),
        r#"val it = [Age=22, Name="John"] : [Age:int,Name:string]"#
    );
}

#[test]
fn increment_age_preserves_extra_fields_exactly() {
    let mut s = Session::new();
    s.run("fun increment_age(x) = modify(x, Age, x.Age + 1);")
        .unwrap();
    let out = s
        .eval_one(r#"increment_age([Name="J", Age=1, Dept="CIS", Salary=9]);"#)
        .unwrap();
    assert_eq!(
        out.show(),
        r#"val it = [Age=2, Dept="CIS", Name="J", Salary=9] : [Age:int,Dept:string,Name:string,Salary:int]"#
    );
}

#[test]
fn case_must_cover_exact_variants_without_other() {
    let mut s = Session::new();
    s.run(
        "fun phone(x) = (case x.Status of Employee of y => y.Extension,
                                          Consultant of y => y.Telephone);",
    )
    .unwrap();
    // A record whose Status injects a *different* label must be rejected
    // statically.
    let err = s
        .run(r#"phone([Status=(Retired of [Since=1980])]);"#)
        .unwrap_err();
    assert!(err.to_string().contains("type error"), "{err}");
}

#[test]
fn id_session_from_section_3() {
    // The -> 1; -> fun id(x) = x; -> id(1); transcript of §3.3.
    let mut s = Session::new();
    assert_eq!(s.eval_one("1;").unwrap().show(), "val it = 1 : int");
    assert_eq!(
        s.eval_one("fun id(x) = x;").unwrap().show(),
        "val id = fn : 'a -> 'a"
    );
    assert_eq!(s.eval_one("id(1);").unwrap().show(), "val it = 1 : int");
    // id also applies at other types afterwards (true polymorphism).
    assert_eq!(
        s.eval_one("id(\"s\");").unwrap().show(),
        "val it = \"s\" : string"
    );
}
