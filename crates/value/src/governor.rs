//! **Cooperative resource governance** for server-hosted queries.
//!
//! A [`QueryGuard`] is the cancellation token the server attaches to
//! each admitted query: it carries an optional wall-clock deadline, an
//! optional row budget, and a cancel flag the client side can flip at
//! any time. The guard itself never interrupts anything — evaluation is
//! stopped *cooperatively*, at the evaluator's periodic tick
//! (`Cx::enter` in `machiavelli-eval`) and inside the parallel lane's
//! chunk loops, both of which call [`check_current`].
//!
//! Trips are **sticky**: once a guard observes a cancel, a blown
//! deadline, or an exhausted row budget it stays tripped, so a parallel
//! driver that bailed mid-chunk can never have its truncated result
//! returned as `Ok` — the next check on the coordinator surfaces the
//! same [`Trip`].
//!
//! The guard is installed per *thread* ([`install`]), mirroring the
//! session-is-a-thread discipline used by `tuning` and the index store.
//! Worker threads spawned by the parallel lane capture the coordinator's
//! `Arc<QueryGuard>` explicitly (the guard is `Send + Sync`; thread
//! locals do not inherit).
//!
//! The module also hosts the process-wide [`ServerCounters`] — the
//! sessions-started/panicked/shed, deadline and cancellation tallies
//! surfaced by `Session::server_stats` and the wire `:stats`.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Why a governed query was stopped. Carried by the evaluator's
/// `Interrupted` error variant all the way to the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trip {
    /// The client (or the server tearing a session down) cancelled the
    /// query.
    Cancelled,
    /// The per-query wall-clock deadline elapsed.
    DeadlineExceeded,
    /// The query materialized more rows than its budget allows.
    RowBudgetExceeded,
}

impl std::fmt::Display for Trip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Trip::Cancelled => write!(f, "query cancelled"),
            Trip::DeadlineExceeded => write!(f, "query deadline exceeded"),
            Trip::RowBudgetExceeded => write!(f, "query row budget exceeded"),
        }
    }
}

const TRIP_NONE: u8 = 0;
const TRIP_CANCELLED: u8 = 1;
const TRIP_DEADLINE: u8 = 2;
const TRIP_ROWS: u8 = 3;

fn trip_from_u8(v: u8) -> Option<Trip> {
    match v {
        TRIP_CANCELLED => Some(Trip::Cancelled),
        TRIP_DEADLINE => Some(Trip::DeadlineExceeded),
        TRIP_ROWS => Some(Trip::RowBudgetExceeded),
        _ => None,
    }
}

/// A per-query cancellation token: deadline + row budget + cancel flag,
/// with a sticky trip latch. `Send + Sync`; the server holds one end,
/// the evaluating thread (and any parallel workers) the other.
#[derive(Debug)]
pub struct QueryGuard {
    cancel: AtomicBool,
    deadline: Option<Instant>,
    /// `usize::MAX` = unlimited.
    rows_limit: usize,
    rows_used: AtomicUsize,
    /// Sticky latch: `TRIP_NONE` until the first trip, then frozen.
    tripped: AtomicU8,
}

impl QueryGuard {
    /// A guard with the given deadline and row budget (`None` =
    /// unlimited in both positions).
    pub fn new(deadline: Option<Instant>, rows_limit: Option<usize>) -> QueryGuard {
        QueryGuard {
            cancel: AtomicBool::new(false),
            deadline,
            rows_limit: rows_limit.unwrap_or(usize::MAX),
            rows_used: AtomicUsize::new(0),
            tripped: AtomicU8::new(TRIP_NONE),
        }
    }

    /// A guard whose deadline is `timeout` from now.
    pub fn with_timeout(timeout: Duration, rows_limit: Option<usize>) -> QueryGuard {
        QueryGuard::new(Instant::now().checked_add(timeout), rows_limit)
    }

    /// An unlimited guard (useful as a pure cancellation token).
    pub fn unlimited() -> QueryGuard {
        QueryGuard::new(None, None)
    }

    fn latch(&self, trip: u8) -> Trip {
        // First writer wins; later causes report whatever latched first,
        // keeping the reported reason stable across threads.
        let prev = self
            .tripped
            .compare_exchange(TRIP_NONE, trip, Ordering::AcqRel, Ordering::Acquire)
            .unwrap_or_else(|p| p);
        trip_from_u8(if prev == TRIP_NONE { trip } else { prev })
            .expect("latched trip is always a valid cause")
    }

    /// Request cancellation (idempotent, callable from any thread).
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Release);
        self.latch(TRIP_CANCELLED);
    }

    /// The sticky trip, if any — does **not** probe the clock; use
    /// [`QueryGuard::check`] at tick sites.
    pub fn tripped(&self) -> Option<Trip> {
        trip_from_u8(self.tripped.load(Ordering::Acquire))
    }

    /// Poll the guard: returns the (sticky) trip cause if the query
    /// should stop. This is the tick-site entry point: it probes the
    /// cancel flag and the deadline clock and latches on first failure.
    pub fn check(&self) -> Option<Trip> {
        if let Some(t) = self.tripped() {
            return Some(t);
        }
        if self.cancel.load(Ordering::Acquire) {
            return Some(self.latch(TRIP_CANCELLED));
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(self.latch(TRIP_DEADLINE));
            }
        }
        None
    }

    /// Charge `n` materialized rows against the budget; trips (sticky)
    /// when the running total exceeds the limit. Returns the trip so
    /// row-charging callers on the coordinator thread can surface it
    /// immediately rather than waiting for the next tick.
    pub fn charge_rows(&self, n: usize) -> Option<Trip> {
        if self.rows_limit == usize::MAX {
            return self.tripped();
        }
        let used = self
            .rows_used
            .fetch_add(n, Ordering::AcqRel)
            .saturating_add(n);
        if used > self.rows_limit {
            return Some(self.latch(TRIP_ROWS));
        }
        self.tripped()
    }

    /// Rows charged so far.
    pub fn rows_used(&self) -> usize {
        self.rows_used.load(Ordering::Acquire)
    }
}

// --- thread-local installation ---------------------------------------------

thread_local! {
    static GUARD: RefCell<Option<Arc<QueryGuard>>> = const { RefCell::new(None) };
    /// Fast-path mirror of `GUARD.is_some()`: the evaluator tick reads
    /// this `Cell<bool>` on every probe; un-governed sessions (the REPL,
    /// the test suite) pay one thread-local load and nothing else.
    static GUARD_ACTIVE: Cell<bool> = const { Cell::new(false) };
}

/// Install (or clear) the governing guard for this thread, returning
/// the previous one so callers can restore it. The server installs the
/// query's guard around each `Session::run` and restores on the way
/// out; parallel workers install the captured guard for their lifetime.
pub fn install(guard: Option<Arc<QueryGuard>>) -> Option<Arc<QueryGuard>> {
    GUARD_ACTIVE.with(|c| c.set(guard.is_some()));
    GUARD.with(|g| std::mem::replace(&mut *g.borrow_mut(), guard))
}

/// The guard governing this thread, if any.
pub fn current() -> Option<Arc<QueryGuard>> {
    if !GUARD_ACTIVE.with(Cell::get) {
        return None;
    }
    GUARD.with(|g| g.borrow().clone())
}

/// Tick-site probe: polls this thread's guard. `None` when un-governed
/// or still within limits. This is the function the evaluator's
/// `Cx::enter` tick and the parallel chunk loops call.
pub fn check_current() -> Option<Trip> {
    if !GUARD_ACTIVE.with(Cell::get) {
        return None;
    }
    GUARD.with(|g| g.borrow().as_ref().and_then(|guard| guard.check()))
}

/// Charge `n` rows against this thread's guard (no-op when un-governed).
/// Called from `MSet`'s bulk constructors — the places where a query
/// actually materializes row storage.
pub fn charge_current_rows(n: usize) {
    if !GUARD_ACTIVE.with(Cell::get) {
        return;
    }
    GUARD.with(|g| {
        if let Some(guard) = g.borrow().as_ref() {
            guard.charge_rows(n);
        }
    });
}

// --- default query row budget ----------------------------------------------

/// Default per-query row budget for server sessions: unlimited unless
/// `MACHIAVELLI_QUERY_MAX_ROWS` is set (the server's `ServerConfig` can
/// override per instance).
pub fn query_max_rows() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("MACHIAVELLI_QUERY_MAX_ROWS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

// --- process-wide server counters ------------------------------------------

/// Process-wide resilience counters, surfaced by `Session::server_stats`
/// and the wire `:stats`. Plain atomics: every field is monotonically
/// increasing between [`reset_server_counters`] calls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerCounters {
    /// Sessions opened on the server.
    pub sessions_started: u64,
    /// Sessions poisoned by an evaluator panic (isolated, not fatal).
    pub sessions_panicked: u64,
    /// Sessions closed cleanly.
    pub sessions_closed: u64,
    /// Queries rejected at admission (queue full → `ServerBusy`).
    pub queries_shed: u64,
    /// Queries stopped by their deadline.
    pub deadlines_hit: u64,
    /// Queries stopped by client cancellation.
    pub queries_cancelled: u64,
    /// Queries stopped by their row budget.
    pub row_budgets_hit: u64,
    /// Queries that completed (Ok or a plain query error).
    pub queries_completed: u64,
}

macro_rules! server_counter {
    ($static_:ident, $note:ident, $field:ident) => {
        static $static_: AtomicU64 = AtomicU64::new(0);
        #[doc = concat!("Increment [`ServerCounters::", stringify!($field), "`].")]
        pub fn $note() {
            $static_.fetch_add(1, Ordering::Relaxed);
        }
    };
}

server_counter!(SESSIONS_STARTED, note_session_started, sessions_started);
server_counter!(SESSIONS_PANICKED, note_session_panicked, sessions_panicked);
server_counter!(SESSIONS_CLOSED, note_session_closed, sessions_closed);
server_counter!(QUERIES_SHED, note_query_shed, queries_shed);
server_counter!(DEADLINES_HIT, note_deadline_hit, deadlines_hit);
server_counter!(QUERIES_CANCELLED, note_query_cancelled, queries_cancelled);
server_counter!(ROW_BUDGETS_HIT, note_row_budget_hit, row_budgets_hit);
server_counter!(QUERIES_COMPLETED, note_query_completed, queries_completed);

/// Snapshot the process-wide server counters.
pub fn server_counters() -> ServerCounters {
    ServerCounters {
        sessions_started: SESSIONS_STARTED.load(Ordering::Relaxed),
        sessions_panicked: SESSIONS_PANICKED.load(Ordering::Relaxed),
        sessions_closed: SESSIONS_CLOSED.load(Ordering::Relaxed),
        queries_shed: QUERIES_SHED.load(Ordering::Relaxed),
        deadlines_hit: DEADLINES_HIT.load(Ordering::Relaxed),
        queries_cancelled: QUERIES_CANCELLED.load(Ordering::Relaxed),
        row_budgets_hit: ROW_BUDGETS_HIT.load(Ordering::Relaxed),
        queries_completed: QUERIES_COMPLETED.load(Ordering::Relaxed),
    }
}

/// Zero the process-wide server counters (tests and bench setup).
pub fn reset_server_counters() {
    for c in [
        &SESSIONS_STARTED,
        &SESSIONS_PANICKED,
        &SESSIONS_CLOSED,
        &QUERIES_SHED,
        &DEADLINES_HIT,
        &QUERIES_CANCELLED,
        &ROW_BUDGETS_HIT,
        &QUERIES_COMPLETED,
    ] {
        c.store(0, Ordering::Relaxed);
    }
}

/// Record a query outcome's trip cause into the process counters.
pub fn note_trip(trip: Trip) {
    match trip {
        Trip::Cancelled => note_query_cancelled(),
        Trip::DeadlineExceeded => note_deadline_hit(),
        Trip::RowBudgetExceeded => note_row_budget_hit(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_is_sticky() {
        let g = QueryGuard::unlimited();
        assert_eq!(g.check(), None);
        g.cancel();
        assert_eq!(g.check(), Some(Trip::Cancelled));
        assert_eq!(g.tripped(), Some(Trip::Cancelled));
        // A later row overrun cannot overwrite the first cause.
        let g2 = QueryGuard::new(None, Some(1));
        g2.cancel();
        g2.charge_rows(10);
        assert_eq!(g2.tripped(), Some(Trip::Cancelled));
    }

    #[test]
    fn deadline_trips_and_latches() {
        let g = QueryGuard::new(Some(Instant::now() - Duration::from_millis(1)), None);
        assert_eq!(g.check(), Some(Trip::DeadlineExceeded));
        assert_eq!(g.tripped(), Some(Trip::DeadlineExceeded));
    }

    #[test]
    fn future_deadline_does_not_trip() {
        let g = QueryGuard::with_timeout(Duration::from_secs(3600), None);
        assert_eq!(g.check(), None);
    }

    #[test]
    fn row_budget_trips_past_limit() {
        let g = QueryGuard::new(None, Some(100));
        assert_eq!(g.charge_rows(60), None);
        assert_eq!(g.charge_rows(39), None);
        assert_eq!(g.charge_rows(2), Some(Trip::RowBudgetExceeded));
        assert_eq!(g.check(), Some(Trip::RowBudgetExceeded));
        assert_eq!(g.rows_used(), 101);
    }

    #[test]
    fn install_round_trips_and_checks() {
        assert_eq!(check_current(), None, "un-governed thread never trips");
        let guard = Arc::new(QueryGuard::unlimited());
        let prev = install(Some(guard.clone()));
        assert!(prev.is_none());
        assert_eq!(check_current(), None);
        guard.cancel();
        assert_eq!(check_current(), Some(Trip::Cancelled));
        let restored = install(prev);
        assert!(restored.is_some());
        assert_eq!(check_current(), None);
    }

    #[test]
    fn charge_current_rows_reaches_installed_guard() {
        let guard = Arc::new(QueryGuard::new(None, Some(5)));
        let prev = install(Some(guard.clone()));
        charge_current_rows(10);
        assert_eq!(guard.tripped(), Some(Trip::RowBudgetExceeded));
        install(prev);
    }

    #[test]
    fn counters_note_and_reset() {
        // Counters are process-global; use diffs so parallel tests
        // cannot interfere.
        let before = server_counters();
        note_session_started();
        note_trip(Trip::DeadlineExceeded);
        let after = server_counters();
        assert!(after.sessions_started > before.sessions_started);
        assert!(after.deadlines_hit > before.deadlines_hit);
    }
}
