//! Offline shim for the `stacker` crate.
//!
//! The real `stacker` grows the machine stack on demand via `psm`'s
//! assembly stack-switching. This build environment has no registry
//! access, so this shim provides the same API with a *headroom check*
//! instead of growth: callers can query [`remaining_stack`] and decide
//! to back off before the OS stack is exhausted. `maybe_grow` runs the
//! closure in place.
//!
//! On Linux the headroom is measured against the thread's real stack
//! bounds: spawned threads use the `/proc/self/maps` region containing
//! the current stack pointer (accurate regardless of how much stack was
//! consumed before the first call), and the main thread — whose
//! `[stack]` region grows on demand — uses `RLIMIT_STACK` from
//! `/proc/self/limits` measured from the region's top. Non-Linux
//! platforms fall back to a conservative fixed budget anchored at the
//! first call.

use std::cell::Cell;

thread_local! {
    /// Lower bound of this thread's usable stack (grows-down limit),
    /// resolved once; 0 = not yet resolved, 1 = resolved to "unknown".
    static STACK_FLOOR: Cell<usize> = const { Cell::new(0) };
    /// Address of a stack local captured on the first call in this
    /// thread — the fallback anchor when the bounds are unknown.
    static STACK_BASE: Cell<usize> = const { Cell::new(0) };
}

/// Fallback budget when the stack bounds cannot be resolved (non-Linux,
/// or an unlimited/unparsable rlimit). Test threads default to 2 MiB
/// (`RUST_MIN_STACK` can raise it); keeping the assumed budget under
/// that with a safety margin means the caller's depth guard fires
/// before the OS guard page does. Threads with even smaller stacks are
/// not protected by the fallback — on Linux (the supported platform)
/// they take the precise mapping path instead.
const ASSUMED_BUDGET: usize = 1536 * 1024;

/// Slack kept above the mapping floor: the kernel guard page plus
/// breathing room for the caller to unwind.
const FLOOR_SLACK: usize = 64 * 1024;

fn approx_sp() -> usize {
    let probe = 0u8;
    std::ptr::addr_of!(probe) as usize
}

/// The soft `RLIMIT_STACK` from /proc/self/limits (None when the file
/// is unreadable or the limit is unlimited).
#[cfg(target_os = "linux")]
fn stack_rlimit() -> Option<usize> {
    let limits = std::fs::read_to_string("/proc/self/limits").ok()?;
    let line = limits.lines().find(|l| l.starts_with("Max stack size"))?;
    // Columns: name (25 chars), soft, hard, units.
    let soft = line[25..].split_whitespace().next()?;
    soft.parse().ok()
}

/// Find the lower bound of this thread's usable stack from the memory
/// mapping containing `sp`. The main thread's auto-growing `[stack]`
/// region has a fixed *top* and an `RLIMIT_STACK`-bounded extent, so
/// its floor is `top - rlimit`; spawned threads have fixed mappings
/// whose lower bound is the floor directly.
#[cfg(target_os = "linux")]
fn stack_floor_of(sp: usize) -> Option<usize> {
    let maps = std::fs::read_to_string("/proc/self/maps").ok()?;
    for line in maps.lines() {
        let range = line.split_whitespace().next()?;
        let (lo, hi) = range.split_once('-')?;
        let lo = usize::from_str_radix(lo, 16).ok()?;
        let hi = usize::from_str_radix(hi, 16).ok()?;
        if (lo..hi).contains(&sp) {
            if line.trim_end().ends_with("[stack]") {
                // The mapped extent is not the limit; the rlimit is.
                return stack_rlimit().map(|limit| hi.saturating_sub(limit));
            }
            return Some(lo);
        }
    }
    None
}

#[cfg(not(target_os = "linux"))]
fn stack_floor_of(_sp: usize) -> Option<usize> {
    None
}

/// Estimated remaining stack in bytes.
pub fn remaining_stack() -> Option<usize> {
    let sp = approx_sp();
    let floor = STACK_FLOOR.with(|f| {
        if f.get() == 0 {
            f.set(stack_floor_of(sp).unwrap_or(1));
        }
        f.get()
    });
    if floor > 1 {
        // Precise: distance to the mapping floor, minus guard slack.
        return Some(sp.saturating_sub(floor).saturating_sub(FLOOR_SLACK));
    }
    // Fallback: fixed budget from the first observed frame.
    let base = STACK_BASE.with(|b| {
        if b.get() == 0 {
            b.set(sp);
        }
        b.get()
    });
    let used = base.saturating_sub(sp);
    Some(ASSUMED_BUDGET.saturating_sub(used))
}

/// Run `f`, which the real crate would do on a grown stack when fewer
/// than `red_zone` bytes remain. The shim cannot switch stacks, so it
/// simply runs `f` in place; callers must bound their own recursion
/// (the evaluator checks [`remaining_stack`] against its red zone).
pub fn maybe_grow<R>(red_zone: usize, stack_size: usize, f: impl FnOnce() -> R) -> R {
    let _ = (red_zone, stack_size);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maybe_grow_runs_closure() {
        assert_eq!(maybe_grow(64 * 1024, 1024 * 1024, || 41 + 1), 42);
    }

    #[test]
    fn remaining_stack_decreases_with_depth() {
        fn deep(n: u32) -> usize {
            // A real frame so the recursion is not collapsed.
            let frame = std::hint::black_box([n; 64]);
            if frame[0] == 0 {
                remaining_stack().unwrap()
            } else {
                deep(n - 1)
            }
        }
        let shallow = remaining_stack().unwrap();
        let deeper = deep(100);
        assert!(deeper <= shallow);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn spawned_thread_uses_real_mapping() {
        // A large fixed-size thread must see its real stack budget, not
        // the conservative 1.5 MiB fallback. (The lower bound cannot be
        // asserted tightly: glibc may satisfy a small request by reusing
        // a larger cached stack.)
        let remaining = std::thread::Builder::new()
            .stack_size(8 * 1024 * 1024)
            .spawn(|| remaining_stack().unwrap())
            .unwrap()
            .join()
            .unwrap();
        assert!(
            remaining > 4 * 1024 * 1024,
            "measured {remaining}; expected the real ~8 MiB mapping, not the fallback budget"
        );
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn main_thread_budget_tracks_rlimit() {
        // Run on whatever thread the harness gives us; the point is the
        // parser: /proc/self/limits must yield the soft limit.
        if let Some(limit) = stack_rlimit() {
            assert!(limit >= 1024 * 1024, "implausible RLIMIT_STACK {limit}");
        }
    }

    #[test]
    fn guard_prevents_stack_overflow_crash() {
        // Recurse until remaining_stack says stop; must exit cleanly
        // well before the OS guard page on a 1 MiB thread.
        fn dive(depth: u32) -> u32 {
            let frame = std::hint::black_box([depth; 128]);
            if remaining_stack().is_some_and(|r| r < 192 * 1024) {
                return depth + frame[0] - depth;
            }
            dive(depth + 1)
        }
        let depth = std::thread::Builder::new()
            .stack_size(1024 * 1024)
            .spawn(|| dive(0))
            .unwrap()
            .join()
            .expect("guard must fire before the guard page");
        assert!(depth > 0);
    }
}
