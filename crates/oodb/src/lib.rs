//! Object-oriented databases in Machiavelli (§5 of the paper).
//!
//! * [`object`] — person objects (`ref`s with optional attributes) and
//!   object stores;
//! * [`views`] — the Figure 8 views (`PersonView`, `EmployeeView`,
//!   `StudentView`, `TFView`), natively and in Machiavelli source;
//! * [`classes`] — the class algebra: `join` = intersection of extents +
//!   union of methods, `unionc` = generalization, identity-based
//!   `member`;
//! * [`university`] — a scalable generator for the People ⊇ {Students,
//!   Employees} ⊇ TeachingFellows taxonomy (Figure 6);
//! * [`dynamic`] — external untyped databases as sets of `dynamic`
//!   values with typed views.

pub mod classes;
pub mod dynamic;
pub mod object;
pub mod university;
pub mod views;

pub use classes::{class_join, class_member, class_unionc};
pub use dynamic::{department_shape, dynamic_view, employee_shape, gen_external_db};
pub use object::{
    make_person, optional_value, person_field, store_value, PersonSpec, PERSON_STORE_TYPE,
};
pub use university::{gen_university, University, UniversityParams};
pub use views::{employee_view, person_view, student_view, tf_view, MACHIAVELLI_VIEWS};
