//! E6 — Figures 6 and 7: the class hierarchy as types, and the
//! information-ordering relationships between them.
//!
//! Figure 6's arrows (TeachingFellows → Students/Employees → People)
//! "run opposite to the information ordering": Person ≤ Student ≤ TF and
//! Person ≤ Employee ≤ TF.

use machiavelli::syntax::parse_type;
use machiavelli::types::{le, lower_closed, type_eq, Partial};

const PERSON_OBJ: &str = "rec p . ref([Name: string, \
    Salary: <None: unit, Value: int>, \
    Advisor: <None: unit, Value: p>, \
    Class: <None: unit, Value: string>])";

fn person() -> String {
    format!("[Name: string, Id: {PERSON_OBJ}]")
}
fn student() -> String {
    format!("[Name: string, Advisor: {PERSON_OBJ}, Id: {PERSON_OBJ}]")
}
fn employee() -> String {
    format!("[Name: string, Salary: int, Id: {PERSON_OBJ}]")
}
fn teaching_fellow() -> String {
    format!("[Name: string, Salary: int, Advisor: {PERSON_OBJ}, Class: string, Id: {PERSON_OBJ}]")
}

fn ty(src: &str) -> machiavelli::types::Ty {
    lower_closed(&parse_type(src).unwrap()).unwrap()
}

#[test]
fn figure7_types_are_description_types() {
    for t in [person(), student(), employee(), teaching_fellow()] {
        assert!(lower_closed(&parse_type(&t).unwrap()).is_ok(), "{t}");
    }
}

#[test]
fn ordering_mirrors_figure6_arrows() {
    let p = ty(&person());
    let s = ty(&student());
    let e = ty(&employee());
    let tf = ty(&teaching_fellow());
    // Person ≤ Student, Person ≤ Employee, both ≤ TeachingFellow.
    assert_eq!(le(&p, &s), Partial::Known(true));
    assert_eq!(le(&p, &e), Partial::Known(true));
    assert_eq!(le(&s, &tf), Partial::Known(true));
    assert_eq!(le(&e, &tf), Partial::Known(true));
    assert_eq!(le(&p, &tf), Partial::Known(true));
    // Students and Employees are incomparable.
    assert_eq!(le(&s, &e), Partial::Known(false));
    assert_eq!(le(&e, &s), Partial::Known(false));
    // And the ordering is strict (no arrow reversal).
    assert_eq!(le(&tf, &p), Partial::Known(false));
}

#[test]
fn lub_of_student_and_employee_is_teaching_fellow_minus_class() {
    let s = ty(&student());
    let e = ty(&employee());
    let l = machiavelli::types::lub(&s, &e).unwrap().known().unwrap();
    let expected = ty(&format!(
        "[Name: string, Salary: int, Advisor: {PERSON_OBJ}, Id: {PERSON_OBJ}]"
    ));
    assert_eq!(type_eq(&l, &expected), Partial::Known(true));
}

#[test]
fn glb_of_student_and_employee_is_person() {
    let s = ty(&student());
    let e = ty(&employee());
    let g = machiavelli::types::glb(&s, &e).unwrap().known().unwrap();
    assert_eq!(type_eq(&g, &ty(&person())), Partial::Known(true));
}

#[test]
fn ref_types_are_atomic_for_the_ordering() {
    // ref(τ) ≤ ref(τ) only: a "smaller" object type is not ≤.
    let full = ty(PERSON_OBJ);
    let fewer = ty("ref([Name: string])");
    assert_eq!(le(&fewer, &full), Partial::Known(false));
    assert_eq!(le(&full, &full), Partial::Known(true));
}

#[test]
fn intlists_example_from_section_3_1() {
    // intlists = rec v. (unit + (int * v)) — spelled with variant labels.
    let t = ty("rec v . <#1: unit, #2: int * v>");
    // Equi-recursive: equal to its own unfolding.
    let unfolded = machiavelli::types::ty::unfold_rec(&t);
    assert_eq!(type_eq(&t, &unfolded), Partial::Known(true));
}
