//! Offline shim for the `criterion` crate.
//!
//! Implements the slice of the criterion 0.5 API the workspace's benches
//! use (`benchmark_group`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!`) with a simple but honest
//! wall-clock harness: per benchmark it warms up, then takes
//! `sample_size` samples (each a batch of iterations sized to the warmup
//! estimate) within the measurement window, and reports min/mean/max of
//! the per-iteration time.
//!
//! Output goes to stdout in a stable `<group>/<id> time: […]` format;
//! when the `BENCH_JSON` environment variable names a file, one JSON
//! line per benchmark (`{"id": …, "mean_ns": …, …}`) is appended for
//! machine consumption (used to record the repo's benchmark baselines).

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level harness configuration and entry point.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 30,
        }
    }
}

impl Criterion {
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            _parent: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
    }
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, |b| f(b, input));
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id, |b| f(b));
    }

    pub fn finish(self) {}

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let full_id = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        // Warm-up: also estimates the per-iteration cost so samples can
        // be batched to a sensible size.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        while warm_start.elapsed() < self.warm_up {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            warm_iters += bencher.iters;
        }
        let warm_elapsed = warm_start.elapsed();
        let per_iter = warm_elapsed.as_nanos().max(1) / u128::from(warm_iters.max(1));
        // Aim each sample at measurement/sample_size wall time.
        let sample_budget = self.measurement.as_nanos() / self.sample_size as u128;
        let iters_per_sample = (sample_budget / per_iter.max(1)).clamp(1, u64::MAX as u128) as u64;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        let run_start = Instant::now();
        for _ in 0..self.sample_size {
            bencher.iters = iters_per_sample;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            samples_ns.push(bencher.elapsed.as_nanos() as f64 / iters_per_sample as f64);
            // Never run grossly past the window (slow benches).
            if run_start.elapsed() > self.measurement * 2 && samples_ns.len() >= 2 {
                break;
            }
        }
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let min = samples_ns.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples_ns.iter().copied().fold(0.0f64, f64::max);
        println!(
            "{full_id:<50} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max)
        );
        if let Ok(path) = std::env::var("BENCH_JSON") {
            if !path.is_empty() {
                if let Ok(mut file) = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                {
                    let _ = writeln!(
                        file,
                        "{{\"id\":\"{}\",\"mean_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\"samples\":{},\"iters_per_sample\":{}}}",
                        full_id.replace('"', "'"),
                        mean,
                        min,
                        max,
                        samples_ns.len(),
                        iters_per_sample
                    );
                }
            }
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Passed to benchmark closures; `iter` runs the routine `iters` times
/// and records the elapsed wall time.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

/// Mirrors criterion's `criterion_group!` (both the simple and the
/// `name/config/targets` forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirrors criterion's `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_measures_something() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            ran = true;
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
