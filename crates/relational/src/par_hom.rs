//! Parallel `hom`.
//!
//! The paper observes that *proper* applications of `hom` — `op`
//! associative and commutative, `f` side-effect free — "have the property
//! of being computable in parallel". [`par_hom`] realizes the claim:
//! split the set across threads, fold each chunk, and combine the
//! partial results with `op`.
//!
//! Machiavelli's interpreted values are deliberately single-threaded
//! (`Rc`-based), so the parallel path operates on **extracted plain
//! data** (`machiavelli_value::plain`). Since PR 4 this is no longer an
//! ablation-only demonstration: the evaluator classifies proper `hom`
//! applications (known associative-commutative `op` with its identity
//! as `z`, `f` with a planner-safe body), extracts the set through
//! `to_plain`, and folds it here — falling back to the sequential
//! interpreter fold whenever the classification or extraction declines.
//!
//! # Failure behavior
//!
//! * A worker **panic** is re-raised on the coordinating thread with its
//!   original payload (`resume_unwind`), not swallowed or turned into a
//!   process abort.
//! * A failed **thread spawn** (OS limits) degrades gracefully: the
//!   chunk that could not get a thread is folded inline on the
//!   coordinating thread via [`seq_hom`] — the result is identical,
//!   only the parallelism is lost.

use crossbeam::thread;
use machiavelli_value::tuning::PAR_HOM_MIN_ITEMS_PER_THREAD;

/// Sequential `hom(f, op, z, items)` as the paper's right fold.
pub fn seq_hom<T, B>(items: &[T], f: impl Fn(&T) -> B, op: impl Fn(B, B) -> B, z: B) -> B {
    let mut acc = z;
    for x in items.iter().rev() {
        acc = op(f(x), acc);
    }
    acc
}

/// Parallel `hom` for *proper* applications: `op` must be associative
/// and commutative with identity `z` (each chunk is seeded with `z`, so
/// a non-identity `z` would be folded in once per chunk). Splits into
/// `n_threads` chunks; inputs smaller than
/// [`PAR_HOM_MIN_ITEMS_PER_THREAD`] per thread fold sequentially.
pub fn par_hom<T, B>(
    items: &[T],
    f: impl Fn(&T) -> B + Sync,
    op: impl Fn(B, B) -> B + Sync,
    z: B,
    n_threads: usize,
) -> B
where
    T: Sync,
    B: Send + Clone,
{
    let n_threads = n_threads.max(1);
    if items.len() < PAR_HOM_MIN_ITEMS_PER_THREAD * n_threads || n_threads == 1 {
        return seq_hom(items, &f, &op, z);
    }
    let chunk = items.len().div_ceil(n_threads);
    let partials = thread::scope(|scope| {
        // Spawn fallibly; a chunk whose spawn is declined by the OS is
        // remembered and folded inline below, while the threads that
        // did spawn keep working.
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|slice| {
                let f = &f;
                let op = &op;
                let z = z.clone();
                // The injected spawn fault exercises the same inline
                // fallback as a real OS decline.
                if machiavelli_value::faults::spawn_denied() {
                    return Err(slice);
                }
                match scope.try_spawn(move |_| seq_hom(slice, f, op, z)) {
                    Ok(h) => Ok(h),
                    Err(_) => Err(slice),
                }
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h {
                // Propagate a worker panic with its original payload on
                // the coordinating thread (the scope still joins the
                // remaining workers while this unwinds).
                Ok(h) => h
                    .join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload)),
                Err(slice) => seq_hom(slice, &f, &op, z.clone()),
            })
            .collect::<Vec<B>>()
    })
    .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
    let mut acc = z;
    for p in partials {
        acc = op(p, acc);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_hom_matches_definition() {
        // op(f(x1), op(f(x2), op(f(x3), z)))
        let r = seq_hom(&[1, 2, 3], |&x| x * 10, |a, b| a + b, 0);
        assert_eq!(r, 60);
    }

    #[test]
    fn par_matches_seq_for_proper_applications() {
        let data: Vec<i64> = (0..10_000).collect();
        for threads in [1, 2, 4, 8] {
            assert_eq!(
                par_hom(&data, |&x| x, |a, b| a + b, 0, threads),
                seq_hom(&data, |&x| x, |a, b| a + b, 0)
            );
            assert_eq!(
                par_hom(&data, |&x| x % 97, |a, b| a.max(b), i64::MIN, threads),
                96
            );
        }
    }

    #[test]
    fn par_count_and_filtering_hom() {
        // filter-like hom: count elements above a threshold.
        let data: Vec<i64> = (0..5000).collect();
        let count = par_hom(&data, |&x| i64::from(x > 2499), |a, b| a + b, 0, 4);
        assert_eq!(count, 2500);
    }

    #[test]
    fn small_inputs_fall_back_to_sequential() {
        assert_eq!(par_hom(&[1, 2, 3], |&x| x, |a, b| a + b, 0, 16), 6);
        assert_eq!(par_hom::<i64, i64>(&[], |&x| x, |a, b| a + b, 7, 4), 7);
    }

    #[test]
    fn worker_panic_payload_reaches_the_caller() {
        let data: Vec<i64> = (0..1000).collect();
        let caught = std::panic::catch_unwind(|| {
            par_hom(
                &data,
                |&x| {
                    if x == 777 {
                        panic!("boom at {x}");
                    }
                    x
                },
                |a, b| a + b,
                0,
                4,
            )
        });
        let payload = caught.expect_err("worker panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert_eq!(msg, "boom at 777", "original payload, not a join wrapper");
    }
}
