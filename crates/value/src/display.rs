//! Rendering values in the paper's notation: `[Name="Joe", Age=21]`,
//! `{1, 2, 3}`, `(Consultant of [...])`. Record fields print in canonical
//! (sorted) label order; tuples print as `(a, b)`.

use crate::value::{Builtin, Value};
use std::fmt::Write as _;

/// Render a value. Cyclic structures (rings built through references)
/// print each reference's contents once; a back-edge prints as `ref#id`.
pub fn show_value(v: &Value) -> String {
    let mut out = String::new();
    let mut stack = Vec::new();
    write_value(&mut out, v, &mut stack);
    out
}

fn write_value(out: &mut String, v: &Value, stack: &mut Vec<u64>) {
    match v {
        Value::Unit => out.push_str("()"),
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Real(r) => {
            if r.fract() == 0.0 && r.is_finite() {
                let _ = write!(out, "{r:.1}");
            } else {
                let _ = write!(out, "{r}");
            }
        }
        Value::Str(s) => {
            let _ = write!(out, "{s:?}");
        }
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Record(fields) => {
            if let Some(items) = fields.tuple_items() {
                out.push('(');
                for (pos, fv) in items.into_iter().enumerate() {
                    if pos > 0 {
                        out.push_str(", ");
                    }
                    write_value(out, fv, stack);
                }
                out.push(')');
            } else {
                out.push('[');
                for (i, (l, fv)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{l}=");
                    write_value(out, fv, stack);
                }
                out.push(']');
            }
        }
        Value::Variant(label, payload) => {
            let _ = write!(out, "({label} of ");
            write_value(out, payload, stack);
            out.push(')');
        }
        Value::Set(s) => {
            out.push('{');
            for (i, item) in s.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_value(out, item, stack);
            }
            out.push('}');
        }
        Value::Ref(r) => {
            if stack.contains(&r.id) {
                let _ = write!(out, "ref#{}", r.id);
                return;
            }
            stack.push(r.id);
            let _ = write!(out, "ref#{}(", r.id);
            write_value(out, &r.cell.borrow(), stack);
            out.push(')');
            stack.pop();
        }
        Value::Dynamic(d) => {
            let _ = write!(out, "dynamic#{}(", d.id);
            write_value(out, &d.value, stack);
            out.push(')');
        }
        Value::Closure(_) => out.push_str("fn"),
        Value::Op(op) => out.push_str(op.symbol()),
        Value::Builtin(Builtin::Union) => out.push_str("union"),
        Value::Builtin(Builtin::Not) => out.push_str("not"),
        Value::Builtin(Builtin::ApplyC) => out.push_str("applyc"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn show_paper_style() {
        let v = Value::record([
            ("Name".into(), Value::str("Joe")),
            ("Salary".into(), Value::Int(22340)),
        ]);
        assert_eq!(show_value(&v), r#"[Name="Joe", Salary=22340]"#);
    }

    #[test]
    fn show_set_and_variant() {
        let v = Value::set([Value::str("Fred"), Value::str("Helen")]);
        assert_eq!(show_value(&v), r#"{"Fred", "Helen"}"#);
        let v = Value::variant("Consultant", Value::record([]));
        assert_eq!(show_value(&v), "(Consultant of [])");
    }

    #[test]
    fn show_tuple() {
        let v = Value::tuple([Value::Int(1), Value::str("x")]);
        assert_eq!(show_value(&v), r#"(1, "x")"#);
    }

    #[test]
    fn show_nested() {
        let v = Value::set([Value::record([
            ("Pname".into(), Value::str("bolt")),
            (
                "Pinfo".into(),
                Value::variant("BasePart", Value::record([("Cost".into(), Value::Int(5))])),
            ),
        ])]);
        assert_eq!(
            show_value(&v),
            r#"{[Pinfo=(BasePart of [Cost=5]), Pname="bolt"]}"#
        );
    }
}
