//! The class algebra of §5: classes are sets of records with an `Id`
//! field; `join` intersects extents while unioning fields ("methods"),
//! `unionc` generalizes (projects onto the common structure), and
//! `member` tests identity-based membership across classes of different
//! type.

use machiavelli_relational::{nested_loop_join, Relation};
use machiavelli_value::{join_value, unionc_value, Value};

/// Intersection-of-extents / union-of-fields: the natural join of two
/// classes. With a shared `Id` field of reference type, rows combine
/// exactly when they denote the same object.
pub fn class_join(a: &Relation, b: &Relation) -> Relation {
    nested_loop_join(a, b)
}

/// Generalization: `unionc` of the two classes — both projected onto
/// their common structure, then unioned.
pub fn class_unionc(a: &Relation, b: &Relation) -> Result<Relation, machiavelli_value::ValueError> {
    let u = unionc_value(&a.clone().into_value(), &b.clone().into_value())?;
    Ok(Relation::from_value(&u))
}

/// The paper's `fun member(x, S) = join({x}, S) <> {}`: true iff some
/// member of `S` shares an identity (is consistent) with `x`.
pub fn class_member(x: &Value, class: &Relation) -> bool {
    let singleton = Value::set([x.clone()]);
    match join_value(&singleton, &class.clone().into_value()) {
        Ok(Value::Set(s)) => !s.is_empty(),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{make_person, store_value, PersonSpec};
    use crate::views::{employee_view, person_view, student_view};

    fn store() -> Value {
        let prof = make_person(PersonSpec::new("Prof").salary(90_000));
        let stu = make_person(PersonSpec::new("Stu").advisor(prof.clone()));
        let both = make_person(PersonSpec::new("Both").salary(10_000).advisor(prof.clone()));
        store_value(&[prof, stu, both])
    }

    #[test]
    fn join_is_intersection_with_method_union() {
        let s = store();
        let joined = class_join(&student_view(&s), &employee_view(&s));
        assert_eq!(joined.len(), 1);
        let Value::Record(fs) = joined.iter().next().unwrap() else {
            panic!()
        };
        assert!(fs.contains_key("Salary") && fs.contains_key("Advisor"));
    }

    #[test]
    fn unionc_is_generalization() {
        let s = store();
        let u = class_unionc(&student_view(&s), &employee_view(&s)).unwrap();
        // Students ∪ employees as Persons: prof, stu, both = 3.
        assert_eq!(u.len(), 3);
        // Every row now has exactly the Person structure.
        for row in u.iter() {
            let Value::Record(fs) = row else { panic!() };
            assert_eq!(fs.keys().cloned().collect::<Vec<_>>(), vec!["Id", "Name"]);
        }
        // And each is a member of the person view (extent inclusion).
        let persons = person_view(&s);
        for row in u.iter() {
            assert!(persons.rows().contains(row));
        }
    }

    #[test]
    fn member_across_class_types() {
        let s = store();
        let students = student_view(&s);
        let employees = employee_view(&s);
        // A student-view row is a member of the employee view iff the
        // underlying object is also an employee.
        let rows: Vec<&Value> = students.iter().collect();
        let membership: Vec<bool> = rows.iter().map(|r| class_member(r, &employees)).collect();
        assert_eq!(membership.iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn member_of_own_class() {
        let s = store();
        let employees = employee_view(&s);
        for row in employees.iter() {
            assert!(class_member(row, &employees));
        }
    }
}
