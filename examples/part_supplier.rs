//! The Figure 2–5 part–supplier scenario end to end: a generated
//! non-first-normal-form database, the paper's queries, and an
//! interpreter-vs-native cross-check of the recursive `cost` function.
//!
//! ```sh
//! cargo run --example part_supplier [n_parts]
//! ```

use machiavelli::value::Value;
use machiavelli_bench::{scaled_parts_session, FIG5_SOURCE};
use machiavelli_relational::native_cost;

fn main() {
    let n_parts: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(40);

    println!("building a part-supplier database with {n_parts} parts…");
    let (mut session, db) = scaled_parts_session(n_parts, 8, 2026);

    // Figure 3, query 1: all base parts.
    let out = session
        .eval_one("card(join(parts, {[Pinfo=(BasePart of [])]}));")
        .expect("base-parts query");
    println!("base parts: {}", machiavelli::value::show_value(&out.value));

    // Figure 3, query 2: names of parts supplied by a given supplier.
    session
        .run("fun Join3(x,y,z) = join(x, join(y,z));")
        .expect("Join3");
    let out = session
        .eval_one(
            r#"card(select x.Pname
               where x <- join(parts, supplied_by)
               with Join3(x.Suppliers, suppliers, {[Sname="supplier0"]}) <> {});"#,
        )
        .expect("supplied-by query");
    println!(
        "parts supplied by supplier0: {}",
        machiavelli::value::show_value(&out.value)
    );

    // Figure 5: the recursive cost function, interpreted.
    session.run(FIG5_SOURCE).expect("cost definitions");
    let out = session
        .eval_one("select [P = x.P#, C = cost(x)] where x <- parts with true;")
        .expect("cost query");

    // Cross-check every part against the native implementation.
    let Value::Set(rows) = &out.value else {
        unreachable!()
    };
    let mut checked = 0;
    for row in rows.iter() {
        let Value::Record(fs) = row else {
            unreachable!()
        };
        let (Value::Int(p), Value::Int(c)) = (&fs["P"], &fs["C"]) else {
            unreachable!()
        };
        assert_eq!(native_cost(&db.parts, *p), Some(*c), "part {p}");
        checked += 1;
    }
    println!("interpreted cost verified against native for {checked} parts ✓");

    // The headline query: expensive parts.
    let out = session
        .eval_one("expensive_parts(parts, 5000);")
        .expect("expensive_parts");
    println!(
        ">> val it = {} : {}",
        machiavelli::value::show_value(&out.value),
        out.scheme.show()
    );
}
