//! Views over object stores (Figure 8).
//!
//! A *view* reveals part of each object's structure as a plain record,
//! keeping the object itself in a distinguished `Id` field — a *class* is
//! any record type with such an `Id` field. Native implementations here;
//! the same definitions in Machiavelli source are in
//! [`MACHIAVELLI_VIEWS`] (with the paper's `(!x).Class` typo corrected to
//! `(!(x.Id)).Class` in `TFView`, which otherwise dereferences a
//! non-reference).

use crate::object::{optional_value, person_field};
use machiavelli_relational::{nested_loop_join, Relation};
use machiavelli_value::{RefValue, Value};

/// Machiavelli source for the four view functions of Figure 8.
pub const MACHIAVELLI_VIEWS: &str = r#"
fun PersonView(S) = select [Name=(!x).Name, Id=x]
                    where x <- S
                    with true;

fun EmployeeView(S) = select [Name=(!x).Name, (Salary=(!x).Salary as Value), Id=x]
                      where x <- S
                      with (case (!x).Salary of Value of v => true, other => false);

fun StudentView(S) = select [Name=(!x).Name, (Advisor=(!x).Advisor as Value), Id=x]
                     where x <- S
                     with (case (!x).Advisor of Value of v => true, other => false);

fun TFView(S) = select join(x, [Class=(!(x.Id)).Class as Value])
                where x <- join(StudentView(S), EmployeeView(S))
                with (case (!(x.Id)).Class of Value of v => true, other => false);
"#;

fn objects_of(store: &Value) -> Vec<RefValue> {
    match store {
        Value::Set(s) => s
            .iter()
            .filter_map(|v| match v {
                Value::Ref(r) => Some(r.clone()),
                _ => None,
            })
            .collect(),
        _ => Vec::new(),
    }
}

/// `PersonView : {PersonObj} -> {Person}` — every object, name + identity.
pub fn person_view(store: &Value) -> Relation {
    Relation::from_rows(objects_of(store).into_iter().filter_map(|obj| {
        let name = person_field(&obj, "Name")?;
        Some(Value::record([
            ("Name".into(), name),
            ("Id".into(), Value::Ref(obj)),
        ]))
    }))
}

/// `EmployeeView : {PersonObj} -> {Employee}` — objects with a salary.
pub fn employee_view(store: &Value) -> Relation {
    Relation::from_rows(objects_of(store).into_iter().filter_map(|obj| {
        let name = person_field(&obj, "Name")?;
        let salary = optional_value(&person_field(&obj, "Salary")?)?;
        Some(Value::record([
            ("Name".into(), name),
            ("Salary".into(), salary),
            ("Id".into(), Value::Ref(obj)),
        ]))
    }))
}

/// `StudentView : {PersonObj} -> {Student}` — objects with an advisor.
pub fn student_view(store: &Value) -> Relation {
    Relation::from_rows(objects_of(store).into_iter().filter_map(|obj| {
        let name = person_field(&obj, "Name")?;
        let advisor = optional_value(&person_field(&obj, "Advisor")?)?;
        Some(Value::record([
            ("Name".into(), name),
            ("Advisor".into(), advisor),
            ("Id".into(), Value::Ref(obj)),
        ]))
    }))
}

/// `TFView : {PersonObj} -> {TeachingFellow}` — the join of the student
/// and employee views (intersection of extents, union of fields),
/// restricted to objects with a class and extended with it.
pub fn tf_view(store: &Value) -> Relation {
    let joined = nested_loop_join(&student_view(store), &employee_view(store));
    Relation::from_rows(joined.iter().filter_map(|row| {
        let Value::Record(fs) = row else { return None };
        let Value::Ref(obj) = fs.get("Id")? else {
            return None;
        };
        let class = optional_value(&person_field(obj, "Class")?)?;
        let mut out = fs.clone();
        out.insert("Class".into(), class);
        Some(Value::Record(out))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{make_person, store_value, PersonSpec};

    fn sample_store() -> (Value, Vec<RefValue>) {
        let prof = make_person(PersonSpec::new("Prof").salary(90_000));
        let plain = make_person(PersonSpec::new("Plain"));
        let student = make_person(PersonSpec::new("Stu").advisor(prof.clone()));
        let tf = make_person(
            PersonSpec::new("TF")
                .salary(20_000)
                .advisor(prof.clone())
                .class("CS101"),
        );
        let objs = vec![prof, plain, student, tf];
        (store_value(&objs), objs)
    }

    #[test]
    fn view_extents_nest() {
        let (store, _) = sample_store();
        assert_eq!(person_view(&store).len(), 4);
        assert_eq!(employee_view(&store).len(), 2); // Prof, TF
        assert_eq!(student_view(&store).len(), 2); // Stu, TF
        assert_eq!(tf_view(&store).len(), 1); // TF
    }

    #[test]
    fn tf_view_has_union_of_fields() {
        let (store, _) = sample_store();
        let tf = tf_view(&store);
        let Value::Record(fs) = tf.iter().next().unwrap() else {
            panic!()
        };
        for field in ["Name", "Salary", "Advisor", "Class", "Id"] {
            assert!(fs.contains_key(field), "missing {field}");
        }
        assert_eq!(fs["Class"], Value::str("CS101"));
    }

    #[test]
    fn join_of_views_is_extent_intersection() {
        // The §5 claim: join(StudentView, EmployeeView) = objects that are
        // both, keyed by identity.
        let (store, objs) = sample_store();
        let joined = nested_loop_join(&student_view(&store), &employee_view(&store));
        assert_eq!(joined.len(), 1);
        let Value::Record(fs) = joined.iter().next().unwrap() else {
            panic!()
        };
        assert_eq!(fs["Id"], Value::Ref(objs[3].clone()));
    }

    #[test]
    fn projection_property() {
        // Project(View_σ(S), τ) ⊆ View_τ(S) for τ ≤ σ: employees project
        // into the person view.
        let (store, _) = sample_store();
        let projected = employee_view(&store).project(&["Name", "Id"]);
        let persons = person_view(&store);
        for row in projected.iter() {
            assert!(persons.rows().contains(row));
        }
    }
}
