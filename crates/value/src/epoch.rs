//! The thread-local **mutation epoch**: a counter bumped on every
//! reference-cell write, read by cache layers (the index store in
//! `machiavelli-store`) that must never serve results computed before a
//! mutation.
//!
//! Values are `Rc`-based and therefore thread-confined, so the epoch is
//! a thread-local `Cell` — no synchronization, no cross-thread
//! invalidation to reason about. [`crate::RefValue::set`] bumps the
//! epoch unconditionally: it is the single choke point every ref write
//! goes through (the evaluator's `:=`, the OODB object store's updates,
//! persistence decoding), so a consumer that checks
//! [`mutation_epoch`] before reuse can never observe a stale snapshot,
//! no matter which layer performed the write.

use std::cell::Cell;

thread_local! {
    static MUTATION_EPOCH: Cell<u64> = const { Cell::new(0) };
}

/// The current mutation epoch of this thread. Two reads returning the
/// same value bracket a window with no reference writes.
pub fn mutation_epoch() -> u64 {
    MUTATION_EPOCH.with(|c| c.get())
}

/// Advance the mutation epoch (called by [`crate::RefValue::set`];
/// exposed for native code that mutates reference contents through
/// `borrow_mut` on the raw cell rather than `RefValue::set`).
pub fn bump_mutation_epoch() {
    MUTATION_EPOCH.with(|c| c.set(c.get().wrapping_add(1)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{RefValue, Value};

    #[test]
    fn ref_writes_advance_the_epoch() {
        let before = mutation_epoch();
        let r = RefValue::new(Value::Int(1));
        assert_eq!(
            mutation_epoch(),
            before,
            "allocation is not a write — fresh refs cannot be cached yet"
        );
        r.set(Value::Int(2));
        assert!(mutation_epoch() > before);
    }
}
