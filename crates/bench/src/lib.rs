//! Shared harness for the paper-reproduction tests, examples and
//! benchmarks: pre-wired sessions with the paper's databases bound, plus
//! the Machiavelli sources of the figures.

use machiavelli::Session;
use machiavelli_oodb::{
    gen_university, University, UniversityParams, MACHIAVELLI_VIEWS, PERSON_STORE_TYPE,
};
use machiavelli_relational::{
    fig2_parts, fig2_supplied_by, fig2_suppliers, gen_part_supplier, PartSupplierDb,
};

/// Machiavelli type of the Figure 2 `parts` relation.
pub const PARTS_TYPE: &str = "{[Pname: string, P#: int, \
     Pinfo: <BasePart: [Cost: int], \
             CompositePart: [SubParts: {[P#: int, Qty: int]}, AssemCost: int]>]}";

/// Machiavelli type of the Figure 2 `suppliers` relation.
pub const SUPPLIERS_TYPE: &str = "{[Sname: string, S#: int, City: string]}";

/// Machiavelli type of the Figure 2 `supplied_by` relation.
pub const SUPPLIED_BY_TYPE: &str = "{[P#: int, Suppliers: {[S#: int]}]}";

/// The Figure 5 `cost` and `expensive_parts` functions (recursive query
/// over the part hierarchy). `cost` references the global `parts`.
pub const FIG5_SOURCE: &str = r#"
fun cost(p) =
  (case p.Pinfo of
     BasePart of x => x.Cost,
     CompositePart of x =>
       x.AssemCost + hom((fn(y) => y.SubpartCost * y.Qty), +, 0,
                         select [SubpartCost = cost(z), Qty = w.Qty]
                         where w <- x.SubParts, z <- parts
                         with z.P# = w.P#));

fun expensive_parts(partdb, n) =
  select x.Pname
  where x <- partdb
  with cost(x) > n;
"#;

/// A genuinely row-polymorphic variant of Figure 5: the part database is
/// a parameter instead of the global `parts`, so the principal scheme
/// keeps its row variables and the function "can be shared by all those
/// databases" as §4 promises. (As written in the paper, `cost` recurses
/// against the global `parts`, which pins its argument type under
/// monomorphic recursion — see EXPERIMENTS.md.)
pub const FIG5_POLY_SOURCE: &str = r#"
fun costIn(db, p) =
  (case p.Pinfo of
     BasePart of x => x.Cost,
     CompositePart of x =>
       x.AssemCost + hom((fn(y) => y.SubpartCost * y.Qty), +, 0,
                         select [SubpartCost = costIn(db, z), Qty = w.Qty]
                         where w <- x.SubParts, z <- db
                         with z.P# = w.P#));

fun expensive_parts_in(db, n) =
  select x.Pname
  where x <- db
  with costIn(db, x) > n;
"#;

/// A session with the literal Figure 2 database bound (`parts`,
/// `suppliers`, `supplied_by`) and the prelude loaded.
pub fn fig2_session() -> Session {
    let mut s = Session::new();
    s.bind_external("parts", fig2_parts().into_value(), PARTS_TYPE)
        .expect("parts binds");
    s.bind_external("suppliers", fig2_suppliers().into_value(), SUPPLIERS_TYPE)
        .expect("suppliers binds");
    s.bind_external(
        "supplied_by",
        fig2_supplied_by().into_value(),
        SUPPLIED_BY_TYPE,
    )
    .expect("supplied_by binds");
    s
}

/// A session with a *generated* part–supplier database of the given size.
pub fn scaled_parts_session(
    n_parts: usize,
    n_suppliers: usize,
    seed: u64,
) -> (Session, PartSupplierDb) {
    let db = gen_part_supplier(n_parts, n_suppliers, 0.5, seed);
    let mut s = Session::new();
    s.bind_external("parts", db.parts.clone().into_value(), PARTS_TYPE)
        .expect("parts binds");
    s.bind_external(
        "suppliers",
        db.suppliers.clone().into_value(),
        SUPPLIERS_TYPE,
    )
    .expect("suppliers binds");
    s.bind_external(
        "supplied_by",
        db.supplied_by.clone().into_value(),
        SUPPLIED_BY_TYPE,
    )
    .expect("supplied_by binds");
    (s, db)
}

/// A session with a generated university bound as `persons` and the
/// Figure 8 views defined.
pub fn university_session(params: UniversityParams) -> (Session, University) {
    let uni = gen_university(params);
    let mut s = Session::new();
    s.bind_external("persons", uni.store(), PERSON_STORE_TYPE)
        .expect("persons binds");
    s.run(MACHIAVELLI_VIEWS).expect("Figure 8 views type-check");
    (s, uni)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_session_builds() {
        let mut s = fig2_session();
        let out = s.eval_one("card(parts);").unwrap();
        assert_eq!(out.show(), "val it = 4 : int");
    }

    #[test]
    fn scaled_session_builds() {
        let (mut s, db) = scaled_parts_session(30, 5, 1);
        let out = s.eval_one("card(parts);").unwrap();
        assert_eq!(out.show(), format!("val it = {} : int", db.parts.len()));
    }

    #[test]
    fn university_session_builds() {
        let (mut s, uni) = university_session(UniversityParams {
            n_people: 20,
            ..Default::default()
        });
        let out = s.eval_one("card(PersonView(persons));").unwrap();
        assert_eq!(out.show(), format!("val it = {} : int", uni.objects.len()));
    }
}
