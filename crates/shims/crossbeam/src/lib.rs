//! Offline shim for the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` / scoped `spawn` are used by this
//! workspace; since Rust 1.63 the standard library provides scoped
//! threads, so the shim is a thin adapter over `std::thread::scope`
//! exposing crossbeam's signatures (spawn callbacks receive the scope,
//! `scope` returns a `Result`).

pub mod thread {
    use std::any::Any;

    /// Scope handle passed to `scope` closures and spawn callbacks.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread; the callback receives the scope (so it
        /// can spawn siblings), matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope.spawn(move || {
                    let rescope = Scope { inner: inner_scope };
                    f(&rescope)
                }),
            }
        }

        /// Fallibly spawn a scoped thread: `Err` when the OS declines
        /// (thread limit, out of memory) instead of panicking, so
        /// callers can fold the chunk inline and degrade gracefully.
        /// (Shim extension: crossbeam spells this
        /// `builder().spawn(…)`; the workspace only needs the fallible
        /// entry point.)
        pub fn try_spawn<F, T>(&self, f: F) -> std::io::Result<ScopedJoinHandle<'scope, T>>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            std::thread::Builder::new()
                .spawn_scoped(inner_scope, move || {
                    let rescope = Scope { inner: inner_scope };
                    f(&rescope)
                })
                .map(|inner| ScopedJoinHandle { inner })
        }
    }

    /// Run `f` with a scope in which borrowed-data threads can be
    /// spawned; all threads are joined before `scope` returns.
    ///
    /// `std::thread::scope` propagates child panics by resuming the
    /// panic after joining, so unlike crossbeam this never actually
    /// returns `Err` — the `Result` exists for drop-in compatibility.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn try_spawn_runs_and_joins() {
        let data = [2u64, 3];
        let product = crate::thread::scope(|s| {
            let h = s.try_spawn(|_| data.iter().product::<u64>()).unwrap();
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(product, 6);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = crate::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
