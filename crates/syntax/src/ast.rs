//! Abstract syntax of Machiavelli.
//!
//! The AST mirrors the paper's §3.2 expression grammar plus the surface
//! sugar used throughout the paper: `select … where … with …`, the
//! `e as l` variant-extraction shorthand, tuples (desugared into records
//! with `#1`, `#2`, … labels by the parser), and infix operators.

use crate::span::Span;
use crate::symbol::Symbol;

/// Record / variant field labels — interned symbols, so label equality
/// in the evaluator's hot paths is a single pointer compare.
pub type Label = Symbol;

/// Identifiers (variables, parameters, binders) — also interned.
pub type Ident = Symbol;

/// A complete program: a sequence of top-level phrases.
pub type Program = Vec<Phrase>;

/// A top-level phrase, terminated by `;` in the concrete syntax.
#[derive(Debug, Clone, PartialEq)]
pub struct Phrase {
    pub kind: PhraseKind,
    pub span: Span,
}

#[derive(Debug, Clone, PartialEq)]
pub enum PhraseKind {
    /// `val x = e;`
    Val { name: Ident, expr: Expr },
    /// `fun f(x, …) = e;` — recursive by construction, as in ML.
    Fun {
        name: Ident,
        params: Vec<Ident>,
        body: Expr,
    },
    /// A bare expression; the REPL binds its result to `it`.
    Expr(Expr),
}

/// An expression with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    pub kind: ExprKind,
    pub span: Span,
}

impl Expr {
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }
}

/// Binary operators. `Eq`/`Ne` are the polymorphic description-type
/// equality of the paper; comparison operators are overloaded on `int`,
/// `real` and `string`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    RealDiv,
    Concat,
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
    Andalso,
    Orelse,
}

impl BinOp {
    /// The concrete-syntax spelling.
    pub fn symbol(self) -> &'static str {
        use BinOp::*;
        match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "div",
            Mod => "mod",
            RealDiv => "/",
            Concat => "^",
            Eq => "=",
            Ne => "<>",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            Andalso => "andalso",
            Orelse => "orelse",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Boolean negation (`not`).
    Not,
}

/// One arm of a `case` expression: `label of var => body`.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseArm {
    pub label: Label,
    pub var: Ident,
    pub body: Expr,
}

/// One generator of a `select`: `var <- source`.
#[derive(Debug, Clone, PartialEq)]
pub struct Generator {
    pub var: Ident,
    pub source: Expr,
}

/// Expression forms.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// `()`
    Unit,
    Int(i64),
    Real(f64),
    Str(String),
    Bool(bool),
    Var(Ident),
    /// `fn (x, …) => e`
    Lambda {
        params: Vec<Ident>,
        body: Box<Expr>,
    },
    /// `f(e₁, …, eₙ)`
    App {
        func: Box<Expr>,
        args: Vec<Expr>,
    },
    /// `if e then e else e`
    If {
        cond: Box<Expr>,
        then_branch: Box<Expr>,
        else_branch: Box<Expr>,
    },
    /// `[l = e, …]`; tuples `(e₁,…,eₙ)` desugar to `[#1 = e₁, …]`.
    Record(Vec<(Label, Expr)>),
    /// `e.l`
    Field {
        expr: Box<Expr>,
        label: Label,
    },
    /// `modify(e, l, e)` — pure functional field update.
    Modify {
        expr: Box<Expr>,
        label: Label,
        value: Box<Expr>,
    },
    /// `(l of e)` — variant injection.
    Inject {
        label: Label,
        expr: Box<Expr>,
    },
    /// `case e of l of x => e, …[, other => e]`
    Case {
        expr: Box<Expr>,
        arms: Vec<CaseArm>,
        default: Option<Box<Expr>>,
    },
    /// `e as l` — shorthand for `case e of l of x => x, other => raise Error`.
    As {
        expr: Box<Expr>,
        label: Label,
    },
    /// `{e, …}` (possibly empty).
    Set(Vec<Expr>),
    /// `union(e, e)` — same-type set union.
    Union {
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// `unionc(e, e)` — class union; result type is the glb (⊓).
    Unionc {
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// `hom(f, op, z, s)` — homomorphic extension (right fold over a set).
    Hom {
        f: Box<Expr>,
        op: Box<Expr>,
        z: Box<Expr>,
        set: Box<Expr>,
    },
    /// `hom*(f, op, s)` — as `hom` but on non-empty sets without a zero.
    HomStar {
        f: Box<Expr>,
        op: Box<Expr>,
        set: Box<Expr>,
    },
    /// `ref(e)` — reference creation (fresh object identity).
    Ref(Box<Expr>),
    /// `!e` — dereference.
    Deref(Box<Expr>),
    /// `e := e` — reference assignment.
    Assign {
        target: Box<Expr>,
        value: Box<Expr>,
    },
    /// `con(e, e)` — consistency predicate (⊔ of the types must exist).
    Con {
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// `join(e, e)` — generalized natural join; result type is the lub (⊔).
    Join {
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// `project(e, δ)` — generalized projection onto description type δ.
    Project {
        expr: Box<Expr>,
        ty: TypeExpr,
    },
    /// `let val x = e in e end`
    Let {
        name: Ident,
        bound: Box<Expr>,
        body: Box<Expr>,
    },
    /// `select E where x₁ <- S₁, … with P`
    Select {
        result: Box<Expr>,
        generators: Vec<Generator>,
        pred: Box<Expr>,
    },
    /// Infix application.
    Binop {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// Prefix application.
    Unop {
        op: UnOp,
        expr: Box<Expr>,
    },
    /// An operator used as a first-class value, e.g. the `+` in
    /// `hom(f, +, 0, S)`.
    OpVal(BinOp),
    /// `rec(x, e)` — recursive definition; `e` must be a lambda.
    Rec {
        name: Ident,
        body: Box<Expr>,
    },
    /// `raise "message"` / `raise Error`.
    Raise(String),
    /// `dynamic(e)` — package a description value with its type (§5).
    MakeDynamic(Box<Expr>),
    /// `coerce(e, δ)` — runtime-checked coercion of a `dynamic` back to δ.
    Coerce {
        expr: Box<Expr>,
        ty: TypeExpr,
    },
}

/// A row variable `('a)` or `("a)` opening a record/variant type.
#[derive(Debug, Clone, PartialEq)]
pub struct RowVar {
    pub name: String,
    /// True when written with the description sigil `"`.
    pub desc: bool,
}

/// A type expression (concrete type syntax), used by `project(e, δ)`,
/// `coerce(e, δ)` and in tests.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeExpr {
    pub kind: TypeExprKind,
    pub span: Span,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TypeExprKind {
    Unit,
    Int,
    Bool,
    String_,
    Real,
    Dynamic,
    /// `'a` — an arbitrary type variable (only meaningful in schemes).
    Var(String),
    /// `"a` — a description type variable.
    DescVar(String),
    /// `τ → τ`
    Arrow(Box<TypeExpr>, Box<TypeExpr>),
    /// `[l:τ, …]`, optionally with a row variable: `[('a) l:τ, …]`.
    Record {
        row: Option<RowVar>,
        fields: Vec<(Label, TypeExpr)>,
    },
    /// `<l:τ, …>`, optionally with a row variable: `<('a) l:τ, …>`.
    Variant {
        row: Option<RowVar>,
        fields: Vec<(Label, TypeExpr)>,
    },
    /// `{τ}`
    Set(Box<TypeExpr>),
    /// `ref(τ)`
    Ref(Box<TypeExpr>),
    /// `rec v . τ`
    Rec {
        var: String,
        body: Box<TypeExpr>,
    },
    /// A reference to an enclosing `rec` binder.
    Named(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_symbols() {
        assert_eq!(BinOp::Add.symbol(), "+");
        assert_eq!(BinOp::Ne.symbol(), "<>");
        assert_eq!(BinOp::Andalso.symbol(), "andalso");
    }

    #[test]
    fn expr_construction() {
        let e = Expr::new(ExprKind::Int(1), Span::new(0, 1));
        assert_eq!(e.kind, ExprKind::Int(1));
    }
}
