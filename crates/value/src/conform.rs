//! Runtime conformance checking of a value against a (closed) type —
//! used by `dynamic(e, δ)` coercions (§5): a dynamic value carries its
//! payload, and coercing it back requires checking the payload actually
//! has type δ.

use crate::value::Value;
use machiavelli_types::ty::unfold_rec;
use machiavelli_types::{Ty, Type};
use std::collections::HashSet;

/// Does `v` conform to (closed) type `ty`?
pub fn conforms(v: &Value, ty: &Ty) -> bool {
    let mut seen_refs = HashSet::new();
    conforms_inner(v, ty, &mut seen_refs, 64)
}

fn conforms_inner(v: &Value, ty: &Ty, seen_refs: &mut HashSet<u64>, fuel: u32) -> bool {
    if fuel == 0 {
        // Depth guard for adversarial cyclic structures: accept, as the
        // structure has matched to substantial depth.
        return true;
    }
    match (&**ty, v) {
        (Type::Rec(..), _) => conforms_inner(v, &unfold_rec(ty), seen_refs, fuel - 1),
        (Type::Unit, Value::Unit)
        | (Type::Int, Value::Int(_))
        | (Type::Bool, Value::Bool(_))
        | (Type::Real, Value::Real(_))
        | (Type::Str, Value::Str(_))
        | (Type::Dynamic, Value::Dynamic(_)) => true,
        (Type::Record(tfs), Value::Record(vfs)) => {
            tfs.len() == vfs.len()
                && tfs.iter().all(|(l, fty)| match vfs.get(l) {
                    Some(fv) => conforms_inner(fv, fty, seen_refs, fuel - 1),
                    None => false,
                })
        }
        (Type::Variant(tfs), Value::Variant(l, p)) => match tfs.get(l) {
            Some(pty) => conforms_inner(p, pty, seen_refs, fuel - 1),
            None => false,
        },
        (Type::Set(ety), Value::Set(items)) => items
            .iter()
            .all(|item| conforms_inner(item, ety, seen_refs, fuel - 1)),
        (Type::Ref(inner), Value::Ref(r)) => {
            if !seen_refs.insert(r.id) {
                // Already being checked (cyclic structure): assume ok.
                return true;
            }
            let content = r.get();
            let ok = conforms_inner(&content, inner, seen_refs, fuel - 1);
            seen_refs.remove(&r.id);
            ok
        }
        // Function types only occur under `ref`; a closure conforms to any
        // arrow (arity/type cannot be checked at runtime).
        (Type::Arrow(..), Value::Closure(_))
        | (Type::Arrow(..), Value::Op(_))
        | (Type::Arrow(..), Value::Builtin(_)) => true,
        // Open positions accept anything (annotations are normally closed).
        (Type::Var(_), _) | (Type::RecVar(_), _) => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::RefValue;
    use machiavelli_types::ty::*;

    #[test]
    fn base_conformance() {
        assert!(conforms(&Value::Int(3), &t_int()));
        assert!(!conforms(&Value::Int(3), &t_str()));
    }

    #[test]
    fn record_exact_labels() {
        let ty = t_record([("Name".into(), t_str())]);
        assert!(conforms(
            &Value::record([("Name".into(), Value::str("x"))]),
            &ty
        ));
        // Extra fields do not conform (unique types in Machiavelli).
        assert!(!conforms(
            &Value::record([
                ("Name".into(), Value::str("x")),
                ("Age".into(), Value::Int(1))
            ]),
            &ty
        ));
    }

    #[test]
    fn variant_branch_must_exist() {
        let ty = t_variant([("A".into(), t_int()), ("B".into(), t_str())]);
        assert!(conforms(&Value::variant("A", Value::Int(1)), &ty));
        assert!(!conforms(&Value::variant("C", Value::Int(1)), &ty));
        assert!(!conforms(&Value::variant("A", Value::str("x")), &ty));
    }

    #[test]
    fn set_elements_checked() {
        let ty = t_set(t_int());
        assert!(conforms(&Value::set([Value::Int(1), Value::Int(2)]), &ty));
        assert!(!conforms(&Value::set([Value::str("x")]), &ty));
        assert!(conforms(&Value::set([]), &ty));
    }

    #[test]
    fn ref_contents_checked() {
        let ty = t_ref(t_int());
        assert!(conforms(&Value::Ref(RefValue::new(Value::Int(1))), &ty));
        assert!(!conforms(&Value::Ref(RefValue::new(Value::str("x"))), &ty));
    }

    #[test]
    fn cyclic_refs_terminate() {
        // r := [Self = r] — a cyclic description through a ref.
        let r = RefValue::new(Value::Unit);
        r.set(Value::record([("Self".into(), Value::Ref(r.clone()))]));
        let ty_inner = t_record([("Self".into(), t_ref(t_unit()))]);
        // Not conformant (inner Self: ref(unit) mismatch) but must not hang.
        let _ = conforms(&Value::Ref(r.clone()), &t_ref(ty_inner));
        // Recursive type: rec v . ref([Self: v]) — conforms.
        // Built by hand: Rec(0, Ref(Record{Self: RecVar(0)})).
        let rec_ty: Ty = std::rc::Rc::new(Type::Rec(
            0,
            t_ref(t_record([(
                "Self".into(),
                std::rc::Rc::new(Type::RecVar(0)),
            )])),
        ));
        assert!(conforms(&Value::Ref(r), &rec_ty));
    }
}
