//! A scalable university database: the §5 taxonomy (People ⊇ Students,
//! Employees; TeachingFellows = Students ∩ Employees) over person
//! objects, generated deterministically.

use crate::object::{make_person, store_value, PersonSpec};
use machiavelli_value::{RefValue, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct UniversityParams {
    pub n_people: usize,
    /// Probability a person is an employee (has a salary).
    pub p_employee: f64,
    /// Probability a person is a student (has an advisor).
    pub p_student: f64,
    /// Probability a student-employee teaches a class (making them a TF).
    pub p_class_given_both: f64,
    pub seed: u64,
}

impl Default for UniversityParams {
    fn default() -> Self {
        UniversityParams {
            n_people: 100,
            p_employee: 0.5,
            p_student: 0.5,
            p_class_given_both: 0.8,
            seed: 42,
        }
    }
}

/// A generated university database.
pub struct University {
    pub objects: Vec<RefValue>,
    /// Ground-truth role flags, index-aligned with `objects`:
    /// (is_employee, is_student, is_tf).
    pub roles: Vec<(bool, bool, bool)>,
}

impl University {
    /// The `{PersonObj}` store value.
    pub fn store(&self) -> Value {
        store_value(&self.objects)
    }

    pub fn count_employees(&self) -> usize {
        self.roles.iter().filter(|r| r.0).count()
    }

    pub fn count_students(&self) -> usize {
        self.roles.iter().filter(|r| r.1).count()
    }

    pub fn count_tfs(&self) -> usize {
        self.roles.iter().filter(|r| r.2).count()
    }
}

/// Generate a university. The first person is always a plain employee
/// (so advisors exist); advisors are chosen among earlier employees when
/// possible, else any earlier person.
pub fn gen_university(params: UniversityParams) -> University {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut objects: Vec<RefValue> = Vec::with_capacity(params.n_people);
    let mut roles = Vec::with_capacity(params.n_people);
    let mut employees: Vec<usize> = Vec::new();
    for i in 0..params.n_people {
        let is_employee = i == 0 || rng.gen_bool(params.p_employee);
        let is_student = i != 0 && rng.gen_bool(params.p_student) && !objects.is_empty();
        let is_tf = is_employee && is_student && rng.gen_bool(params.p_class_given_both);
        let mut spec = PersonSpec::new(format!("person{i}"));
        if is_employee {
            spec = spec.salary(rng.gen_range(10_000..200_000));
        }
        if is_student {
            let advisor_idx = if employees.is_empty() {
                rng.gen_range(0..objects.len())
            } else {
                employees[rng.gen_range(0..employees.len())]
            };
            spec = spec.advisor(objects[advisor_idx].clone());
        }
        if is_tf {
            spec = spec.class(format!("CS{}", rng.gen_range(100..600)));
        }
        let obj = make_person(spec);
        if is_employee {
            employees.push(i);
        }
        objects.push(obj);
        roles.push((is_employee, is_student, is_tf));
    }
    University { objects, roles }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::views::{employee_view, person_view, student_view, tf_view};

    #[test]
    fn generation_is_deterministic() {
        let a = gen_university(UniversityParams::default());
        let b = gen_university(UniversityParams::default());
        assert_eq!(a.roles, b.roles);
        assert_eq!(a.count_employees(), b.count_employees());
    }

    #[test]
    fn views_match_ground_truth() {
        let u = gen_university(UniversityParams {
            n_people: 200,
            ..Default::default()
        });
        let store = u.store();
        assert_eq!(person_view(&store).len(), 200);
        assert_eq!(employee_view(&store).len(), u.count_employees());
        assert_eq!(student_view(&store).len(), u.count_students());
        assert_eq!(tf_view(&store).len(), u.count_tfs());
    }

    #[test]
    fn taxonomy_inclusions_hold() {
        let u = gen_university(UniversityParams {
            n_people: 150,
            seed: 7,
            ..Default::default()
        });
        let store = u.store();
        let people = person_view(&store);
        let employees = employee_view(&store).project(&["Name", "Id"]);
        let students = student_view(&store).project(&["Name", "Id"]);
        let tfs = tf_view(&store).project(&["Name", "Id"]);
        for r in employees.iter().chain(students.iter()).chain(tfs.iter()) {
            assert!(people.rows().contains(r));
        }
    }

    #[test]
    fn tfs_are_both_students_and_employees() {
        let u = gen_university(UniversityParams {
            n_people: 300,
            seed: 9,
            ..Default::default()
        });
        for &(e, s, t) in &u.roles {
            if t {
                assert!(e && s);
            }
        }
    }
}
