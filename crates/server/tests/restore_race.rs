//! `RESTORE` racing concurrent `EVAL`s on the *same* session from a
//! second connection, plus wire-escape round-trips of payloads that
//! carry literal newlines and backslashes.
//!
//! The per-slot FIFO makes RESTORE atomic with respect to in-flight
//! evals, and every acked commit is on disk before its reply — so a
//! restore mid-storm can never lose an increment the client saw `VAL`
//! for, and the counter's final value is exactly the number of acked
//! increments.

use machiavelli_server::wire::unescape_line;
use machiavelli_server::{serve_connection, Server, ServerConfig, ServerRole};
use machiavelli_value::faults::FaultConfig;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mach-restore-race-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn durable_server(root: &Path) -> Arc<Server> {
    Arc::new(Server::start(ServerConfig {
        workers: 2,
        queue_cap: 64,
        default_deadline: None,
        row_budget: None,
        shared_store: false,
        faults: Some(FaultConfig::off()),
        durable_root: Some(root.to_path_buf()),
        role: ServerRole::Primary,
    }))
}

fn spawn_wire(server: Arc<Server>) -> (String, Arc<AtomicBool>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    listener.set_nonblocking(true).expect("nonblocking");
    let stop = Arc::new(AtomicBool::new(false));
    let stop_accept = Arc::clone(&stop);
    std::thread::spawn(move || {
        while !stop_accept.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false).expect("blocking stream");
                    let server = Arc::clone(&server);
                    std::thread::spawn(move || {
                        let reader = BufReader::new(stream.try_clone().expect("clone"));
                        let _ = serve_connection(&server, reader, stream);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => break,
            }
        }
    });
    (addr, stop)
}

/// A deliberately tiny line client — one request, one reply line.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn open(addr: &str) -> Conn {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        Conn {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn request(&mut self, line: &str) -> String {
        writeln!(self.writer, "{line}").expect("write");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read");
        reply.trim_end_matches('\n').to_string()
    }
}

#[test]
fn restore_races_concurrent_evals_on_the_same_session() {
    let root = tempdir("race");
    let server = durable_server(&root);
    let (addr, stop) = spawn_wire(Arc::clone(&server));

    let mut conn1 = Conn::open(&addr);
    assert_eq!(conn1.request("OPEN"), "OK 1");
    assert!(conn1.request("EVAL 1 val c = ref(0);").starts_with("VAL "));

    // Connection 1 hammers increments; connection 2 keeps restoring the
    // same session underneath it.
    const INCREMENTS: usize = 120;
    let writer = std::thread::spawn(move || {
        let mut acked = 0usize;
        for _ in 0..INCREMENTS {
            let reply = conn1.request("EVAL 1 c := !c + 1;");
            assert!(
                reply.starts_with("VAL "),
                "an increment must never fail under RESTORE: {reply}"
            );
            acked += 1;
        }
        (conn1, acked)
    });
    let restorer = std::thread::spawn({
        let addr = addr.clone();
        move || {
            let mut conn2 = Conn::open(&addr);
            let mut restores = 0usize;
            for _ in 0..25 {
                let reply = conn2.request("RESTORE 1");
                assert!(reply.starts_with("OK restored 1 "), "{reply}");
                restores += 1;
                std::thread::sleep(Duration::from_millis(1));
            }
            restores
        }
    });
    let (mut conn1, acked) = writer.join().expect("writer thread");
    let restores = restorer.join().expect("restore thread");
    assert_eq!(acked, INCREMENTS);
    assert!(restores > 0);

    // Every acked increment survived every restore — on both the live
    // session and a fresh restore of it.
    assert_eq!(
        conn1.request("EVAL 1 !c;"),
        format!("VAL val it = {INCREMENTS} : int")
    );
    assert!(conn1.request("RESTORE 1").starts_with("OK restored 1 "));
    assert_eq!(
        conn1.request("EVAL 1 !c;"),
        format!("VAL val it = {INCREMENTS} : int")
    );

    stop.store(true, Ordering::SeqCst);
    drop(conn1);
    drop(server);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn wire_escaping_round_trips_newlines_and_backslashes() {
    let root = tempdir("escape");
    let server = durable_server(&root);
    let (addr, stop) = spawn_wire(Arc::clone(&server));
    let mut conn = Conn::open(&addr);
    assert_eq!(conn.request("OPEN"), "OK 1");

    // A string value whose rendering is full of backslash escapes: the
    // wire layer must double them and the client unescape must restore
    // the exact rendering.
    let reply = conn.request(r#"EVAL 1 val s = "line1\nline2\\tail";"#);
    let payload = reply
        .strip_prefix("VAL ")
        .unwrap_or_else(|| panic!("{reply}"));
    assert_eq!(
        unescape_line(payload),
        r#"val s = "line1\nline2\\tail" : string"#
    );
    assert!(!payload.contains('\n'), "wire replies stay one line");

    // METRICS is the multi-line carrier: the reply is one wire line,
    // and unescaping restores real newlines.
    let reply = conn.request("METRICS");
    let payload = reply.strip_prefix("OK ").expect("metrics reply");
    assert!(!payload.contains('\n'));
    let text = unescape_line(payload);
    assert!(
        text.lines().count() > 10,
        "expected a full exposition:\n{text}"
    );
    assert!(text.contains("# TYPE machiavelli_repl_lag_groups gauge"));

    stop.store(true, Ordering::SeqCst);
    drop(server);
    let _ = std::fs::remove_dir_all(&root);
}
