//! Byte-offset source spans and line/column reporting.

use std::fmt;

/// A half-open byte range `[start, end)` into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Create a span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// A zero-width span at `pos`.
    pub fn point(pos: usize) -> Self {
        Span {
            start: pos,
            end: pos,
        }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Extract the spanned slice of `src`, clamped to the source length.
    pub fn slice<'a>(&self, src: &'a str) -> &'a str {
        let start = self.start.min(src.len());
        let end = self.end.min(src.len());
        &src[start..end]
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A 1-based line/column position, computed on demand from a byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineCol {
    pub line: usize,
    pub col: usize,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Compute the 1-based line/column of byte offset `pos` within `src`.
pub fn line_col(src: &str, pos: usize) -> LineCol {
    let pos = pos.min(src.len());
    let mut line = 1;
    let mut col = 1;
    for (i, ch) in src.char_indices() {
        if i >= pos {
            break;
        }
        if ch == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    LineCol { line, col }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_spans() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
        assert_eq!(b.merge(a), Span::new(3, 12));
    }

    #[test]
    fn line_col_basic() {
        let src = "ab\ncd\nef";
        assert_eq!(line_col(src, 0), LineCol { line: 1, col: 1 });
        assert_eq!(line_col(src, 1), LineCol { line: 1, col: 2 });
        assert_eq!(line_col(src, 3), LineCol { line: 2, col: 1 });
        assert_eq!(line_col(src, 7), LineCol { line: 3, col: 2 });
    }

    #[test]
    fn line_col_clamps_past_end() {
        let src = "x";
        assert_eq!(line_col(src, 100), LineCol { line: 1, col: 2 });
    }

    #[test]
    fn slice_clamps() {
        let s = Span::new(0, 100);
        assert_eq!(s.slice("abc"), "abc");
    }
}
