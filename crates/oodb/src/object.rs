//! Person objects: references with optional attributes (§5, Figure 7).
//!
//! ```text
//! PersonObj = ref([Name: string,
//!                  Salary:  <None: unit, Value: int>,
//!                  Advisor: <None: unit, Value: PersonObj>,
//!                  Class:   <None: unit, Value: string>])
//! ```
//!
//! A database is a set of such objects (`{PersonObj}`); the `None`/`Value`
//! variants make the per-role attributes optional, and views (Figure 8)
//! reveal the populated ones.

use machiavelli_value::{RefValue, Value};

/// Machiavelli type of a person-object store, for
/// `Session::bind_external` (the recursion through `Advisor` uses the
/// `rec` binder).
pub const PERSON_STORE_TYPE: &str = "{rec p . ref([Name: string, \
     Salary: <None: unit, Value: int>, \
     Advisor: <None: unit, Value: p>, \
     Class: <None: unit, Value: string>])}";

/// Attribute specification for creating a person object.
#[derive(Debug, Clone, Default)]
pub struct PersonSpec {
    pub name: String,
    pub salary: Option<i64>,
    pub advisor: Option<RefValue>,
    pub class: Option<String>,
}

impl PersonSpec {
    pub fn new(name: impl Into<String>) -> Self {
        PersonSpec {
            name: name.into(),
            ..Default::default()
        }
    }

    pub fn salary(mut self, s: i64) -> Self {
        self.salary = Some(s);
        self
    }

    pub fn advisor(mut self, a: RefValue) -> Self {
        self.advisor = Some(a);
        self
    }

    pub fn class(mut self, c: impl Into<String>) -> Self {
        self.class = Some(c.into());
        self
    }
}

fn optional(v: Option<Value>) -> Value {
    match v {
        Some(v) => Value::variant("Value", v),
        None => Value::variant("None", Value::Unit),
    }
}

/// Allocate a fresh person object.
pub fn make_person(spec: PersonSpec) -> RefValue {
    RefValue::new(Value::record([
        ("Name".into(), Value::str(spec.name)),
        ("Salary".into(), optional(spec.salary.map(Value::Int))),
        ("Advisor".into(), optional(spec.advisor.map(Value::Ref))),
        ("Class".into(), optional(spec.class.map(Value::str))),
    ]))
}

/// Read an attribute of a person object.
pub fn person_field(obj: &RefValue, field: &str) -> Option<Value> {
    match obj.get() {
        Value::Record(fs) => fs.get(field).cloned(),
        _ => None,
    }
}

/// Unwrap a `<None | Value>` optional attribute.
pub fn optional_value(v: &Value) -> Option<Value> {
    match v {
        Value::Variant(tag, payload) if tag == "Value" => Some((**payload).clone()),
        _ => None,
    }
}

/// Build the store value `{PersonObj}` from objects.
pub fn store_value(objects: &[RefValue]) -> Value {
    Value::set(objects.iter().map(|r| Value::Ref(r.clone())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn person_attributes() {
        let p = make_person(PersonSpec::new("Joe").salary(100));
        assert_eq!(person_field(&p, "Name"), Some(Value::str("Joe")));
        let sal = person_field(&p, "Salary").unwrap();
        assert_eq!(optional_value(&sal), Some(Value::Int(100)));
        let adv = person_field(&p, "Advisor").unwrap();
        assert_eq!(optional_value(&adv), None);
    }

    #[test]
    fn advisor_links_share_identity() {
        let prof = make_person(PersonSpec::new("Prof"));
        let student = make_person(PersonSpec::new("Stu").advisor(prof.clone()));
        let adv = optional_value(&person_field(&student, "Advisor").unwrap()).unwrap();
        assert_eq!(adv, Value::Ref(prof));
    }

    #[test]
    fn store_is_a_set_of_distinct_objects() {
        let a = make_person(PersonSpec::new("A"));
        let b = make_person(PersonSpec::new("A")); // same fields, new identity
        let store = store_value(&[a, b]);
        let Value::Set(s) = store else { panic!() };
        assert_eq!(s.len(), 2, "object identity distinguishes equal contents");
    }

    #[test]
    fn mutation_via_ref() {
        let p = make_person(PersonSpec::new("X"));
        let Value::Record(mut fs) = p.get() else {
            panic!()
        };
        fs.insert("Salary".into(), Value::variant("Value", Value::Int(9)));
        p.set(Value::Record(fs));
        let sal = person_field(&p, "Salary").unwrap();
        assert_eq!(optional_value(&sal), Some(Value::Int(9)));
    }
}
