//! A3 bench — type inference and kinded unification scaling: the paper's
//! example programs (Figure 1, Join3, Closure, the views) plus generated
//! programs with growing record width and chain depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// Short measurement windows so the full figure suite runs in minutes;
/// rerun individual benches with Criterion CLI flags for precision.
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}
use machiavelli_oodb::MACHIAVELLI_VIEWS;
use machiavelli_types::infer_program;

fn bench_paper_programs(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference_paper");
    let programs: &[(&str, String)] = &[
        (
            "wealthy",
            "fun Wealthy(S) = select x.Name where x <- S with x.Salary > 100000;".into(),
        ),
        (
            "phone",
            "fun phone(x) = (case x.Status of Employee of y => y.Extension, \
             Consultant of y => y.Telephone);"
                .into(),
        ),
        ("join3", "fun Join3(x,y,z) = join(x, join(y,z));".into()),
        (
            "closure",
            "fun member(x,S) = hom((fn(y) => x = y), orelse, false, S);
             fun Closure(R) =
               let val r = select [A=x.A,B=y.B]
                           where x <- R, y <- R
                           with (x.B = y.A) andalso not(member([A=x.A,B=y.B],R))
               in if r = {} then R else Closure(union(R,r)) end;"
                .into(),
        ),
        ("fig8_views", MACHIAVELLI_VIEWS.to_string()),
    ];
    for (name, src) in programs {
        group.bench_function(*name, |b| b.iter(|| infer_program(src).unwrap()));
    }
    group.finish();
}

/// A program selecting `w` fields from records of width `w` — stresses
/// record-kind merging.
fn wide_record_program(w: usize) -> String {
    let fields: Vec<String> = (0..w).map(|i| format!("F{i} = {i}")).collect();
    let sels: Vec<String> = (0..w).map(|i| format!("x.F{i}")).collect();
    format!(
        "fun wide(x) = ({});\nwide([{}]);",
        sels.join(", "),
        fields.join(", ")
    )
}

/// A chain of `n` let-polymorphic bindings, each used twice — stresses
/// generalization and instantiation.
fn let_chain_program(n: usize) -> String {
    let mut out = String::from("val f0 = (fn(x) => x);\n");
    for i in 1..n {
        out.push_str(&format!(
            "val f{i} = (fn(x) => f{}(f{}(x)));\n",
            i - 1,
            i - 1
        ));
    }
    out
}

fn bench_generated_programs(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference_scaling");
    for w in [4usize, 16, 64] {
        let src = wide_record_program(w);
        group.bench_with_input(BenchmarkId::new("record_width", w), &src, |b, src| {
            b.iter(|| infer_program(src).unwrap())
        });
    }
    for n in [8usize, 32, 128] {
        let src = let_chain_program(n);
        group.bench_with_input(BenchmarkId::new("let_chain", n), &src, |b, src| {
            b.iter(|| infer_program(src).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_paper_programs, bench_generated_programs
}
criterion_main!(benches);
