//! The **indexed relation store**: a session-scoped cache of structural
//! hash indexes over [`MSet`] relations, so repeated plans (the Figure 5
//! `cost` recursion re-joining `parts` per call, re-run REPL queries,
//! the prelude's hom-heavy idioms) pay the O(n) build cost once instead
//! of per evaluation.
//!
//! The planner's hash-join and index-scan operators request their build
//! tables here before constructing them inline; everything else in the
//! pipeline is unchanged. An index is a grouping of a relation's rows by
//! the values of its key expressions, stored as **row indices** into the
//! relation's canonical slice (each group's list ascending = canonical
//! set order, the same order an inline build yields, so cached and fresh
//! probes produce identical row sequences). It comes in two
//! representations ([`CachedIndex`]):
//!
//! * **Plain** ([`PlainIndex`]) — keys and a snapshot of the rows in
//!   `Send + Sync` plain form (`machiavelli_value::plain`), built
//!   whenever every relation row extracts via `to_plain`. A plain entry
//!   is shareable across threads, which is what lets the planner run
//!   its **partition-parallel probe directly against the cache**: the
//!   PR 3 store and the PR 4 parallel lane compose instead of excluding
//!   each other.
//! * **Local** — the `Rc`-lane [`Index`] keyed by [`KeyTuple`], for
//!   relations carrying identity-bearing data (refs, dynamics) that has
//!   no plain form. Cached and probed sequentially, exactly as before.
//!
//! # Index store & invalidation contract
//!
//! A cached index is keyed by **source identity plus key-expression
//! fingerprint**, and correctness rests on three mutually reinforcing
//! mechanisms (mirroring the planner's fallback contract in
//! `machiavelli-plan`: each mechanism alone is an optimization, together
//! they make staleness unrepresentable):
//!
//! 1. **Pointer-identity keying.** The cache key includes
//!    [`MSet::storage_id`] — the address of the set's shared `Rc`
//!    storage. `MSet` is copy-on-write, so *any* structural change to a
//!    relation (insert, union, re-binding to a rebuilt set) produces new
//!    storage and therefore a different key: the new relation can only
//!    miss. Every entry holds a clone of the indexed set, which (a)
//!    forces all outside mutation down the copy-on-write path (the
//!    entry's extra `Rc` reference makes in-place `Rc::make_mut`
//!    impossible) and (b) pins the allocation so its address cannot be
//!    recycled for a different set while the entry lives. An entry
//!    orphaned by a rebuild is *dead*, never *stale* — nothing can look
//!    it up again, and the LRU budget reclaims it.
//! 2. **Dependency-tracked invalidation on reference writes.**
//!    Structure is not the whole story: rows may contain `ref` cells
//!    whose *contents* mutate without changing the set (`x.Dept := …`).
//!    Key and filter expressions admitted by the planner are
//!    reference-*content*-free (the planner-safe class reads no ref
//!    contents — ref-valued keys group by immutable identity), so index
//!    contents cannot actually go stale this way — but the store does
//!    not rely on that analysis being airtight. At build time each
//!    entry records the identities of every ref **reachable** from its
//!    relation ([`machiavelli_value::scan_refs`]; empty by construction
//!    for plain entries, which cannot contain refs at all). Every
//!    reference write (funnelled through
//!    [`machiavelli_value::RefValue::set`]) advances the thread's
//!    mutation epoch and records the written identity in a dirty set;
//!    before serving anything the store drains the dirty set and evicts
//!    exactly the entries whose recorded sources intersect it. A write
//!    to a ref no cached relation can reach — the common case under
//!    mixed read/write traffic — **evicts nothing**, where the PR 4
//!    contract dropped the whole store. Unattributed writes and dirty-
//!    set overflow degrade to evicting every ref-reachable (and
//!    closure-opaque) entry; the PR 4 whole-store clear itself survives
//!    as a paranoid A/B mode behind
//!    [`machiavelli_value::tuning::set_store_epoch_clear`], which the
//!    equivalence property tests run against the precise mode (same
//!    visible results, strictly fewer evictions).
//! 3. **Closed fingerprints over stable sources.** The fingerprint
//!    (produced by the planner) renders the source, key and
//!    pushed-filter expressions; the planner only marks an index
//!    cacheable when the key/filter expressions mention *no variable
//!    other than the row binder* — so an index's contents are a pure
//!    function of (storage, fingerprint), never of the enclosing
//!    environment — **and** the source is a `Var`/field/deref chain
//!    that can actually share storage across evaluations. Expressions
//!    whose meaning depends on outer bindings (`e.Salary > threshold`)
//!    and fresh-storage sources (`EmployeeView(persons)`, whose index
//!    could never be looked up again) are built inline, uncached.
//!
//! The store itself is **thread-local** (values are `Rc`-based and
//! thread-confined, so this is the natural session scope: a `Session`
//! lives on the thread that drives it, and `Session::store_stats` /
//! `:stats` read the same instance the evaluator fills). Two sessions
//! sharing a thread also share the store harmlessly: pointer-identity
//! keying means their relations can never alias each other's entries.
//!
//! Memory is bounded by a row **budget**: entries are evicted
//! least-recently-used when the total number of cached rows exceeds it,
//! and a relation larger than the whole budget is never cached at all
//! (a budget of zero disables caching outright). Counters
//! ([`StoreStats`]) record hits, misses, builds, per-reason
//! invalidations and evictions for the REPL's `:stats` and regression
//! tests; [`IndexStore::indexes`] lists live entries in deterministic
//! (fingerprint, storage-id) order so goldens can pin it.

pub mod shared;

use machiavelli_value::plain::{to_plain, ColumnarRelation, PlainIndex, PlainKey};
use machiavelli_value::{
    hash_value, mutation_epoch, scan_refs, take_dirty_refs, value_eq, MSet, RefScan, Value,
};
use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::rc::Rc;
use std::sync::Arc;

/// An owned composite hash key: structural hash, `value_eq` equality —
/// consistent by construction (see `machiavelli_value::hash`), owning
/// its key values so an index can outlive the probe loop that built it.
#[derive(Debug, Clone)]
pub struct KeyTuple(pub Vec<Value>);

impl Hash for KeyTuple {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for v in &self.0 {
            hash_value(v, state);
        }
    }
}

impl PartialEq for KeyTuple {
    fn eq(&self, other: &Self) -> bool {
        self.0.len() == other.0.len() && self.0.iter().zip(&other.0).all(|(a, b)| value_eq(a, b))
    }
}

impl Eq for KeyTuple {}

/// The `Rc`-lane structural index: **row indices** (into the relation's
/// canonical slice) grouped by key value, each group ascending — the
/// same order an inline build produces, so cached and fresh probes
/// yield identical row sequences. The executor re-binds matches by
/// index from the live relation, so groups never clone rows.
#[allow(clippy::mutable_key_type)] // refs hash/compare by immutable identity
pub type Index = HashMap<KeyTuple, Vec<u32>>;

/// A grouping in one of its two representations. `Plain` whenever the
/// whole relation extracts to plain form (then the index is
/// `Send + Sync` and the planner may probe it from worker threads);
/// `Local` otherwise (sequential probes only). Both resolve probes to
/// row-index slices; the caller re-binds rows from the relation it
/// evaluated.
#[derive(Debug, Clone)]
pub enum CachedIndex {
    Plain(Arc<PlainIndex>),
    Local(Rc<Index>),
}

impl CachedIndex {
    pub fn is_empty(&self) -> bool {
        match self {
            CachedIndex::Plain(p) => p.is_empty(),
            CachedIndex::Local(idx) => idx.is_empty(),
        }
    }

    /// Distinct key groups.
    pub fn groups(&self) -> usize {
        match self {
            CachedIndex::Plain(p) => p.group_count(),
            CachedIndex::Local(idx) => idx.len(),
        }
    }

    /// Rows held across all groups (≤ the relation size when pushed
    /// filters pruned).
    pub fn indexed_rows(&self) -> usize {
        match self {
            CachedIndex::Plain(p) => p.indexed_rows(),
            CachedIndex::Local(idx) => idx.values().map(Vec::len).sum(),
        }
    }

    /// The matching row indices for an `Rc`-lane key tuple (empty when
    /// absent). Plain indexes are probed through their borrowed
    /// value-side lookup (`hash_value` digests land in `plain_hash`
    /// buckets, values compare structurally without extraction) — no
    /// per-probe conversion or allocation; a key that has no plain form
    /// (an identity-bearing `ref`/`dynamic`) cannot structurally equal
    /// any plain-formed key, so the empty group is exact, not
    /// approximate.
    pub fn rows_for(&self, key: Vec<Value>) -> &[u32] {
        match self {
            CachedIndex::Local(idx) => idx
                .get(&KeyTuple(key))
                .map(Vec::as_slice)
                .unwrap_or_default(),
            CachedIndex::Plain(p) => p.get_by_values(&key),
        }
    }
}

/// Which representation a live entry holds — surfaced by
/// [`IndexStore::fingerprint_kind`] so plan explanation can predict
/// whether the next execution may probe in parallel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// `Send + Sync` plain keys + row snapshot: parallel-probable.
    Plain,
    /// `Rc`-lane keys (identity-bearing rows): sequential probes only.
    Rc,
}

impl std::fmt::Display for IndexKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            IndexKind::Plain => "plain",
            IndexKind::Rc => "rc",
        })
    }
}

/// Cumulative statistics, exposed through `Session::store_stats` and
/// the REPL's `:stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups answered from cache.
    pub hits: u64,
    /// Lookups that found no usable entry (the caller then builds).
    pub misses: u64,
    /// Indexes inserted after a miss (== builds that went through the
    /// store; inline uncacheable builds are not counted).
    pub builds: u64,
    /// Entries evicted because a **written ref was reachable** from
    /// their relation (dirty-set intersection — the precise reason).
    pub invalidated: u64,
    /// Entries dropped by a **whole-store clear**: the paranoid
    /// epoch-clear mode, or a dirty-set overflow / unattributed write
    /// (no identity to intersect against).
    pub cleared: u64,
    /// Entries dropped by the LRU row budget.
    pub evicted: u64,
    /// Live entries right now.
    pub entries: usize,
    /// Live entries in plain (parallel-probable) form.
    pub plain_entries: usize,
    /// Live entries on the `Rc` lane.
    pub rc_entries: usize,
    /// Total *relation* rows pinned by live entries (the budgeted
    /// quantity — an entry keeps a clone of its whole relation alive,
    /// so it is charged the relation's size even when pushed filters
    /// leave the index itself much smaller).
    pub cached_rows: usize,
    /// Local misses answered by **adopting** a verified snapshot from
    /// the process-wide shared tier ([`shared`]) — builds this session
    /// skipped because another session already paid for them.
    pub shared_adoptions: u64,
    /// Columnar-snapshot requests answered from cache.
    pub snapshot_hits: u64,
    /// Columnar-snapshot requests that extracted (or adopted) afresh.
    pub snapshot_misses: u64,
    /// Live columnar snapshots right now.
    pub snapshot_entries: usize,
    /// Total relation rows pinned by live columnar snapshots.
    pub snapshot_rows: usize,
}

/// Public description of one live entry, for `:indexes`.
#[derive(Debug, Clone)]
pub struct IndexInfo {
    /// The planner's rendering of the indexed key/filter expressions.
    pub fingerprint: String,
    /// Representation: plain (parallel-probable) or `Rc`-lane.
    pub kind: IndexKind,
    /// Rows held by the index (after pushed filters).
    pub rows: usize,
    /// Distinct key groups.
    pub groups: usize,
    /// Cache hits served by this entry.
    pub hits: u64,
}

/// What a written ref can invalidate about one entry.
#[derive(Debug)]
enum RefSources {
    /// Sorted identities of every ref reachable from the pinned
    /// relation at build time. Empty for plain entries (plain data
    /// cannot contain refs).
    Ids(Box<[u64]>),
    /// The relation holds values whose reachability cannot be traced
    /// (closures): any write may reach it.
    Opaque,
}

impl RefSources {
    fn of(set: &MSet) -> RefSources {
        let mut scan = RefScan::default();
        for row in set.iter() {
            scan_refs(row, &mut scan);
            if scan.opaque {
                return RefSources::Opaque;
            }
        }
        RefSources::Ids(scan.into_sorted_ids().into())
    }

    fn dirtied_by(&self, dirty: &machiavelli_value::DirtyRefs) -> bool {
        match self {
            RefSources::Opaque => true,
            RefSources::Ids(ids) => dirty.intersects(ids),
        }
    }
}

struct Entry {
    /// A clone of the indexed relation: pins the storage address and
    /// forces outside mutation down the copy-on-write path.
    set: MSet,
    index: CachedIndex,
    /// The refs a write could reach through this entry's relation.
    sources: RefSources,
    /// Rows held by the index (≤ `charge`; pushed filters prune).
    rows: usize,
    /// What this entry costs against the budget: the *pinned relation's*
    /// size, not the (possibly heavily filtered) index size — the entry
    /// keeps the whole relation alive, so a selective filter must not
    /// make a large relation look cheap. Deliberately conservative the
    /// other way too: two indexes over the same relation each pay the
    /// full charge even though they pin shared storage, so the budget
    /// over-estimates (never under-estimates) pinned memory.
    charge: usize,
    last_used: u64,
    hits: u64,
}

/// A cached whole-relation columnar snapshot for the execution lane.
/// Keyed by [`MSet::storage_id`] alone — a snapshot is a function of
/// the relation, not of any key expression — and sound for the same
/// reason index entries are: the pinned clone forces outside mutation
/// down the copy-on-write path and keeps the address from being
/// recycled. Snapshots are plain by construction (no refs), so the
/// precise dirty-ref mode never needs to evict them; the paranoid
/// whole-clear mode drops them with everything else.
struct SnapEntry {
    /// A clone of the snapshotted relation: pins the storage address.
    set: MSet,
    snap: Arc<ColumnarRelation>,
    charge: usize,
    last_used: u64,
    hits: u64,
}

/// Default row budget — defined with the workspace's other size
/// thresholds in `machiavelli_value::tuning` (fresh stores additionally
/// honor the `MACHIAVELLI_STORE_BUDGET_ROWS` env override resolved by
/// [`machiavelli_value::tuning::store_budget_rows`]).
pub const DEFAULT_BUDGET_ROWS: usize = machiavelli_value::tuning::DEFAULT_STORE_BUDGET_ROWS;

/// The memoizing index store. One per thread (see [`with_store`]); all
/// methods take `&mut self` because even lookups update recency and
/// invalidation state.
///
/// Entries are keyed storage-id-first, fingerprint second: the hot-path
/// [`IndexStore::lookup`] (one per hash-join open in a repeated-plan
/// workload — ~2000 per fig5 sweep) is two map probes that borrow the
/// caller's fingerprint as `&str`; the store only materializes its own
/// key `String` on insert. (The *planner* still renders a fingerprint
/// per evaluation to have something to look up with — a few small
/// formatting allocations per `select`, not per row.)
/// Observed execution statistics for one operator fingerprint — the
/// cardinality feed `Session::analyze` persists for the future
/// cost-based join ordering (ROADMAP). Keyed by the same fingerprint
/// string the store keys indexes by, but kept across storage changes:
/// a rebuilt relation invalidates its *index*, while its observed
/// cardinality stays a useful prior.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObservedStats {
    /// Traced executions that reported this fingerprint.
    pub executions: u64,
    /// Rows the operator yielded on the most recent traced execution.
    pub last_rows: u64,
    /// Total rows across all traced executions (mean = total / executions).
    pub total_rows: u64,
    /// Total operator wall time across traced executions, nanoseconds.
    pub total_ns: u64,
}

pub struct IndexStore {
    entries: HashMap<usize, HashMap<String, Entry>>,
    /// Columnar snapshots for the execution lane, keyed by storage id.
    /// A separate sub-cache bounded by the same row budget
    /// independently (a snapshot and an index over the same relation
    /// each pin their own clone, so the budget over-estimates — never
    /// under-estimates — pinned memory, same as two indexes do).
    snapshots: HashMap<usize, SnapEntry>,
    budget_rows: usize,
    cached_rows: usize,
    snapshot_rows: usize,
    epoch: u64,
    tick: u64,
    stats: StoreStats,
    observed: HashMap<String, ObservedStats>,
}

impl IndexStore {
    pub fn new(budget_rows: usize) -> IndexStore {
        IndexStore {
            entries: HashMap::new(),
            snapshots: HashMap::new(),
            budget_rows,
            cached_rows: 0,
            snapshot_rows: 0,
            epoch: mutation_epoch(),
            tick: 0,
            stats: StoreStats::default(),
            observed: HashMap::new(),
        }
    }

    /// React to reference writes since the last call. Called on the way
    /// into every public operation, so no affected entry is ever
    /// *observable* — mechanism 2 of the invalidation contract. The
    /// mutation epoch is the cheap "did anything happen" check; when it
    /// moved, the dirty-ref set names the written identities and only
    /// intersecting entries are evicted (all of them, under the
    /// paranoid whole-clear mode or when identities were lost).
    fn validate(&mut self) {
        let now = mutation_epoch();
        if self.epoch == now {
            return;
        }
        self.epoch = now;
        let dirty = take_dirty_refs();
        if self.entries.is_empty() && self.snapshots.is_empty() {
            return;
        }
        if machiavelli_value::tuning::store_epoch_clear() {
            // Paranoid A/B mode: the PR 4 contract — any write drops
            // everything, columnar snapshots included. Kept so
            // equivalence tests can cross-check the precise mode below
            // against it. The shared tier mirrors the discipline
            // (write attribution abandoned → clear).
            let dropped = self.len() + self.snapshots.len();
            self.entries.clear();
            self.cached_rows = 0;
            self.snapshots.clear();
            self.snapshot_rows = 0;
            self.stats.cleared += dropped as u64;
            if shared::shared_enabled() {
                shared::note_unattributed_write();
            }
            return;
        }
        debug_assert!(
            !dirty.is_empty(),
            "the epoch moved, so some write must have been recorded"
        );
        // Precise mode: evict exactly the entries a written ref can
        // reach. `dirty.overflowed` (identities lost) makes
        // `dirtied_by` true for every ref-bearing entry; ref-free
        // entries survive even that.
        let mut dropped = 0u64;
        self.entries.retain(|_, by_fp| {
            by_fp.retain(|_, e| {
                if e.sources.dirtied_by(&dirty) {
                    self.cached_rows -= e.charge;
                    dropped += 1;
                    false
                } else {
                    true
                }
            });
            !by_fp.is_empty()
        });
        if dirty.overflowed {
            self.stats.cleared += dropped;
            // Identities were lost: map the degradation onto the
            // cross-session epoch too (shared snapshots cannot actually
            // go stale — ref-free by construction — but the tier keeps
            // the same conservative discipline as the local store).
            if shared::shared_enabled() {
                shared::note_unattributed_write();
            }
        } else {
            self.stats.invalidated += dropped;
        }
    }

    fn len(&self) -> usize {
        self.entries.values().map(HashMap::len).sum()
    }

    /// Fetch the cached index for `set` under `fingerprint`, if one was
    /// built for *this exact storage* and not invalidated since.
    /// Updates recency and hit/miss counters.
    pub fn lookup(&mut self, set: &MSet, fingerprint: &str) -> Option<CachedIndex> {
        self.validate();
        self.tick += 1;
        match self
            .entries
            .get_mut(&set.storage_id())
            .and_then(|by_fp| by_fp.get_mut(fingerprint))
        {
            Some(entry) => {
                debug_assert!(
                    entry.set.storage_id() == set.storage_id(),
                    "entry pins its storage, ids cannot diverge"
                );
                entry.last_used = self.tick;
                entry.hits += 1;
                self.stats.hits += 1;
                Some(entry.index.clone())
            }
            None => {
                // Cross-session adoption: another session may already
                // have published a snapshot of an *equal-content*
                // relation under this fingerprint. Adoption verifies
                // row for row (see [`shared::adopt`]), and the entry
                // is installed locally so subsequent lookups are plain
                // local hits. Gated by the local budget exactly like
                // an insert — an over-budget relation is not pinned.
                if shared::shared_enabled() && set.len() <= self.budget_rows {
                    if let Some(index) = shared::adopt(shared::content_hash(set), fingerprint, set)
                    {
                        let charge = set.len();
                        self.evict_to(self.budget_rows.saturating_sub(charge));
                        let entry = Entry {
                            set: set.clone(),
                            index: CachedIndex::Plain(index.clone()),
                            // Plain snapshots cannot contain refs.
                            sources: RefSources::Ids(Box::default()),
                            rows: index.indexed_rows(),
                            charge,
                            last_used: self.tick,
                            hits: 0,
                        };
                        if let Some(old) = self
                            .entries
                            .entry(set.storage_id())
                            .or_default()
                            .insert(fingerprint.to_string(), entry)
                        {
                            self.cached_rows -= old.charge;
                        }
                        self.cached_rows += charge;
                        self.stats.shared_adoptions += 1;
                        return Some(CachedIndex::Plain(index));
                    }
                }
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Is there a live entry for exactly this (storage, fingerprint)
    /// key? A stats-neutral decision probe (no hit/miss counting, no
    /// recency touch) — the planner's build-side-selection uses it to
    /// choose an orientation before committing to a lookup.
    pub fn peek(&mut self, set: &MSet, fingerprint: &str) -> bool {
        self.validate();
        self.entries
            .get(&set.storage_id())
            .is_some_and(|by_fp| by_fp.contains_key(fingerprint))
    }

    /// Insert a freshly built grouping for `set` under `fingerprint`,
    /// returning the shared handle the caller should probe. The
    /// grouping arrives as `Rc`-lane key tuples over row indices; the
    /// store re-represents it in plain form when the whole relation
    /// extracts (`to_plain`), which is what makes the entry
    /// parallel-probable — relations with no plain form stay on the
    /// `Rc` lane. Relations larger than the whole budget are not cached
    /// (the handle is still returned, so the calling query proceeds
    /// normally, without paying the plain conversion); otherwise the
    /// least-recently-used entries are evicted until the budget holds.
    #[allow(clippy::mutable_key_type)] // refs hash/compare by immutable identity
    pub fn insert(&mut self, set: &MSet, fingerprint: &str, groups: Index) -> CachedIndex {
        self.validate();
        self.tick += 1;
        let rows: usize = groups.values().map(Vec::len).sum();
        // Budget by the relation being pinned, not the filtered index:
        // the entry's set clone keeps every row alive either way.
        let charge = set.len();
        if charge > self.budget_rows {
            machiavelli_trace::note_decline(machiavelli_trace::DeclineReason::StoreOverBudget);
            return CachedIndex::Local(Rc::new(groups));
        }
        let index = match try_plain(set, &groups) {
            Some(plain) => {
                let arc = Arc::new(plain);
                // Publish the snapshot process-wide so concurrent
                // sessions over equal-content relations adopt instead
                // of rebuilding (one build per hot index). Serialized
                // behind the tier lock; this session's local entry is
                // installed below either way.
                if shared::shared_enabled() {
                    shared::publish(shared::content_hash(set), fingerprint, &arc, charge);
                }
                CachedIndex::Plain(arc)
            }
            None => {
                // Identity-bearing rows: cacheable, but only in
                // session-local `Rc` form — not shareable across
                // sessions and never parallel-probed.
                machiavelli_trace::note_decline(machiavelli_trace::DeclineReason::StoreRcOnly);
                CachedIndex::Local(Rc::new(groups))
            }
        };
        // Plain entries cannot contain refs (to_plain declines them),
        // so their source record is empty by construction.
        let sources = match &index {
            CachedIndex::Plain(_) => RefSources::Ids(Box::default()),
            CachedIndex::Local(_) => RefSources::of(set),
        };
        self.evict_to(self.budget_rows.saturating_sub(charge));
        let entry = Entry {
            set: set.clone(),
            index: index.clone(),
            sources,
            rows,
            charge,
            last_used: self.tick,
            hits: 0,
        };
        if let Some(old) = self
            .entries
            .entry(set.storage_id())
            .or_default()
            .insert(fingerprint.to_string(), entry)
        {
            // Same (storage, fingerprint) already present: the build
            // window runs outside the store borrow, so a *nested*
            // evaluation driven by the build's hook (or a `clear`
            // mid-build) can insert the entry first. Replace it and
            // keep the accounting tight.
            self.cached_rows -= old.charge;
        }
        self.cached_rows += charge;
        self.stats.builds += 1;
        index
    }

    /// Evict least-recently-used entries until at most `target` rows
    /// remain cached. One recency sort per call, so an eviction burst
    /// costs O(entries log entries), not O(victims · entries).
    fn evict_to(&mut self, target: usize) {
        if self.cached_rows <= target {
            return;
        }
        let mut victims: Vec<(u64, usize, String)> = self
            .entries
            .iter()
            .flat_map(|(id, by_fp)| {
                by_fp
                    .iter()
                    .map(move |(fp, e)| (e.last_used, *id, fp.clone()))
            })
            .collect();
        victims.sort_unstable_by_key(|(used, ..)| *used);
        for (_, storage, fp) in victims {
            if self.cached_rows <= target {
                break;
            }
            let by_fp = self.entries.get_mut(&storage).expect("key came from map");
            let entry = by_fp.remove(&fp).expect("key came from the map");
            if by_fp.is_empty() {
                self.entries.remove(&storage);
            }
            self.cached_rows -= entry.charge;
            self.stats.evicted += 1;
        }
    }

    /// Fetch (or extract) the columnar snapshot of `set` for the
    /// execution lane. `None` means the relation has no plain form
    /// (some row carries a ref/dynamic/closure) — the caller falls back
    /// to sequential evaluation. A hit returns the cached `Arc` without
    /// touching a single row; a miss extracts via
    /// [`ColumnarRelation::from_set`] (adopting a verified equal-content
    /// snapshot from the shared tier first, when enabled) and caches the
    /// result under the same budget/LRU regime as indexes. Builds and
    /// adoptions are counted into the session's
    /// [`machiavelli_value::tuning::ExecStats`].
    pub fn snapshot(&mut self, set: &MSet) -> Option<Arc<ColumnarRelation>> {
        self.validate();
        self.tick += 1;
        if let Some(e) = self.snapshots.get_mut(&set.storage_id()) {
            debug_assert!(
                e.set.storage_id() == set.storage_id(),
                "entry pins its storage, ids cannot diverge"
            );
            e.last_used = self.tick;
            e.hits += 1;
            self.stats.snapshot_hits += 1;
            return Some(e.snap.clone());
        }
        self.stats.snapshot_misses += 1;
        let charge = set.len();
        // Hash the content once; adoption and publication share it.
        let content = shared::shared_enabled().then(|| shared::content_hash(set));
        let (snap, adopted) = match content.and_then(|c| shared::adopt_snapshot(c, set)) {
            Some(snap) => (snap, true),
            None => {
                let snap = Arc::new(ColumnarRelation::from_set(set)?);
                if let Some(c) = content {
                    shared::publish_snapshot(c, &snap, charge);
                }
                (snap, false)
            }
        };
        machiavelli_value::tuning::note_snapshot(adopted);
        if charge > self.budget_rows {
            // Usable by the calling query, but never pinned.
            return Some(snap);
        }
        self.evict_snapshots_to(self.budget_rows.saturating_sub(charge));
        self.snapshots.insert(
            set.storage_id(),
            SnapEntry {
                set: set.clone(),
                snap: snap.clone(),
                charge,
                last_used: self.tick,
                hits: 0,
            },
        );
        self.snapshot_rows += charge;
        Some(snap)
    }

    /// Evict least-recently-used columnar snapshots until at most
    /// `target` rows remain pinned by the snapshot sub-cache.
    fn evict_snapshots_to(&mut self, target: usize) {
        if self.snapshot_rows <= target {
            return;
        }
        let mut victims: Vec<(u64, usize)> = self
            .snapshots
            .iter()
            .map(|(id, e)| (e.last_used, *id))
            .collect();
        victims.sort_unstable_by_key(|(used, _)| *used);
        for (_, id) in victims {
            if self.snapshot_rows <= target {
                break;
            }
            if let Some(e) = self.snapshots.remove(&id) {
                self.snapshot_rows -= e.charge;
                self.stats.evicted += 1;
            }
        }
    }

    /// Is there a live entry with this fingerprint, for any relation?
    /// Display-level probe used by plan explanation to render
    /// `HashJoin[idx cached]` vs `[idx build]` — the executor itself
    /// always checks the full (storage, fingerprint) key.
    /// (Fingerprints include the rendered source expression, so two
    /// relations alias here only when queried through the same name —
    /// after a rebind, a fresh build corrects the display on first
    /// execution.)
    pub fn has_fingerprint(&mut self, fingerprint: &str) -> bool {
        self.fingerprint_kind(fingerprint).is_some()
    }

    /// The representation of the live entry with this fingerprint, if
    /// any — the same display-level probe as
    /// [`IndexStore::has_fingerprint`], additionally saying whether the
    /// next execution could probe it in parallel (plain entries only).
    pub fn fingerprint_kind(&mut self, fingerprint: &str) -> Option<IndexKind> {
        self.validate();
        self.entries
            .values()
            .find_map(|by_fp| by_fp.get(fingerprint))
            .map(|e| match e.index {
                CachedIndex::Plain(_) => IndexKind::Plain,
                CachedIndex::Local(_) => IndexKind::Rc,
            })
    }

    /// Drop all entries (statistics are kept; see [`IndexStore::reset`]).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.cached_rows = 0;
        self.snapshots.clear();
        self.snapshot_rows = 0;
    }

    /// Drop all entries and zero the statistics (observed per-operator
    /// stats included — a reset is a fresh session).
    pub fn reset(&mut self) {
        self.clear();
        self.stats = StoreStats::default();
        self.observed.clear();
    }

    /// Fold one traced execution's actuals into the per-fingerprint
    /// observed stats (the cardinality feed for the future cost model;
    /// called by `Session::analyze` and traced evaluations). Survives
    /// index invalidation — a rebuilt relation's observed cardinality
    /// stays a useful prior — and is dropped by [`IndexStore::reset`].
    pub fn note_observed(&mut self, fingerprint: &str, rows: u64, elapsed_ns: u64) {
        let o = self.observed.entry(fingerprint.to_string()).or_default();
        o.executions += 1;
        o.last_rows = rows;
        o.total_rows += rows;
        o.total_ns += elapsed_ns;
    }

    /// The observed stats recorded for a fingerprint, if any traced
    /// execution reported one.
    pub fn observed_stats(&self, fingerprint: &str) -> Option<ObservedStats> {
        self.observed.get(fingerprint).copied()
    }

    /// All observed per-fingerprint stats in deterministic (fingerprint)
    /// order, for goldens and the cost model's warm-up scan.
    pub fn observed(&self) -> Vec<(String, ObservedStats)> {
        let mut all: Vec<(String, ObservedStats)> = self
            .observed
            .iter()
            .map(|(fp, o)| (fp.clone(), *o))
            .collect();
        all.sort_by(|(a, _), (b, _)| a.cmp(b));
        all
    }

    /// Change the row budget, evicting immediately if the cache is now
    /// over it.
    pub fn set_budget(&mut self, budget_rows: usize) {
        self.budget_rows = budget_rows;
        self.evict_to(budget_rows);
        self.evict_snapshots_to(budget_rows);
    }

    /// The current row budget. Callers about to build an index can
    /// check it first: a relation that exceeds the whole budget would
    /// be declined by [`IndexStore::insert`], so building a grouping
    /// for it is wasted work (stream instead).
    pub fn budget_rows(&self) -> usize {
        self.budget_rows
    }

    /// Current statistics (entry/row counts reflect live entries only).
    pub fn stats(&mut self) -> StoreStats {
        self.validate();
        let plain_entries = self
            .entries
            .values()
            .flat_map(HashMap::values)
            .filter(|e| matches!(e.index, CachedIndex::Plain(_)))
            .count();
        let entries = self.len();
        StoreStats {
            entries,
            plain_entries,
            rc_entries: entries - plain_entries,
            cached_rows: self.cached_rows,
            snapshot_entries: self.snapshots.len(),
            snapshot_rows: self.snapshot_rows,
            ..self.stats
        }
    }

    /// Describe the live entries in deterministic order — sorted by
    /// fingerprint, then storage id — so `:indexes` output can be
    /// pinned in golden tests regardless of recency history.
    pub fn indexes(&mut self) -> Vec<IndexInfo> {
        self.validate();
        let mut infos: Vec<(usize, IndexInfo)> = self
            .entries
            .iter()
            .flat_map(|(storage, by_fp)| {
                by_fp.iter().map(move |(fp, e)| {
                    (
                        *storage,
                        IndexInfo {
                            fingerprint: fp.clone(),
                            kind: match e.index {
                                CachedIndex::Plain(_) => IndexKind::Plain,
                                CachedIndex::Local(_) => IndexKind::Rc,
                            },
                            rows: e.rows,
                            groups: e.index.groups(),
                            hits: e.hits,
                        },
                    )
                })
            })
            .collect();
        infos.sort_by(|(sa, a), (sb, b)| a.fingerprint.cmp(&b.fingerprint).then(sa.cmp(sb)));
        infos.into_iter().map(|(_, i)| i).collect()
    }
}

/// Re-represent a grouping in plain form: the whole relation must
/// extract row by row (the snapshot doubles as the eligibility test),
/// and then every key tuple extracts too (keys are planner-safe
/// functions of plain rows, so this cannot fail once the rows did —
/// checked anyway).
#[allow(clippy::mutable_key_type)] // refs hash/compare by immutable identity
fn try_plain(set: &MSet, groups: &Index) -> Option<PlainIndex> {
    let rows: Option<Vec<_>> = set.iter().map(to_plain).collect();
    let rows = rows?;
    let mut plain_groups = Vec::with_capacity(groups.len());
    for (key, idxs) in groups {
        let plain = match key.0.as_slice() {
            [single] => PlainKey::One(to_plain(single)?),
            many => PlainKey::Tuple(many.iter().map(to_plain).collect::<Option<_>>()?),
        };
        plain_groups.push((plain, idxs.clone()));
    }
    Some(PlainIndex::from_groups(rows.into(), plain_groups))
}

impl Default for IndexStore {
    fn default() -> Self {
        IndexStore::new(machiavelli_value::tuning::store_budget_rows())
    }
}

thread_local! {
    static STORE: RefCell<IndexStore> = RefCell::new(IndexStore::default());
    /// Whether the executor consults the store at all. Benches flip it
    /// off to measure the always-rebuild path; `false` means every
    /// cacheable build happens inline, uncached and uncounted.
    static STORE_ENABLED: std::cell::Cell<bool> = const { std::cell::Cell::new(true) };
}

/// Run `f` on this thread's index store.
pub fn with_store<R>(f: impl FnOnce(&mut IndexStore) -> R) -> R {
    STORE.with(|s| f(&mut s.borrow_mut()))
}

/// Is store consultation enabled on this thread?
pub fn store_enabled() -> bool {
    STORE_ENABLED.with(|c| c.get())
}

/// Enable/disable store consultation on this thread, returning the
/// previous setting (so callers can restore it).
pub fn set_store_enabled(on: bool) -> bool {
    STORE_ENABLED.with(|c| c.replace(on))
}

#[cfg(test)]
mod tests {
    use super::*;
    use machiavelli_value::{bump_mutation_epoch, note_ref_write, RefValue};

    fn ints(xs: &[i64]) -> MSet {
        MSet::from_iter(xs.iter().map(|&x| Value::Int(x)))
    }

    /// Group a set by parity of its int rows — a stand-in for a planner
    /// build (rows carrying refs key on the int in field `K`).
    #[allow(clippy::mutable_key_type)] // refs hash/compare by immutable identity
    fn parity_index(s: &MSet) -> Index {
        let mut idx = Index::new();
        for (i, v) in s.iter().enumerate() {
            let n = match v {
                Value::Int(n) => *n,
                Value::Record(fs) => match fs.get("K") {
                    Some(Value::Int(n)) => *n,
                    _ => panic!(),
                },
                _ => panic!(),
            };
            idx.entry(KeyTuple(vec![Value::Int(n % 2)]))
                .or_default()
                .push(i as u32);
        }
        idx
    }

    /// A relation whose rows hold a shared ref (no plain form).
    fn ref_rows(r: &RefValue, ks: &[i64]) -> MSet {
        MSet::from_iter(ks.iter().map(|&k| {
            Value::record([
                ("K".into(), Value::Int(k)),
                ("D".into(), Value::Ref(r.clone())),
            ])
        }))
    }

    #[test]
    fn hit_after_insert_same_storage() {
        let mut st = IndexStore::new(1000);
        let s = ints(&[1, 2, 3]);
        assert!(st.lookup(&s, "parity").is_none());
        st.insert(&s, "parity", parity_index(&s));
        let alias = s.clone();
        let idx = st.lookup(&alias, "parity").expect("clone shares storage");
        assert_eq!(idx.groups(), 2);
        let stats = st.stats();
        assert_eq!((stats.hits, stats.misses, stats.builds), (1, 1, 1));
        assert_eq!((stats.entries, stats.cached_rows), (1, 3));
    }

    #[test]
    fn plain_rows_cache_in_plain_form_and_resolve_probes() {
        let mut st = IndexStore::new(1000);
        let s = ints(&[1, 2, 3, 4]);
        let idx = st.insert(&s, "parity", parity_index(&s));
        assert!(matches!(idx, CachedIndex::Plain(_)), "ints are plain data");
        // Probing with Rc-lane key values resolves through the plain keys.
        assert_eq!(idx.rows_for(vec![Value::Int(0)]), &[1, 3]);
        assert_eq!(idx.rows_for(vec![Value::Int(1)]), &[0, 2]);
        assert_eq!(idx.rows_for(vec![Value::Int(9)]), &[] as &[u32]);
        // A key with no plain form cannot match any plain key: empty.
        let refkey = Value::Ref(RefValue::new(Value::Int(0)));
        assert_eq!(idx.rows_for(vec![refkey]), &[] as &[u32]);
        let stats = st.stats();
        assert_eq!((stats.plain_entries, stats.rc_entries), (1, 0));
    }

    #[test]
    fn ref_bearing_rows_stay_on_the_rc_lane() {
        let mut st = IndexStore::new(1000);
        let d = RefValue::new(Value::Int(7));
        let s = ref_rows(&d, &[1, 2]);
        let idx = st.insert(&s, "parity", parity_index(&s));
        assert!(matches!(idx, CachedIndex::Local(_)));
        assert_eq!(idx.rows_for(vec![Value::Int(1)]), &[0]);
        let stats = st.stats();
        assert_eq!((stats.plain_entries, stats.rc_entries), (0, 1));
    }

    #[test]
    fn different_fingerprint_or_storage_misses() {
        let mut st = IndexStore::new(1000);
        let s = ints(&[1, 2, 3]);
        st.insert(&s, "parity", parity_index(&s));
        assert!(st.lookup(&s, "identity").is_none(), "fingerprint differs");
        let rebuilt = ints(&[1, 2, 3]);
        assert!(
            st.lookup(&rebuilt, "parity").is_none(),
            "equal contents, different storage: still a miss"
        );
    }

    #[test]
    fn copy_on_write_mutation_cannot_hit() {
        let mut st = IndexStore::new(1000);
        let mut s = ints(&[1, 2, 3]);
        st.insert(&s, "parity", parity_index(&s));
        // The store holds a clone, so this insert copies-on-write into
        // fresh storage even though our handle looked unshared.
        s.insert(Value::Int(4));
        assert!(st.lookup(&s, "parity").is_none());
    }

    #[test]
    fn write_to_a_reachable_ref_evicts_exactly_that_entry() {
        let mut st = IndexStore::new(1000);
        let d = RefValue::new(Value::Int(7));
        let with_ref = ref_rows(&d, &[1, 2]);
        let plain = ints(&[1, 2, 3]);
        st.insert(&with_ref, "parity", parity_index(&with_ref));
        st.insert(&plain, "parity", parity_index(&plain));
        // Writing through the ref reachable from `with_ref` evicts it —
        // and only it.
        d.set(Value::Int(8));
        assert!(st.lookup(&with_ref, "parity").is_none());
        assert!(st.lookup(&plain, "parity").is_some());
        let stats = st.stats();
        assert_eq!(stats.invalidated, 1, "{stats:?}");
        assert_eq!(stats.cleared, 0, "{stats:?}");
        assert_eq!(stats.entries, 1, "{stats:?}");
    }

    #[test]
    fn write_to_an_unrelated_ref_evicts_nothing() {
        let mut st = IndexStore::new(1000);
        let s = ints(&[1, 2]);
        st.insert(&s, "parity", parity_index(&s));
        let unrelated = RefValue::new(Value::Int(0));
        unrelated.set(Value::Int(1));
        assert!(
            st.lookup(&s, "parity").is_some(),
            "plain entries survive every write"
        );
        let stats = st.stats();
        assert_eq!((stats.invalidated, stats.cleared), (0, 0), "{stats:?}");
        // Same for an Rc-lane entry whose refs were not written.
        let d = RefValue::new(Value::Int(7));
        let with_ref = ref_rows(&d, &[1]);
        st.insert(&with_ref, "parity", parity_index(&with_ref));
        unrelated.set(Value::Int(2));
        assert!(st.lookup(&with_ref, "parity").is_some());
        assert_eq!(st.stats().invalidated, 0);
    }

    #[test]
    fn unattributed_epoch_bump_clears_ref_bearing_entries_only() {
        let mut st = IndexStore::new(1000);
        let plain = ints(&[1, 2]);
        let d = RefValue::new(Value::Int(7));
        let with_ref = ref_rows(&d, &[1]);
        st.insert(&plain, "parity", parity_index(&plain));
        st.insert(&with_ref, "parity", parity_index(&with_ref));
        bump_mutation_epoch(); // no identity: poison
        assert!(st.lookup(&plain, "parity").is_some(), "ref-free survives");
        assert!(st.lookup(&with_ref, "parity").is_none());
        let stats = st.stats();
        assert_eq!((stats.invalidated, stats.cleared), (0, 1), "{stats:?}");
    }

    #[test]
    fn paranoid_epoch_clear_mode_drops_everything() {
        let prev = machiavelli_value::tuning::set_store_epoch_clear(true);
        let mut st = IndexStore::new(1000);
        let s = ints(&[1, 2]);
        st.insert(&s, "parity", parity_index(&s));
        note_ref_write(12345); // any write at all
        assert!(st.lookup(&s, "parity").is_none());
        let stats = st.stats();
        assert_eq!(stats.cleared, 1, "{stats:?}");
        assert_eq!(stats.entries, 0, "{stats:?}");
        machiavelli_value::tuning::set_store_epoch_clear(prev);
    }

    #[test]
    fn lru_eviction_respects_budget() {
        let mut st = IndexStore::new(5);
        let a = ints(&[1, 2, 3]);
        let b = ints(&[4, 5]);
        st.insert(&a, "parity", parity_index(&a));
        st.insert(&b, "parity", parity_index(&b));
        assert_eq!(st.stats().cached_rows, 5);
        // Touch `a` so `b` is the LRU victim.
        assert!(st.lookup(&a, "parity").is_some());
        let c = ints(&[6, 7]);
        st.insert(&c, "parity", parity_index(&c));
        assert!(st.lookup(&a, "parity").is_some());
        assert!(st.lookup(&b, "parity").is_none(), "b was evicted");
        assert_eq!(st.stats().evicted, 1);
        assert!(st.stats().cached_rows <= 5);
    }

    #[test]
    fn repeated_touches_keep_reordering_the_lru_queue() {
        // a, b, c fit exactly; every insertion below needs one victim,
        // and the victim must always be the entry *not* touched since.
        let mut st = IndexStore::new(6);
        let a = ints(&[1, 2]);
        let b = ints(&[3, 4]);
        let c = ints(&[5, 6]);
        st.insert(&a, "parity", parity_index(&a));
        st.insert(&b, "parity", parity_index(&b));
        st.insert(&c, "parity", parity_index(&c));
        // Touch order: a, c — so b is least recent.
        assert!(st.lookup(&a, "parity").is_some());
        assert!(st.lookup(&c, "parity").is_some());
        let d = ints(&[7, 8]);
        st.insert(&d, "parity", parity_index(&d));
        assert!(st.lookup(&b, "parity").is_none(), "b was the victim");
        // Touch a again; c is now least recent among (a, c... d newest).
        assert!(st.lookup(&a, "parity").is_some());
        let e = ints(&[9, 10]);
        st.insert(&e, "parity", parity_index(&e));
        assert!(st.lookup(&c, "parity").is_none(), "c was the victim");
        assert!(st.lookup(&a, "parity").is_some());
        assert!(st.lookup(&d, "parity").is_some());
        assert_eq!(st.stats().evicted, 2);
        assert!(st.stats().cached_rows <= 6);
    }

    #[test]
    fn entry_exactly_at_the_budget_is_cached_alone() {
        let mut st = IndexStore::new(3);
        let small = ints(&[9]);
        st.insert(&small, "parity", parity_index(&small));
        // Exactly the whole budget: admitted, and every other entry is
        // evicted to make room.
        let exact = ints(&[1, 2, 3]);
        st.insert(&exact, "parity", parity_index(&exact));
        assert!(st.lookup(&exact, "parity").is_some());
        assert!(st.lookup(&small, "parity").is_none(), "evicted for room");
        let stats = st.stats();
        assert_eq!((stats.entries, stats.cached_rows), (1, 3), "{stats:?}");
        // One row over: declined outright.
        let over = ints(&[1, 2, 3, 4]);
        st.insert(&over, "parity", parity_index(&over));
        assert!(st.lookup(&over, "parity").is_none());
        assert_eq!(st.stats().cached_rows, 3);
    }

    #[test]
    fn budget_of_zero_disables_caching() {
        let mut st = IndexStore::new(0);
        let s = ints(&[1]);
        let idx = st.insert(&s, "parity", parity_index(&s));
        // The handle still answers the calling query…
        assert_eq!(idx.rows_for(vec![Value::Int(1)]), &[0]);
        // …but nothing was cached and nothing ever will be.
        let stats = st.stats();
        assert_eq!((stats.entries, stats.builds, stats.cached_rows), (0, 0, 0));
        assert!(st.lookup(&s, "parity").is_none());
        // Shrinking a live store to zero evicts everything.
        let mut st = IndexStore::new(10);
        st.insert(&s, "parity", parity_index(&s));
        st.set_budget(0);
        let stats = st.stats();
        assert_eq!((stats.entries, stats.evicted), (0, 1), "{stats:?}");
    }

    #[test]
    fn oversized_relations_are_not_cached() {
        let mut st = IndexStore::new(2);
        let s = ints(&[1, 2, 3]);
        let idx = st.insert(&s, "parity", parity_index(&s));
        assert_eq!(idx.indexed_rows(), 3);
        assert!(
            matches!(idx, CachedIndex::Local(_)),
            "uncached handles skip the plain conversion"
        );
        assert_eq!(st.stats().entries, 0);
        assert_eq!(st.stats().builds, 0);
    }

    #[test]
    #[allow(clippy::mutable_key_type)] // refs hash/compare by immutable identity
    fn budget_charges_the_pinned_relation_not_the_filtered_index() {
        let s = ints(&[1, 2, 3, 4, 5, 6]);
        let selective = || {
            let mut idx = Index::new();
            idx.entry(KeyTuple(vec![Value::Int(0)]))
                .or_default()
                .push(1);
            idx
        };
        // A one-row filtered index still pins all six relation rows.
        let mut st = IndexStore::new(10);
        st.insert(&s, "filtered", selective());
        assert_eq!(st.stats().cached_rows, 6);
        // A relation over the whole budget is declined even when its
        // filtered index is tiny.
        let mut st = IndexStore::new(4);
        st.insert(&s, "filtered", selective());
        assert_eq!(st.stats().entries, 0);
    }

    #[test]
    fn reset_zeroes_stats_and_entries() {
        let mut st = IndexStore::new(1000);
        let s = ints(&[1]);
        st.insert(&s, "parity", parity_index(&s));
        st.lookup(&s, "parity");
        st.reset();
        assert_eq!(st.stats(), StoreStats::default());
        assert!(!st.has_fingerprint("parity"));
        assert_eq!(st.fingerprint_kind("parity"), None);
    }

    #[test]
    fn peek_is_stats_neutral() {
        let mut st = IndexStore::new(1000);
        let s = ints(&[1, 2]);
        st.insert(&s, "parity", parity_index(&s));
        let before = st.stats();
        assert!(st.peek(&s, "parity"));
        assert!(!st.peek(&s, "other"));
        let rebuilt = ints(&[1, 2]);
        assert!(!st.peek(&rebuilt, "parity"), "peek is storage-exact");
        let after = st.stats();
        assert_eq!((before.hits, before.misses), (after.hits, after.misses));
    }

    #[test]
    fn indexes_listing_is_sorted_and_reports_kinds() {
        let mut st = IndexStore::new(1000);
        let s = ints(&[1, 2, 3, 4]);
        let d = RefValue::new(Value::Int(7));
        let r = ref_rows(&d, &[1]);
        st.insert(&s, "b-parity", parity_index(&s));
        st.insert(&r, "a-parity", parity_index(&r));
        st.lookup(&s, "b-parity");
        let infos = st.indexes();
        assert_eq!(infos.len(), 2);
        // Sorted by fingerprint — not recency.
        assert_eq!(infos[0].fingerprint, "a-parity");
        assert_eq!(infos[0].kind, IndexKind::Rc);
        assert_eq!(infos[1].fingerprint, "b-parity");
        assert_eq!(infos[1].kind, IndexKind::Plain);
        assert_eq!((infos[1].rows, infos[1].groups, infos[1].hits), (4, 2, 1));
        assert_eq!(st.fingerprint_kind("b-parity"), Some(IndexKind::Plain));
        assert_eq!(st.fingerprint_kind("a-parity"), Some(IndexKind::Rc));
    }

    #[test]
    fn snapshot_caches_by_storage_and_survives_unrelated_writes() {
        let mut st = IndexStore::new(1000);
        let s = ints(&[1, 2, 3]);
        let a = st.snapshot(&s).expect("ints are plain");
        let b = st.snapshot(&s.clone()).expect("clone shares storage");
        assert!(Arc::ptr_eq(&a, &b), "second request is a cache hit");
        assert_eq!(a.len(), 3);
        // Snapshots hold no refs, so the precise dirty-ref mode never
        // evicts them.
        let unrelated = RefValue::new(Value::Int(0));
        unrelated.set(Value::Int(1));
        let c = st.snapshot(&s).unwrap();
        assert!(Arc::ptr_eq(&a, &c));
        let stats = st.stats();
        assert_eq!((stats.snapshot_hits, stats.snapshot_misses), (2, 1));
        assert_eq!((stats.snapshot_entries, stats.snapshot_rows), (1, 3));
        // A rebuilt equal-content relation has different storage: miss.
        let rebuilt = ints(&[1, 2, 3]);
        let d = st.snapshot(&rebuilt).unwrap();
        assert!(!Arc::ptr_eq(&a, &d));
    }

    #[test]
    fn snapshot_declines_identity_bearing_relations() {
        let mut st = IndexStore::new(1000);
        let d = RefValue::new(Value::Int(7));
        let s = ref_rows(&d, &[1, 2]);
        assert!(st.snapshot(&s).is_none(), "refs have no plain form");
        assert_eq!(st.stats().snapshot_entries, 0);
    }

    #[test]
    fn snapshot_respects_budget_and_paranoid_clear() {
        let mut st = IndexStore::new(2);
        let over = ints(&[1, 2, 3]);
        // Over budget: usable but never pinned.
        assert!(st.snapshot(&over).is_some());
        assert_eq!(st.stats().snapshot_entries, 0);
        let fits = ints(&[4, 5]);
        assert!(st.snapshot(&fits).is_some());
        assert_eq!(st.stats().snapshot_rows, 2);
        // LRU within the budget: a newer snapshot evicts the older one.
        let newer = ints(&[6, 7]);
        assert!(st.snapshot(&newer).is_some());
        let stats = st.stats();
        assert_eq!((stats.snapshot_entries, stats.snapshot_rows), (1, 2));
        assert!(stats.evicted >= 1);
        // The paranoid whole-clear mode drops snapshots with the rest.
        let prev = machiavelli_value::tuning::set_store_epoch_clear(true);
        note_ref_write(999);
        assert_eq!(st.stats().snapshot_entries, 0);
        machiavelli_value::tuning::set_store_epoch_clear(prev);
    }

    #[test]
    fn enable_toggle_round_trips() {
        assert!(store_enabled());
        let prev = set_store_enabled(false);
        assert!(prev);
        assert!(!store_enabled());
        set_store_enabled(prev);
        assert!(store_enabled());
    }
}
